//! # Decibel — the relational dataset branching system (reproduction)
//!
//! A from-scratch Rust implementation of *Decibel: The Relational Dataset
//! Branching System* (Maddox et al., VLDB 2016): a relational storage
//! engine with git-like dataset versioning — branch, commit, checkout,
//! diff, and merge over tables of records tracked by primary key — in
//! three interchangeable physical storage schemes:
//!
//! * **tuple-first** — one shared heap file plus a bitmap index with one
//!   bit per (branch, tuple), in both branch-oriented and tuple-oriented
//!   layouts (§3.2);
//! * **version-first** — per-branch segment files chained by branch
//!   points (§3.3);
//! * **hybrid** — segmented storage with per-segment bitmap indexes and a
//!   global branch-segment bitmap (§3.4) — the paper's winner.
//!
//! ## Quick start
//!
//! `Database::create`/`Database::open` return an `Arc<Database>`; sessions
//! own a clone of it and are `Send`, so the paper's many-users-many-
//! sessions shape maps onto one session per thread. Reads flow through the
//! fluent query builder and run concurrently under a shared lock; writes
//! are transactional, journaled, and recovered on reopen.
//!
//! ```
//! use decibel::core::query::Predicate;
//! use decibel::core::{Database, EngineKind, MergePolicy};
//! use decibel::common::ids::BranchId;
//! use decibel::common::record::Record;
//! use decibel::common::schema::{ColumnType, Schema};
//! use decibel::pagestore::StoreConfig;
//!
//! let dir = tempfile::tempdir().unwrap();
//! let db = Database::create(
//!     dir.path(),
//!     EngineKind::Hybrid,
//!     Schema::new(4, ColumnType::U32),
//!     &StoreConfig::default(),
//! ).unwrap();
//!
//! // Sessions capture checkout state; writes are transactional.
//! let mut session = db.session();
//! session.insert(Record::new(1, vec![10, 20, 30, 40])).unwrap();
//! session.commit().unwrap();
//!
//! // Branch and diverge on another thread (sessions are Send)...
//! let worker = {
//!     let db = db.clone();
//!     std::thread::spawn(move || {
//!         let mut session = db.session();
//!         let exp = session.branch("experiment").unwrap();
//!         session.update(Record::new(1, vec![99, 20, 30, 40])).unwrap();
//!         session.commit().unwrap();
//!         exp
//!     })
//! };
//! let exp = worker.join().unwrap();
//!
//! // ...query through the fluent builder, then merge back (journaled).
//! let rows = db.read(exp).filter(Predicate::ColGe(0, 50)).collect().unwrap();
//! assert_eq!(rows.len(), 1);
//! db.merge(BranchId::MASTER, exp, MergePolicy::ThreeWay { prefer_left: false })
//!     .unwrap();
//! assert_eq!(db.session().get(1).unwrap().unwrap().field(0), 99);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`common`] | schema/record model, ids, errors, deterministic RNG |
//! | [`pagestore`] | heap files, buffer pool, lock manager, WAL |
//! | [`bitmap`] | bitmaps, branch/tuple-oriented indexes, commit stores |
//! | [`vgraph`] | the version graph (commits, branches, LCA) |
//! | [`core`] | the three engines + database/session/query API |
//! | [`wire`] | the TCP wire protocol + blocking [`Client`] |
//! | [`netio`] | zero-dep readiness layer: epoll poll/registry, wakers |
//! | [`server`] | the event-loop server behind `decibel-server` |
//! | [`gitlike`] | the git baseline (SHA-1, objects, packfiles, repack) |
//!
//! ## Serving over TCP
//!
//! The same database can be served to remote sessions: `decibel-server`
//! (or an in-process [`server::Server`]) multiplexes every connection —
//! each holding one `Session` — onto a single event-loop thread over the
//! [`netio`] readiness layer, streaming scans in bounded chunks and
//! parking blocking calls (commit, merge, flush) on a small worker pool.
//! [`Client`] mirrors the session + query-builder surface over the
//! socket. See the crate docs of [`wire`] for the frame format,
//! [`server`] for the event-loop architecture, and
//! `examples/client_server.rs` for a runnable tour.
//!
//! The benchmark harness lives in the `decibel-bench` crate
//! (`cargo run -p decibel-bench --release -- all`); every table and figure
//! from the paper's evaluation has a subcommand and a criterion bench.
//! See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
//! results.

pub use decibel_bitmap as bitmap;
pub use decibel_common as common;
pub use decibel_core as core;
pub use decibel_netio as netio;
pub use decibel_obs as obs;
pub use decibel_pagestore as pagestore;
pub use decibel_server as server;
pub use decibel_vgraph as vgraph;
pub use decibel_wire as wire;
pub use gitlike;

pub use decibel_common::{DbError, ErrorCode, Projection, Result};
pub use decibel_core::{Database, EngineKind, MergePolicy, Session, VersionRef, VersionedStore};
pub use decibel_wire::Client;
