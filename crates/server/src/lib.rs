//! The Decibel TCP server: a readiness-driven event loop multiplexing
//! every connection, over a shared [`Arc<Database>`].
//!
//! "Users interact with Decibel by opening a connection to the Decibel
//! server, which creates a session" (§2.2.3). One [`Session`] per
//! connection still holds — but instead of one OS thread per client, a
//! single event-loop thread owns an epoll instance
//! ([`decibel_netio::Poll`]) and every connection's socket, and a small
//! worker pool absorbs the calls that may block. The pieces:
//!
//! * **Per-connection state machine.** Each connection carries an
//!   incremental [`FrameDecoder`] (partial reads resume — there is no
//!   blocking `read_exact` anywhere in the server), a bounded queue of
//!   decoded-but-unstarted requests (a client may pipeline; the queue cap
//!   pauses read interest so an abusive sender backpressures through TCP
//!   instead of growing server memory), and one write buffer.
//! * **Chunked streaming scans.** Scan-shaped requests (`ScanSession`,
//!   `Collect`, sequential `MultiScan`) run on the loop as resumable
//!   [`ScanCursor`]s ([`decibel_core::cursor`]): chunks (~
//!   [`proto::SCAN_BATCH_BYTES`]) are produced under a store/shard read
//!   lock held for at most [`CHUNKS_PER_LOCK`] chunks, and production
//!   parks — releasing the locks — once the unsent write-buffer backlog
//!   reaches the [`STREAM_AHEAD`] cap (~2 MiB). A slow client therefore
//!   pins a small constant of server memory and **zero** lock time while
//!   stalled — the backpressure contract the thread-per-client server
//!   could not offer (it materialized whole results to bound lock hold
//!   time, at O(result) memory).
//! * **Worker pool.** Session calls that may block — commit (group fsync),
//!   merge, flush, 2PL lock acquisition on checkout/begin/writes, and the
//!   materializing parallel multi-scan — are dispatched to a small pool.
//!   The job moves the connection's `Session` to the worker and the
//!   completion moves it back (sessions are `Send`), so the loop never
//!   stalls behind a lock or an fsync.
//! * **Deadline wheel.** The idle read timeout ([`Server::with_read_timeout`])
//!   is driven by the poll timeout off a min-heap of per-connection
//!   deadlines (lazy deletion, one live entry per connection) instead of
//!   per-socket `SO_RCVTIMEO`. Expiry behavior is unchanged: the open
//!   transaction rolls back, a typed [`DbError::Timeout`] error frame is
//!   sent best-effort, and the connection closes.
//! * **Auth.** With [`Server::with_auth_token`], the first request on
//!   every connection must be `Auth` carrying the shared secret (compared
//!   in constant time); anything else earns a typed
//!   [`DbError::AuthFailed`] frame and a close. Without a token, stray
//!   `Auth` frames are accepted and ignored, so
//!   [`Client::connect_with_token`](decibel_wire::Client::connect_with_token)
//!   works against any server.
//!
//! Dropping a connection drops its session, which rolls back any open
//! transaction and releases its branch locks — the disconnect semantics
//! the paper asks for ("rolled back if the client crashes or disconnects
//! before committing") fall out of `Session`'s `Drop` impl, exactly as
//! before.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] flips the shared flag and wakes the loop via
//! the cross-thread [`Waker`]. The loop stops accepting, drops every
//! connection (sessions roll back), closes the job channel and joins the
//! workers (in-flight blocking calls complete; their sessions are dropped
//! on return), then exits. The handle finally checkpoints via
//! [`Database::flush`], so a cleanly stopped server restarts with an empty
//! journal suffix. The `decibel-server` binary triggers the same path from
//! SIGTERM/SIGINT.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use decibel_common::error::{DbError, Result};
use decibel_common::schema::Schema;
use decibel_common::Projection;
use decibel_core::cursor::{MultiScanCursor, ScanCursor};
use decibel_core::{Database, Session};
use decibel_netio::{Events, Interest, Poll, Token, Trigger, Waker};
use decibel_obs::{family, Counter, Gauge, Histogram, Registry, Snapshot};
use decibel_wire::frame::{write_frame, FrameDecoder};
use decibel_wire::proto::{self, Hello, Reply, Request, Response};

/// Token of the accept listener.
const LISTENER: Token = Token(0);
/// Token of the shutdown/completion waker.
const WAKER: Token = Token(1);
/// Connection slab index `i` registers under `Token(i + CONN_BASE)`.
const CONN_BASE: usize = 2;

/// Decoded requests a connection may queue before the loop pauses its
/// read interest. Small: pipelining hides round trips with 2–3 requests
/// in flight; dozens would just buy an abusive client server memory.
const MAX_PENDING: usize = 16;

/// Worker threads for blocking session calls. Commits group-fsync across
/// branches, so a handful of workers serves many concurrent writers.
const WORKERS: usize = 4;

/// Per-read scratch size. One socket drain may run many reads; frames
/// larger than this assemble incrementally in the decoder.
const READ_CHUNK: usize = 64 << 10;

/// Scan chunks produced per store-lock acquisition when the client keeps
/// up. Bounds both the lock hold (at most this many ~256 KiB chunks of
/// encode and nonblocking write) and how long one connection can hog the
/// loop; a backpressured socket ends the run early regardless.
const CHUNKS_PER_LOCK: usize = 32;

/// Stream-ahead cap: scan chunks keep being produced into the write
/// buffer until this many bytes sit unsent, then production parks until
/// the socket drains below it. Kernel send buffers are small (wmem_max
/// is ~200 KiB on stock Linux), and every park/resume pays the cursor's
/// O(prefix) skip — buffering a bounded handful of chunks in user space
/// absorbs that for all but the largest results, while a stalled client
/// still pins only this constant (~2 MiB), not O(result).
const STREAM_AHEAD: usize = 8 * proto::SCAN_BATCH_BYTES;

/// A bound, not-yet-serving listener. [`Server::spawn`] starts the event
/// loop and returns the [`ServerHandle`] used to stop it.
pub struct Server {
    listener: TcpListener,
    db: Arc<Database>,
    addr: SocketAddr,
    read_timeout: Option<Duration>,
    auth_token: Option<String>,
    poll: Poll,
    shared: Arc<Shared>,
}

/// State shared between the loop thread, the workers, and the handle.
struct Shared {
    shutdown: AtomicBool,
    waker: Waker,
    /// Live-connection gauge: registered sockets currently owned by the
    /// loop. Observable via [`ServerHandle::live_connections`] so tests
    /// can assert churn deregisters cleanly (no fd leak).
    live: AtomicUsize,
    /// The event loop's own metric registry (`server` family). Kept in
    /// the shared state so [`ServerHandle::metrics`] can snapshot it
    /// without talking to the loop thread.
    metrics: Registry,
}

/// The event loop's instruments, all under [`family::SERVER`]. Bound once
/// at loop start; the hot paths touch pre-resolved cells, never the
/// registry map.
struct ServerMetrics {
    /// Connections ever admitted (the live count is the gauge below).
    conns_total: Counter,
    /// Request frames launched, inline fast-path and worker-bound alike.
    requests: Counter,
    /// Times a streaming scan parked: socket backpressure or the
    /// per-lock chunk budget ran out and the cursor released its locks.
    stream_parks: Counter,
    /// Currently registered connections; its max is the concurrency
    /// high-water mark.
    conns_live: Gauge,
    /// High-water mark of decoded-but-unstarted requests on any one
    /// connection (caps at [`MAX_PENDING`] by construction).
    pipeline_depth: Gauge,
    /// High-water mark of unsent write-buffer bytes on any one
    /// connection (the stream-ahead cap bounds it during scans).
    backlog_bytes: Gauge,
    /// Worker-pool jobs in flight; its max against [`WORKERS`] shows
    /// pool saturation.
    workers_busy: Gauge,
    /// Wall time spent blocked in epoll per loop iteration — the loop's
    /// idle time, not its work time.
    poll_us: Histogram,
}

impl ServerMetrics {
    fn register(registry: &Registry) -> ServerMetrics {
        ServerMetrics {
            conns_total: registry.counter(family::SERVER, "conns_total"),
            requests: registry.counter(family::SERVER, "requests"),
            stream_parks: registry.counter(family::SERVER, "stream_parks"),
            conns_live: registry.gauge(family::SERVER, "conns_live"),
            pipeline_depth: registry.gauge(family::SERVER, "pipeline_depth"),
            backlog_bytes: registry.gauge(family::SERVER, "backlog_bytes"),
            workers_busy: registry.gauge(family::SERVER, "workers_busy"),
            poll_us: registry.histogram(family::SERVER, "poll_us"),
        }
    }
}

impl Server {
    /// Binds a listener for `db` on `addr` (use port 0 for an ephemeral
    /// port; [`Server::local_addr`] reports what was picked) and creates
    /// the epoll instance that will serve it.
    pub fn bind(db: Arc<Database>, addr: impl ToSocketAddrs) -> Result<Server> {
        let listener =
            TcpListener::bind(addr).map_err(|e| DbError::io("binding server listener", e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| DbError::io("reading listener address", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| DbError::io("setting listener nonblocking", e))?;
        let poll = Poll::new().map_err(|e| DbError::io("creating epoll instance", e))?;
        poll.register(&listener, LISTENER, Interest::READABLE, Trigger::Level)
            .map_err(|e| DbError::io("registering listener", e))?;
        let waker =
            Waker::new(&poll, WAKER).map_err(|e| DbError::io("creating server waker", e))?;
        Ok(Server {
            listener,
            db,
            addr,
            read_timeout: None,
            auth_token: None,
            poll,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                waker,
                live: AtomicUsize::new(0),
                metrics: Registry::new(),
            }),
        })
    }

    /// Sets a per-connection read timeout: a client idle between requests
    /// for longer than `timeout` has its open transaction rolled back
    /// (releasing its branch locks) and is sent a typed
    /// [`DbError::Timeout`] error frame before the connection closes — so
    /// a stalled or vanished client cannot pin locks forever. `None`
    /// (the default) waits indefinitely. A connection mid-request — reply
    /// draining, scan streaming, worker call in flight — is busy, not
    /// idle, no matter how slowly it reads.
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Requires every connection to present `token` (via
    /// [`Request::Auth`]) before its first real request. Compared in
    /// constant time; failures are rejected with a typed
    /// [`DbError::AuthFailed`] frame and a close.
    pub fn with_auth_token(mut self, token: Option<String>) -> Self {
        self.auth_token = token;
        self
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts the event loop on a background thread. Returns the handle
    /// that stops it.
    pub fn spawn(self) -> ServerHandle {
        let db = Arc::clone(&self.db);
        let addr = self.addr;
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::Builder::new()
            .name("decibel-evloop".into())
            .spawn(move || {
                EventLoop::new(self).run();
            })
            .expect("spawning server event loop");
        ServerHandle {
            db,
            addr,
            shared,
            thread,
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] for the graceful flag → wake → join →
/// checkpoint sequence.
pub struct ServerHandle {
    db: Arc<Database>,
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: JoinHandle<()>,
}

impl ServerHandle {
    /// The serving address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served database (shared; in-process callers may open their own
    /// sessions beside the network's).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Connections currently registered with the event loop. Disconnects
    /// are processed asynchronously, so tests poll this to assert churn
    /// releases registrations.
    pub fn live_connections(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    /// A point-in-time snapshot of every metric the server can see: the
    /// database registry (`pool` / `wal` / `commit` / `scan` /
    /// `checkpoint` families) merged with the event loop's own `server`
    /// family — the same payload
    /// [`Client::stats`](decibel_wire::Client::stats) receives over the
    /// wire.
    pub fn metrics(&self) -> Snapshot {
        self.db
            .metrics()
            .snapshot()
            .merge(&self.shared.metrics.snapshot())
    }

    /// Gracefully stops the server: no new connections, every live client
    /// socket closes (their sessions drop, rolling back open transactions
    /// and releasing branch locks), the workers drain and join, and the
    /// database is checkpointed via [`Database::flush`] so the next
    /// [`Database::open`] replays an empty journal suffix.
    pub fn shutdown(self) -> Result<()> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.shared.waker.wake();
        let _ = self.thread.join();
        // Every session is gone; checkpoint so the shutdown is durable and
        // cheap to reopen.
        self.db.flush()
    }
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

/// A blocking call dispatched off the loop. `session` is `Some` for
/// session-surface requests (the connection gives its session up until
/// the completion returns it) and `None` for database-surface ones.
struct Job {
    conn: usize,
    generation: u64,
    session: Option<Session>,
    req: Request,
}

/// A finished blocking call: the (possibly returned) session plus the
/// fully encoded response frames to append to the connection's write
/// buffer.
struct Done {
    conn: usize,
    generation: u64,
    session: Option<Session>,
    frames: Vec<u8>,
}

struct WorkerPool {
    tx: Option<Sender<Job>>,
    done_rx: Receiver<Done>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn start(db: &Arc<Database>, schema: &Schema, shared: &Arc<Shared>) -> WorkerPool {
        let (tx, rx) = mpsc::channel::<Job>();
        let (done_tx, done_rx) = mpsc::channel::<Done>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..WORKERS)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let done_tx = done_tx.clone();
                let db = Arc::clone(db);
                let schema = schema.clone();
                let shared = Arc::clone(shared);
                std::thread::Builder::new()
                    .name(format!("decibel-worker-{i}"))
                    .spawn(move || loop {
                        // Contend only for the receiver, not for job
                        // execution.
                        let job = match rx.lock().unwrap().recv() {
                            Ok(job) => job,
                            Err(_) => return, // channel closed: shutdown
                        };
                        let mut session = job.session;
                        let frames = respond_blocking(&db, &schema, session.as_mut(), job.req);
                        // The loop may have exited (hard shutdown race);
                        // a dead channel just drops the session, which
                        // rolls back — exactly what a dropped connection
                        // deserves.
                        let _ = done_tx.send(Done {
                            conn: job.conn,
                            generation: job.generation,
                            session,
                            frames,
                        });
                        let _ = shared.waker.wake();
                    })
                    .expect("spawning server worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            done_rx,
            handles,
        }
    }

    fn dispatch(&self, job: Job) {
        // Send cannot fail while the pool lives (tx is dropped only in
        // `join`, after the loop stops dispatching).
        self.tx
            .as_ref()
            .expect("worker pool already joined")
            .send(job)
            .expect("worker pool hung up");
    }

    /// Closes the job channel and joins every worker. Queued jobs finish
    /// first (a commit already accepted should hit the journal before the
    /// shutdown checkpoint); their completions are dropped by the caller,
    /// rolling back any returned session.
    fn join(&mut self) {
        self.tx = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Executes one blocking request and encodes its complete response
/// (error frames included — every failure here is an *application* error
/// shipped to the client; the connection stays up).
fn respond_blocking(
    db: &Arc<Database>,
    schema: &Schema,
    session: Option<&mut Session>,
    req: Request,
) -> Vec<u8> {
    let mut out = Vec::new();
    respond_blocking_into(&mut out, db, schema, session, req);
    out
}

/// [`respond_blocking`], appending to an existing buffer — the inline
/// fast path encodes straight into the connection's write buffer.
fn respond_blocking_into(
    out: &mut Vec<u8>,
    db: &Arc<Database>,
    schema: &Schema,
    session: Option<&mut Session>,
    req: Request,
) {
    let start = out.len();
    let result = execute_blocking(db, session, req);
    let enc = match result {
        Ok(Replies::One(reply)) => queue_response(out, schema, &Response::Ok(reply)),
        Ok(Replies::Annotated(projection, rows)) => (|| {
            let total = rows.len() as u64;
            for chunk in rows.chunks(proto::batch_rows(projection.image_size(schema))) {
                queue_response(
                    out,
                    schema,
                    &Response::AnnotatedBatch(projection.clone(), chunk.to_vec()),
                )?;
            }
            queue_response(out, schema, &Response::Ok(Reply::Rows(total)))
        })(),
        Err(err) => queue_response(out, schema, &Response::Err(err)),
    };
    if let Err(err) = enc {
        // Response encoding failed (schema-mismatched record out of the
        // engine — effectively unreachable). Replace the partial output
        // with one well-formed error frame.
        out.truncate(start);
        let _ = queue_response(out, schema, &Response::Err(err));
    }
}

/// What a blocking request produces.
enum Replies {
    One(Reply),
    /// The materializing parallel multi-scan: worker-side because the
    /// engine's work-stealing path wants its own threads and returns the
    /// full result anyway. Carries the projection its rows were narrowed
    /// to, so the batch frames ship only those columns.
    Annotated(
        Projection,
        Vec<(
            decibel_common::record::Record,
            Vec<decibel_common::ids::BranchId>,
        )>,
    ),
}

fn need_session() -> DbError {
    // Unreachable by construction: the loop classifies requests before
    // dispatch and only session-surface jobs carry the session.
    DbError::protocol("internal: session-surface request dispatched without a session")
}

/// Maps one blocking request onto the session / database surface — the
/// same one-for-one mapping the thread-per-client server used.
fn execute_blocking(
    db: &Arc<Database>,
    session: Option<&mut Session>,
    req: Request,
) -> Result<Replies> {
    use Replies::One;
    if let Some(session) = session {
        return Ok(One(match req {
            Request::CheckoutBranch { name } => Reply::Branch(session.checkout_branch(&name)?),
            Request::CheckoutCommit { commit } => {
                session.checkout_commit(commit)?;
                Reply::Unit
            }
            Request::Branch { name } => Reply::Branch(session.branch(&name)?),
            Request::Begin => {
                session.begin()?;
                Reply::Unit
            }
            Request::Insert { record } => {
                session.insert(record)?;
                Reply::Unit
            }
            Request::Update { record } => {
                session.update(record)?;
                Reply::Unit
            }
            Request::Delete { key } => Reply::Bool(session.delete(key)?),
            Request::Get { key } => Reply::MaybeRecord(session.get(key)?),
            Request::Commit => Reply::Commit(session.commit()?),
            Request::Rollback => {
                session.rollback();
                Reply::Unit
            }
            _ => return Err(need_session()),
        }));
    }
    Ok(match req {
        Request::LookupBranch { name } => One(Reply::Branch(db.branch_id(&name)?)),
        Request::Count { version, predicate } => One(Reply::Scalar(
            db.read(version).filter(predicate).count()? as f64,
        )),
        Request::Aggregate {
            version,
            column,
            agg,
            predicate,
        } => One(Reply::Scalar(
            db.read(version).filter(predicate).aggregate(column, agg)?,
        )),
        Request::MultiScan {
            branches,
            predicate,
            parallel,
            projection,
        } => {
            let mut builder = db
                .read_branches(&branches)
                .filter(predicate)
                .parallel(parallel);
            if let Some(cols) = projection.columns() {
                builder = builder.select(cols);
            }
            Replies::Annotated(projection, builder.annotated()?)
        }
        Request::Merge { into, from, policy } => One(Reply::Merge(db.merge(into, from, policy)?)),
        Request::Flush => {
            db.flush()?;
            One(Reply::Unit)
        }
        _ => return Err(need_session()),
    })
}

/// Whether a request's blocking call runs on the session surface (the
/// worker takes the connection's session along).
fn takes_session(req: &Request) -> bool {
    matches!(
        req,
        Request::CheckoutBranch { .. }
            | Request::CheckoutCommit { .. }
            | Request::Branch { .. }
            | Request::Begin
            | Request::Insert { .. }
            | Request::Update { .. }
            | Request::Delete { .. }
            | Request::Get { .. }
            | Request::Commit
            | Request::Rollback
    )
}

/// Encodes `resp` as one frame appended to `out`.
fn queue_response(out: &mut Vec<u8>, schema: &Schema, resp: &Response) -> Result<()> {
    write_frame(out, &resp.encode(schema)?)
}

/// Writes as much buffered output as the socket accepts right now.
/// `Err(())` is a fatal socket error (peer gone): close the connection.
/// On `Ok`, the drain state is whatever `out_pos` vs `outbuf` says.
fn flush_buffer(
    stream: &mut TcpStream,
    outbuf: &mut Vec<u8>,
    out_pos: &mut usize,
) -> std::result::Result<(), ()> {
    while *out_pos < outbuf.len() {
        match stream.write(&outbuf[*out_pos..]) {
            Ok(0) => return Err(()),
            Ok(n) => *out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    if *out_pos == outbuf.len() {
        outbuf.clear();
        *out_pos = 0;
    } else if *out_pos >= proto::SCAN_BATCH_BYTES {
        // Partial drain of a large buffer: reclaim the sent prefix so a
        // long stream to a slow client does not grow the buffer.
        outbuf.drain(..*out_pos);
        *out_pos = 0;
    }
    Ok(())
}

/// Constant-time token comparison: the fold visits every byte of both
/// strings regardless of where (or whether) they differ, so response
/// timing does not leak a matching prefix length.
fn token_matches(expected: &str, presented: &str) -> bool {
    let (a, b) = (expected.as_bytes(), presented.as_bytes());
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= (x ^ y) as usize;
    }
    diff == 0
}

// ---------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------

/// An in-flight streamed scan: the resumable cursor whose next chunk is
/// produced when — and only when — the write buffer has drained, plus
/// the projection its batch frames are encoded under and the rows per
/// batch that projection's image size buys within
/// [`proto::SCAN_BATCH_BYTES`] (a 2-of-12-column scan packs ~6× the rows
/// of a whole-record one into each frame).
struct Stream<C> {
    cursor: C,
    projection: Projection,
    rows_per_batch: usize,
}

enum Streaming {
    Records(Stream<ScanCursor>),
    Annotated(Stream<MultiScanCursor>),
}

/// What a connection is doing between events.
enum Active {
    /// Nothing in flight; the next queued request may start.
    Idle,
    /// A chunked scan is streaming; `session` stays on the connection.
    Streaming(Streaming),
    /// A worker owns the request (and, for session ops, the session);
    /// completion arrives through the done channel.
    Worker,
}

struct Connection {
    stream: TcpStream,
    generation: u64,
    decoder: FrameDecoder,
    /// Decoded request frames not yet started (client pipelining).
    pending: VecDeque<Vec<u8>>,
    /// Write buffer: at most ~one scan chunk plus small replies.
    outbuf: Vec<u8>,
    out_pos: usize,
    session: Option<Session>,
    active: Active,
    interest: Interest,
    authed: bool,
    /// Flush the write buffer, then close (auth rejection path).
    closing: bool,
    last_activity: Instant,
}

impl Connection {
    fn is_busy(&self) -> bool {
        !matches!(self.active, Active::Idle)
            || !self.pending.is_empty()
            || self.out_pos < self.outbuf.len()
    }

    fn desired_interest(&self) -> Interest {
        let mut want = Interest::NONE;
        // Stop reading while the pipeline queue is full (or while
        // draining a rejected connection): bytes back up into the kernel
        // buffer and TCP flow control pushes back on the sender.
        if self.pending.len() < MAX_PENDING && !self.closing {
            want = want | Interest::READABLE;
        }
        if self.out_pos < self.outbuf.len() {
            want = want | Interest::WRITABLE;
        }
        want
    }
}

/// Outcome of pumping a connection: keep it, or close (dropping the
/// session, which rolls back).
#[derive(PartialEq)]
enum Disposition {
    Keep,
    Close,
}

struct EventLoop {
    poll: Poll,
    listener: TcpListener,
    db: Arc<Database>,
    schema: Schema,
    hello_frame: Vec<u8>,
    read_timeout: Option<Duration>,
    auth_token: Option<String>,
    shared: Arc<Shared>,
    workers: WorkerPool,
    conns: Vec<Option<Connection>>,
    free: Vec<usize>,
    next_generation: u64,
    /// Deadline wheel: `(deadline, slot, generation)` min-heap with lazy
    /// deletion — one live entry per connection, re-armed on pop.
    deadlines: BinaryHeap<Reverse<(Instant, usize, u64)>>,
    scratch: Vec<u8>,
    obs: ServerMetrics,
}

impl EventLoop {
    fn new(server: Server) -> EventLoop {
        let schema = server.db.schema();
        let hello = Hello {
            protocol: proto::PROTOCOL_VERSION,
            schema: schema.clone(),
            engine: server.db.engine_kind().name().to_string(),
        };
        let mut hello_frame = Vec::new();
        write_frame(&mut hello_frame, &hello.encode()).expect("encoding hello");
        let workers = WorkerPool::start(&server.db, &schema, &server.shared);
        let obs = ServerMetrics::register(&server.shared.metrics);
        EventLoop {
            poll: server.poll,
            listener: server.listener,
            db: server.db,
            schema,
            hello_frame,
            read_timeout: server.read_timeout,
            auth_token: server.auth_token,
            shared: server.shared,
            workers,
            conns: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
            deadlines: BinaryHeap::new(),
            scratch: vec![0u8; READ_CHUNK],
            obs,
        }
    }

    fn run(mut self) {
        let mut events = Events::with_capacity(256);
        loop {
            // Check the flag *before* blocking, not only after poll
            // returns: a shutdown wake that lands between the post-poll
            // check and this iteration's `waker.drain()` is silently
            // consumed by that drain, and a post-poll check alone would
            // then sleep forever. `shutdown()` stores the flag before
            // waking, so any wake consumed by a previous iteration's
            // drain implies the store is visible to this load.
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let timeout = self.next_poll_timeout();
            let span = self.obs.poll_us.start();
            let polled = self.poll.poll(&mut events, timeout);
            span.finish();
            if polled.is_err() {
                // Only unrecoverable epoll failures land here (EINTR is
                // retried inside poll); nothing to serve without a
                // selector.
                break;
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Collect first: handling may close connections and reuse
            // slots, and a slot must not see a stale event after reuse.
            let fired: Vec<_> = events.iter().collect();
            for ev in fired {
                match ev.token() {
                    LISTENER => self.accept_ready(),
                    WAKER => self.shared.waker.drain(),
                    Token(t) => {
                        let slot = t - CONN_BASE;
                        self.connection_ready(slot, ev.is_readable(), ev.is_writable());
                    }
                }
            }
            self.drain_completions();
            self.expire_idle();
        }
        self.teardown();
    }

    fn teardown(&mut self) {
        // Order matters: close every connection first (their sessions
        // roll back and release branch locks), then let the workers
        // finish queued jobs — a commit the server already accepted
        // deserves to reach the journal before the shutdown checkpoint —
        // and finally drop their completions (returned sessions roll
        // back on drop).
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.close(slot);
            }
        }
        self.workers.join();
        while self.workers.done_rx.try_recv().is_ok() {}
    }

    fn next_poll_timeout(&mut self) -> Option<Duration> {
        self.read_timeout?;
        let now = Instant::now();
        self.deadlines
            .peek()
            .map(|Reverse((when, _, _))| when.saturating_duration_since(now))
    }

    // -- accept ------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (ECONNABORTED, EMFILE): the
                // listener stays registered; level-triggered epoll
                // re-reports pending connections on the next poll, so
                // returning here cannot lose an accept.
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        // Request/response round trips are latency-bound; never Nagle
        // them. A failure here means the socket is already dead.
        if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
            return;
        }
        // A generous send buffer lets a multi-chunk scan burst land in
        // kernel space in one lock acquisition instead of bouncing the
        // producer through WouldBlock/resume cycles (each resume re-walks
        // the scan prefix). Best-effort: the kernel clamps to wmem_max,
        // and backpressure semantics don't depend on the size.
        {
            use std::os::fd::AsRawFd;
            let _ = decibel_netio::set_send_buffer_size(stream.as_raw_fd(), 4 << 20);
        }
        let generation = self.next_generation;
        self.next_generation += 1;
        let mut conn = Connection {
            stream,
            generation,
            decoder: FrameDecoder::new(),
            pending: VecDeque::new(),
            outbuf: self.hello_frame.clone(),
            out_pos: 0,
            session: Some(self.db.session()),
            active: Active::Idle,
            interest: Interest::NONE,
            authed: self.auth_token.is_none(),
            closing: false,
            last_activity: Instant::now(),
        };
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        let token = Token(slot + CONN_BASE);
        conn.interest = conn.desired_interest();
        if self
            .poll
            .register(&conn.stream, token, conn.interest, Trigger::Level)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(conn);
        self.shared.live.fetch_add(1, Ordering::SeqCst);
        self.obs.conns_total.inc();
        self.obs.conns_live.inc();
        if let Some(timeout) = self.read_timeout {
            let deadline = Instant::now() + timeout;
            self.deadlines.push(Reverse((deadline, slot, generation)));
        }
        // The hello usually fits the fresh socket buffer; push it now
        // rather than waiting a poll cycle for the writable event.
        if self.pump(slot) == Disposition::Close {
            self.close(slot);
        }
    }

    // -- per-connection event handling -------------------------------

    fn connection_ready(&mut self, slot: usize, readable: bool, _writable: bool) {
        if self.conns.get(slot).is_none_or(Option::is_none) {
            return; // closed earlier this batch; stale event
        }
        if readable && self.read_ready(slot) == Disposition::Close {
            self.close(slot);
            return;
        }
        // Writability is re-checked by pump itself (it writes until
        // WouldBlock), so both paths converge here.
        if self.pump(slot) == Disposition::Close {
            self.close(slot);
        }
    }

    /// Drains the socket into the frame decoder (stopping early if the
    /// pipeline queue fills) and queues decoded frames.
    fn read_ready(&mut self, slot: usize) -> Disposition {
        let conn = self.conns[slot].as_mut().unwrap();
        loop {
            if conn.pending.len() >= MAX_PENDING || conn.closing {
                return Disposition::Keep; // backpressure: leave bytes in the kernel
            }
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    // Peer closed. Anything mid-frame or mid-request dies
                    // with the connection (the session rolls back); a
                    // clean between-frames EOF is just a disconnect.
                    return Disposition::Close;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.decoder.feed(&self.scratch[..n]);
                    loop {
                        if conn.pending.len() >= MAX_PENDING {
                            break;
                        }
                        match conn.decoder.next_frame() {
                            Ok(Some(frame)) => conn.pending.push_back(frame),
                            Ok(None) => break,
                            // Broken framing is unrecoverable: close.
                            Err(_) => return Disposition::Close,
                        }
                    }
                    self.obs
                        .pipeline_depth
                        .observe_max(conn.pending.len() as u64);
                    if n < self.scratch.len() {
                        // A short read means the kernel buffer is drained;
                        // skip the syscall that would confirm WouldBlock.
                        // (Level-triggered: anything racing in after this
                        // read re-arms the readable event anyway.)
                        return Disposition::Keep;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Disposition::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Disposition::Close,
            }
        }
    }

    /// Advances a connection's state machine as far as it will go without
    /// blocking: flush the write buffer; produce scan chunks while the
    /// unsent backlog is under [`STREAM_AHEAD`]; start the next queued
    /// request once the buffer fully drains; repeat. This is the single
    /// place the write-gating invariant lives: the write buffer never
    /// holds more than the stream-ahead cap of a scan, or ~one response
    /// otherwise.
    fn pump(&mut self, slot: usize) -> Disposition {
        loop {
            if self.flush_writes(slot) == Disposition::Close {
                return Disposition::Close;
            }
            let conn = self.conns[slot].as_mut().unwrap();
            let backlog = conn.outbuf.len() - conn.out_pos;
            self.obs.backlog_bytes.observe_max(backlog as u64);
            if conn.closing {
                if backlog == 0 {
                    return Disposition::Close; // rejection fully flushed
                }
                break; // keep draining the rejection
            }
            match &mut conn.active {
                Active::Worker => break, // completion will re-pump
                Active::Streaming(_) => {
                    if backlog >= STREAM_AHEAD {
                        break; // buffered far enough ahead: wait for writable
                    }
                    if self.produce_chunks(slot) == Disposition::Close {
                        return Disposition::Close;
                    }
                }
                Active::Idle => {
                    if backlog > 0 {
                        break; // finish the previous response first
                    }
                    // Reads may have stopped early with frames still in
                    // the decoder; surface them now that there is room.
                    while conn.pending.len() < MAX_PENDING {
                        match conn.decoder.next_frame() {
                            Ok(Some(frame)) => conn.pending.push_back(frame),
                            Ok(None) => break,
                            Err(_) => return Disposition::Close,
                        }
                    }
                    match conn.pending.pop_front() {
                        Some(frame) => {
                            if self.start_request(slot, frame) == Disposition::Close {
                                return Disposition::Close;
                            }
                        }
                        None => break, // fully idle
                    }
                }
            }
        }
        self.update_interest(slot);
        Disposition::Keep
    }

    fn flush_writes(&mut self, slot: usize) -> Disposition {
        let conn = self.conns[slot].as_mut().unwrap();
        match flush_buffer(&mut conn.stream, &mut conn.outbuf, &mut conn.out_pos) {
            Ok(()) => Disposition::Keep,
            Err(()) => Disposition::Close,
        }
    }

    /// Streams chunks of the in-flight scan into the socket via the
    /// cursor's single-lock-acquisition fast path: the sink encodes each
    /// chunk into the write buffer and flushes as much as the socket
    /// accepts, and production continues while the unsent backlog stays
    /// under [`STREAM_AHEAD`]. A backpressured client stops the run at
    /// that cap — releasing the store locks and pinning a bounded handful
    /// of chunks — while a fast reader amortizes the cursor's O(prefix)
    /// resume skip over [`CHUNKS_PER_LOCK`] chunks instead of paying it
    /// per chunk.
    fn produce_chunks(&mut self, slot: usize) -> Disposition {
        let schema = &self.schema;
        let conn = self.conns[slot].as_mut().unwrap();
        let mut active = std::mem::replace(&mut conn.active, Active::Idle);
        let Active::Streaming(streaming) = &mut active else {
            unreachable!("produce_chunks outside a stream");
        };
        let mut dead = false;
        let step: Result<bool> = {
            let stream = &mut conn.stream;
            let outbuf = &mut conn.outbuf;
            let out_pos = &mut conn.out_pos;
            let dead = &mut dead;
            match streaming {
                Streaming::Records(s) => {
                    let projection = &s.projection;
                    s.cursor
                        .for_each_chunk(s.rows_per_batch, CHUNKS_PER_LOCK, |rows| {
                            let resp = Response::Batch(projection.clone(), rows);
                            queue_response(outbuf, schema, &resp)?;
                            if flush_buffer(stream, outbuf, out_pos).is_err() {
                                *dead = true;
                                return Ok(false);
                            }
                            Ok(outbuf.len() - *out_pos < STREAM_AHEAD)
                        })
                }
                Streaming::Annotated(s) => {
                    let projection = &s.projection;
                    s.cursor
                        .for_each_chunk(s.rows_per_batch, CHUNKS_PER_LOCK, |rows| {
                            let resp = Response::AnnotatedBatch(projection.clone(), rows);
                            queue_response(outbuf, schema, &resp)?;
                            if flush_buffer(stream, outbuf, out_pos).is_err() {
                                *dead = true;
                                return Ok(false);
                            }
                            Ok(outbuf.len() - *out_pos < STREAM_AHEAD)
                        })
                }
            }
        };
        if dead {
            return Disposition::Close;
        }
        let terminal = match step {
            Ok(true) => {
                let emitted = match &*streaming {
                    Streaming::Records(s) => s.cursor.emitted(),
                    Streaming::Annotated(s) => s.cursor.emitted(),
                };
                Some(Response::Ok(Reply::Rows(emitted)))
            }
            // Not exhausted: socket backpressure or the chunk budget ran
            // out. Park the cursor; pump resumes it when the buffer
            // drains.
            Ok(false) => {
                self.obs.stream_parks.inc();
                conn.active = active;
                None
            }
            // A scan failing mid-stream terminates it with a typed error
            // frame; the client's scan terminal surfaces it. The
            // connection stays up.
            Err(err) => Some(Response::Err(err)),
        };
        if let Some(response) = terminal {
            if queue_response(&mut conn.outbuf, schema, &response).is_err() {
                return Disposition::Close;
            }
        }
        Disposition::Keep
    }

    /// Decodes and launches one queued request. Runs with `active` Idle
    /// and an empty write buffer (pump's invariant).
    fn start_request(&mut self, slot: usize, frame: Vec<u8>) -> Disposition {
        let conn = self.conns[slot].as_mut().unwrap();
        let req = match Request::decode(&frame, &self.schema) {
            Ok(req) => req,
            Err(err) => {
                // A malformed body is the client's bug, not a broken
                // stream: the framing layer already isolated the frame,
                // so report the decode error and keep serving.
                if queue_response(&mut conn.outbuf, &self.schema, &Response::Err(err)).is_err() {
                    return Disposition::Close;
                }
                return Disposition::Keep;
            }
        };
        self.obs.requests.inc();
        // Authentication gate: on a token-protected server the first
        // request must present the token; everything else — including a
        // wrong token — is rejected with a typed error and a close (after
        // the error frame drains).
        if let Request::Auth { token } = &req {
            let ok = match &self.auth_token {
                Some(expected) => token_matches(expected, token),
                None => true, // no-auth server: accept and ignore
            };
            let response = if ok {
                conn.authed = true;
                Response::Ok(Reply::Unit)
            } else {
                conn.closing = true;
                Response::Err(DbError::AuthFailed)
            };
            if queue_response(&mut conn.outbuf, &self.schema, &response).is_err() {
                return Disposition::Close;
            }
            return Disposition::Keep;
        }
        if !conn.authed {
            conn.closing = true;
            let resp = Response::Err(DbError::AuthFailed);
            if queue_response(&mut conn.outbuf, &self.schema, &resp).is_err() {
                return Disposition::Close;
            }
            return Disposition::Keep;
        }
        // Stats is answered on the loop: snapshotting two registries is a
        // handful of relaxed atomic loads, cheaper than a worker round
        // trip. The reply merges the database's families with the event
        // loop's own `server` family.
        if matches!(req, Request::Stats) {
            let snap = self
                .db
                .metrics()
                .snapshot()
                .merge(&self.shared.metrics.snapshot());
            let resp = Response::Ok(Reply::Stats(snap));
            if queue_response(&mut conn.outbuf, &self.schema, &resp).is_err() {
                return Disposition::Close;
            }
            return Disposition::Keep;
        }
        // Inline fast path: inside an open transaction the session already
        // holds the branch's exclusive 2PL lock, so writes and reads on it
        // cannot block on lock acquisition (and rollback only releases
        // locks). Running them on the loop skips the worker round trip —
        // channel, mutex, eventfd wake — which otherwise dominates the
        // latency of these microsecond-scale calls.
        let inline = match &req {
            Request::Rollback => true,
            Request::Insert { .. }
            | Request::Update { .. }
            | Request::Delete { .. }
            | Request::Get { .. } => conn.session.as_ref().is_some_and(|s| s.in_transaction()),
            _ => false,
        };
        if inline {
            respond_blocking_into(
                &mut conn.outbuf,
                &self.db,
                &self.schema,
                conn.session.as_mut(),
                req,
            );
            return Disposition::Keep;
        }
        // A scan-shaped request with an unknown projection column fails
        // here — a typed error frame before any cursor opens or lock is
        // taken — not halfway through a stream.
        if let Request::Collect { projection, .. } | Request::MultiScan { projection, .. } = &req {
            if let Err(err) = projection.validate(&self.schema) {
                if queue_response(&mut conn.outbuf, &self.schema, &Response::Err(err)).is_err() {
                    return Disposition::Close;
                }
                return Disposition::Keep;
            }
        }
        match req {
            // Streamed scans run on the loop: the cursor snapshots what it
            // needs (session overlay clone / version + predicate) and
            // holds locks only inside the cursor's chunk production.
            Request::ScanSession => {
                let cursor = conn
                    .session
                    .as_ref()
                    .expect("session present while idle")
                    .chunked_scan();
                conn.active = Active::Streaming(Streaming::Records(Stream {
                    cursor,
                    rows_per_batch: proto::batch_rows(self.schema.record_size()),
                    projection: Projection::All,
                }));
            }
            Request::Collect {
                version,
                predicate,
                projection,
            } => {
                let cursor = self
                    .db
                    .chunked_scan_projected(version, predicate, projection.clone());
                conn.active = Active::Streaming(Streaming::Records(Stream {
                    cursor,
                    rows_per_batch: proto::batch_rows(projection.image_size(&self.schema)),
                    projection,
                }));
            }
            Request::MultiScan {
                branches,
                predicate,
                parallel,
                projection,
            } if parallel <= 1 => {
                let cursor =
                    self.db
                        .chunked_multi_scan_projected(branches, predicate, projection.clone());
                conn.active = Active::Streaming(Streaming::Annotated(Stream {
                    cursor,
                    rows_per_batch: proto::batch_rows(projection.image_size(&self.schema)),
                    projection,
                }));
            }
            // Everything that can block — 2PL acquisition, commit fsync,
            // merge, flush, the materializing parallel scan — goes to the
            // worker pool; session ops take the session along.
            req => {
                let session = if takes_session(&req) {
                    Some(conn.session.take().expect("session present while idle"))
                } else {
                    None
                };
                let job = Job {
                    conn: slot,
                    generation: conn.generation,
                    session,
                    req,
                };
                conn.active = Active::Worker;
                self.obs.workers_busy.inc();
                self.workers.dispatch(job);
            }
        }
        Disposition::Keep
    }

    fn update_interest(&mut self, slot: usize) {
        let conn = self.conns[slot].as_mut().unwrap();
        let want = conn.desired_interest();
        if want != conn.interest {
            let token = Token(slot + CONN_BASE);
            if self
                .poll
                .reregister(&conn.stream, token, want, Trigger::Level)
                .is_ok()
            {
                conn.interest = want;
            }
        }
    }

    // -- worker completions ------------------------------------------

    fn drain_completions(&mut self) {
        while let Ok(done) = self.workers.done_rx.try_recv() {
            // Every completion frees a worker, whether or not its
            // connection survived the call.
            self.obs.workers_busy.dec();
            let alive = self
                .conns
                .get_mut(done.conn)
                .and_then(Option::as_mut)
                .filter(|c| c.generation == done.generation);
            let Some(conn) = alive else {
                // The connection died while its call ran; dropping `done`
                // drops the returned session, rolling back.
                continue;
            };
            if let Some(session) = done.session {
                conn.session = Some(session);
            }
            conn.outbuf.extend_from_slice(&done.frames);
            conn.active = Active::Idle;
            if self.pump(done.conn) == Disposition::Close {
                self.close(done.conn);
            }
        }
    }

    // -- idle timeout -------------------------------------------------

    fn expire_idle(&mut self) {
        let Some(timeout) = self.read_timeout else {
            return;
        };
        let now = Instant::now();
        while let Some(&Reverse((when, slot, generation))) = self.deadlines.peek() {
            if when > now {
                break;
            }
            self.deadlines.pop();
            let Some(conn) = self
                .conns
                .get_mut(slot)
                .and_then(Option::as_mut)
                .filter(|c| c.generation == generation)
            else {
                continue; // lazy deletion: the connection is gone
            };
            let idle_deadline = conn.last_activity + timeout;
            if idle_deadline > now || conn.is_busy() {
                // Not actually idle: activity since arming, or a request
                // in flight (slow readers draining a scan are busy, not
                // idle). Re-arm.
                let rearm = if conn.is_busy() {
                    now + timeout
                } else {
                    idle_deadline
                };
                self.deadlines.push(Reverse((rearm, slot, generation)));
                continue;
            }
            // Idle past the limit: roll the transaction back so its
            // branch locks free, tell the client why in a typed error
            // frame (best effort — the peer may be gone), and close.
            if let Some(session) = conn.session.as_mut() {
                session.rollback();
            }
            let err = DbError::timeout(
                "connection idle past the server read timeout; transaction rolled back",
            );
            let _ = queue_response(&mut conn.outbuf, &self.schema, &Response::Err(err));
            let _ = self.flush_writes(slot);
            self.close(slot);
        }
    }

    // -- lifecycle ----------------------------------------------------

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poll.deregister(&conn.stream);
            self.free.push(slot);
            self.shared.live.fetch_sub(1, Ordering::SeqCst);
            self.obs.conns_live.dec();
            // `conn` drops here: socket closes; the session (if not out
            // with a worker) rolls back. A session that *is* out with a
            // worker rolls back when its completion is dropped.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decibel_common::ids::BranchId;
    use decibel_common::record::Record;
    use decibel_common::schema::ColumnType;
    use decibel_core::EngineKind;
    use decibel_pagestore::StoreConfig;
    use decibel_wire::frame::read_frame;
    use decibel_wire::Client;

    fn serve_with(configure: impl FnOnce(Server) -> Server) -> (tempfile::TempDir, ServerHandle) {
        let dir = tempfile::tempdir().unwrap();
        let db = Database::create(
            dir.path().join("db"),
            EngineKind::Hybrid,
            Schema::new(2, ColumnType::U32),
            &StoreConfig::test_default(),
        )
        .unwrap();
        let server = configure(Server::bind(db, "127.0.0.1:0").unwrap());
        (dir, server.spawn())
    }

    fn serve() -> (tempfile::TempDir, ServerHandle) {
        serve_with(|s| s)
    }

    #[test]
    fn hello_then_basic_write_read() {
        let (_d, handle) = serve();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        assert_eq!(client.engine(), "hybrid");
        assert_eq!(client.schema().num_columns(), 2);
        client.insert(Record::new(1, vec![10, 20])).unwrap();
        client.commit().unwrap();
        assert_eq!(client.get(1).unwrap().unwrap().field(1), 20);
        assert_eq!(client.scan_collect().unwrap().len(), 1);
        handle.shutdown().unwrap();
    }

    #[test]
    fn disconnect_rolls_back_and_releases_locks() {
        let (_d, handle) = serve();
        {
            let mut a = Client::connect(handle.local_addr()).unwrap();
            a.insert(Record::new(1, vec![1, 1])).unwrap();
            // dropped without commit: the server-side session rolls back
        }
        let mut b = Client::connect(handle.local_addr()).unwrap();
        // The key never existed and the branch lock is free — but the
        // server processes the disconnect asynchronously, so retry briefly.
        let mut ok = false;
        for _ in 0..100 {
            match b.insert(Record::new(1, vec![2, 2])) {
                Ok(()) => {
                    ok = true;
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        assert!(ok, "lock never released after disconnect");
        b.commit().unwrap();
        assert_eq!(b.get(1).unwrap().unwrap().field(0), 2);
        handle.shutdown().unwrap();
    }

    #[test]
    fn connection_churn_releases_registrations() {
        // Regression: the live-connection gauge must track *live*
        // connections, not lifetime connection count — otherwise every
        // past client leaks a registered descriptor until the process
        // hits EMFILE.
        let (_d, handle) = serve();
        for k in 0..20u64 {
            let mut c = Client::connect(handle.local_addr()).unwrap();
            c.insert(Record::new(1000 + k, vec![k, k])).unwrap();
            c.commit().unwrap();
        }
        // Disconnects are processed asynchronously; wait for the loop to
        // deregister them.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let live = handle.live_connections();
            if live == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{live} connection registrations never released"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        handle.shutdown().unwrap();
    }

    #[test]
    fn shutdown_checkpoints_and_unblocks_clients() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db");
        let config = StoreConfig::test_default();
        let db = Database::create(
            &path,
            EngineKind::Hybrid,
            Schema::new(2, ColumnType::U32),
            &config,
        )
        .unwrap();
        let handle = Server::bind(db, "127.0.0.1:0").unwrap().spawn();
        let addr = handle.local_addr();
        let mut client = Client::connect(addr).unwrap();
        client.insert(Record::new(5, vec![50, 55])).unwrap();
        client.commit().unwrap();
        // A second client sits idle in a blocking read; shutdown must not
        // hang on it.
        let idle = Client::connect(addr).unwrap();
        handle.shutdown().unwrap();
        drop(idle);
        assert!(path.join("CHECKPOINT").exists(), "shutdown checkpoints");
        // Clean restart: the checkpoint covers everything.
        let db = Database::open(&path, &config).unwrap();
        assert_eq!(db.replayed_on_open(), 0);
        assert_eq!(
            db.read(BranchId::MASTER).count().unwrap(),
            1,
            "committed row survives the restart"
        );
    }

    #[test]
    fn typed_errors_cross_the_wire() {
        let (_d, handle) = serve();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        client.insert(Record::new(1, vec![1, 1])).unwrap();
        client.commit().unwrap();
        let err = client.insert(Record::new(1, vec![2, 2])).unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey { key: 1 }), "{err}");
        let err = client.checkout_branch("nope").unwrap_err();
        assert!(matches!(err, DbError::UnknownBranch(_)), "{err}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn stats_merge_database_and_server_families() {
        let (_d, handle) = serve();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        for k in 0..50u64 {
            client.insert(Record::new(k, vec![k, k])).unwrap();
        }
        client.commit().unwrap();
        assert_eq!(client.scan_collect().unwrap().len(), 50);
        let snap = client.stats().unwrap();
        // Database-side families crossed the wire...
        assert_eq!(snap.counter("commit", "grouped_txns"), 1);
        assert!(snap.histogram("commit", "commit_us").unwrap().count >= 1);
        assert!(snap.counter("scan", "rows_scanned") >= 50);
        // ...merged with the event loop's own family.
        assert!(snap.counter("server", "conns_total") >= 1);
        let (live, live_max) = snap.gauge("server", "conns_live");
        assert_eq!(live, 1);
        assert!(live_max >= 1);
        // 50 inserts + commit + scan + stats, at least.
        assert!(snap.counter("server", "requests") >= 53);
        // The handle-side snapshot sees the same registries in-process.
        let local = handle.metrics();
        assert!(local.counter("server", "requests") >= snap.counter("server", "requests"));
        assert_eq!(local.counter("commit", "grouped_txns"), 1);
        handle.shutdown().unwrap();
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        // The state machine decodes the next request while the previous
        // reply drains; send a burst of frames in one write and expect
        // every reply, in order, without interleaving.
        let (_d, handle) = serve();
        let schema = handle.database().schema();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        let hello = read_frame(&mut stream).unwrap().unwrap();
        Hello::decode(&hello).unwrap();
        let mut burst = Vec::new();
        for k in 0..8u64 {
            let req = Request::Insert {
                record: Record::new(k, vec![k, k]),
            };
            write_frame(&mut burst, &req.encode(&schema).unwrap()).unwrap();
        }
        write_frame(&mut burst, &Request::Commit.encode(&schema).unwrap()).unwrap();
        stream.write_all(&burst).unwrap();
        for _ in 0..8 {
            let frame = read_frame(&mut stream).unwrap().unwrap();
            match Response::decode(&frame, &schema).unwrap() {
                Response::Ok(Reply::Unit) => {}
                other => panic!("expected unit ack, got {other:?}"),
            }
        }
        let frame = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&frame, &schema).unwrap(),
            Response::Ok(Reply::Commit(_))
        ));
        drop(stream);
        handle.shutdown().unwrap();
    }

    #[test]
    fn auth_token_gates_every_request() {
        let (_d, handle) = serve_with(|s| s.with_auth_token(Some("open sesame".into())));
        let addr = handle.local_addr();

        // Right token: full service.
        let mut ok = Client::connect_with_token(addr, "open sesame").unwrap();
        ok.insert(Record::new(1, vec![1, 1])).unwrap();
        ok.commit().unwrap();

        // Wrong token: typed rejection.
        let err = Client::connect_with_token(addr, "open sesamee")
            .err()
            .unwrap();
        assert!(matches!(err, DbError::AuthFailed), "{err}");

        // No token at all: the first real request is rejected and the
        // connection closes without serving it.
        let mut anon = Client::connect(addr).unwrap();
        let err = anon.get(1).unwrap_err();
        assert!(matches!(err, DbError::AuthFailed), "{err}");
        assert!(anon.get(1).is_err(), "connection must be closed");

        handle.shutdown().unwrap();
    }

    #[test]
    fn no_auth_server_accepts_and_ignores_tokens() {
        let (_d, handle) = serve();
        let mut client = Client::connect_with_token(handle.local_addr(), "whatever").unwrap();
        client.insert(Record::new(9, vec![9, 9])).unwrap();
        client.commit().unwrap();
        handle.shutdown().unwrap();
    }

    #[test]
    fn constant_time_compare_is_exact() {
        assert!(token_matches("", ""));
        assert!(token_matches("abc", "abc"));
        assert!(!token_matches("abc", "abd"));
        assert!(!token_matches("abc", "ab"));
        assert!(!token_matches("ab", "abc"));
        assert!(!token_matches("abc", ""));
        assert!(!token_matches("", "abc"));
    }
}
