//! The Decibel TCP server: one [`Session`] per connection over a shared
//! [`Arc<Database>`].
//!
//! "Users interact with Decibel by opening a connection to the Decibel
//! server, which creates a session" (§2.2.3). The concurrency model is
//! exactly the one PR 3's connection API was designed for: sessions are
//! `Send + 'static` and own their `Arc<Database>`, so the server runs one
//! plain thread per client, each holding one session. Readers share the
//! store's reader-writer lock and proceed in parallel; writers serialize
//! per branch through the session layer's two-phase locks. Dropping a
//! connection drops its session, which rolls back any open transaction and
//! releases its branch locks — the disconnect semantics the paper asks for
//! ("rolled back if the client crashes or disconnects before committing")
//! fall out of `Session`'s `Drop` impl with no extra bookkeeping.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] is the graceful path: it flips the shared
//! shutdown flag, wakes the blocked `accept` with a loopback connection,
//! shuts every client socket down (unblocking their readers), joins all
//! threads, and finally checkpoints the database via [`Database::flush`] —
//! so a cleanly stopped server restarts with an empty journal suffix. The
//! `decibel-server` binary triggers the same path from SIGTERM/SIGINT: the
//! signal handler only stores a flag; the main thread notices and runs the
//! orderly shutdown outside signal context.
//!
//! # Scan memory vs. lock hold time
//!
//! Scan-shaped requests materialize their full result set server-side
//! before the first batch frame is written (the in-process terminals —
//! `scan_collect`, `collect`, `annotated` — materialize too). This is a
//! deliberate trade: streaming rows straight off the scan iterator would
//! write to the socket while holding the store's shared read lock, letting
//! one slow or stalled client block every writer for the duration of its
//! scan. Materializing bounds lock hold time by scan cost instead of
//! client speed, at the price of O(result) server memory per in-flight
//! scan. Flow-controlled streaming that decouples the lock from the
//! socket (bounded re-read chunking) is a ROADMAP item.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use decibel_common::error::{DbError, Result};
use decibel_common::record::Record;
use decibel_common::schema::Schema;
use decibel_core::{Database, Session};
use decibel_wire::frame::{read_frame, write_frame};
use decibel_wire::proto::{self, Hello, Reply, Request, Response};

/// Shared server state: the shutdown flag plus the sockets to unblock.
struct ServerState {
    shutdown: AtomicBool,
    /// Connection id allocator (keys of `conns`).
    next_conn: AtomicU64,
    /// One clone per **live** connection, so shutdown can `Shutdown::Both`
    /// them and unblock readers parked in `read_frame`. A connection's
    /// worker removes its own entry on the way out, so churn does not
    /// accumulate duplicated descriptors.
    conns: Mutex<HashMap<u64, TcpStream>>,
}

/// A bound, not-yet-serving listener. [`Server::spawn`] starts the accept
/// loop and returns the [`ServerHandle`] used to stop it.
pub struct Server {
    listener: TcpListener,
    db: Arc<Database>,
    addr: SocketAddr,
    read_timeout: Option<Duration>,
}

impl Server {
    /// Binds a listener for `db` on `addr` (use port 0 for an ephemeral
    /// port; [`Server::local_addr`] reports what was picked).
    pub fn bind(db: Arc<Database>, addr: impl ToSocketAddrs) -> Result<Server> {
        let listener =
            TcpListener::bind(addr).map_err(|e| DbError::io("binding server listener", e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| DbError::io("reading listener address", e))?;
        Ok(Server {
            listener,
            db,
            addr,
            read_timeout: None,
        })
    }

    /// Sets a per-connection read timeout: a client idle between requests
    /// for longer than `timeout` has its open transaction rolled back
    /// (releasing its branch locks) and is sent a typed
    /// [`DbError::Timeout`] error frame before the connection closes — so
    /// a stalled or vanished client cannot pin locks forever. `None`
    /// (the default) waits indefinitely.
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts the accept loop on a background thread: thread-per-client,
    /// one session each. Returns the handle that stops it.
    pub fn spawn(self) -> ServerHandle {
        let state = Arc::new(ServerState {
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
        });
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let db = Arc::clone(&self.db);
            let state = Arc::clone(&state);
            let workers = Arc::clone(&workers);
            let listener = self.listener;
            let read_timeout = self.read_timeout;
            std::thread::Builder::new()
                .name("decibel-accept".into())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if state.shutdown.load(Ordering::SeqCst) {
                                // The wakeup connection (or a client racing
                                // the shutdown): refuse and stop accepting.
                                return;
                            }
                            // A worker is only spawned with its socket
                            // registered: shutdown must be able to unblock
                            // every reader it is going to join. If the
                            // clone fails (fd pressure), refuse the
                            // connection instead of serving it unjoinably.
                            let Ok(clone) = stream.try_clone() else {
                                continue;
                            };
                            let id = state.next_conn.fetch_add(1, Ordering::Relaxed);
                            state.conns.lock().unwrap().insert(id, clone);
                            let db = Arc::clone(&db);
                            let state = Arc::clone(&state);
                            let handle = std::thread::Builder::new()
                                .name("decibel-conn".into())
                                .spawn(move || {
                                    // Connection-level failures (peer reset,
                                    // torn frame) end this client only; the
                                    // session drop below rolls its
                                    // transaction back either way.
                                    let _ = serve_connection(db, stream, &state, read_timeout);
                                    // Deregister on the way out so churn
                                    // does not leak descriptors.
                                    state.conns.lock().unwrap().remove(&id);
                                })
                                .expect("spawning connection thread");
                            // Reap handles of finished workers (they are
                            // done; dropping a finished handle just frees
                            // it) so the vector tracks live connections,
                            // not lifetime connection count.
                            let mut workers = workers.lock().unwrap();
                            workers.retain(|h| !h.is_finished());
                            workers.push(handle);
                        }
                        Err(_) => {
                            if state.shutdown.load(Ordering::SeqCst) {
                                return;
                            }
                            // Persistent accept errors (EMFILE/ENFILE)
                            // would otherwise busy-spin this thread; back
                            // off and keep serving the clients we have.
                            std::thread::sleep(Duration::from_millis(50));
                        }
                    }
                })
                .expect("spawning accept thread")
        };
        ServerHandle {
            db: self.db,
            addr: self.addr,
            state,
            accept,
            workers,
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] for the graceful flag → wakeup → join →
/// checkpoint sequence.
pub struct ServerHandle {
    db: Arc<Database>,
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: JoinHandle<()>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The serving address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served database (shared; in-process callers may open their own
    /// sessions beside the network's).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Gracefully stops the server: no new connections, every live client
    /// socket is shut down (their sessions drop, rolling back open
    /// transactions and releasing branch locks), all threads are joined,
    /// and the database is checkpointed via [`Database::flush`] so the
    /// next [`Database::open`] replays an empty journal suffix.
    pub fn shutdown(self) -> Result<()> {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop: it is parked in `accept()`, so hand it the
        // connection it is waiting for.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        for (_, conn) in self.state.conns.lock().unwrap().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for handle in workers {
            let _ = handle.join();
        }
        // Every session is gone; checkpoint so the shutdown is durable and
        // cheap to reopen.
        self.db.flush()
    }
}

/// What one request produced: a single reply or a streamed scan.
enum Outcome {
    Reply(Reply),
    Records(Vec<Record>),
    Annotated(Vec<(Record, Vec<decibel_common::ids::BranchId>)>),
}

/// Serves one client: hello, then a request/response loop until the peer
/// hangs up or shutdown closes the socket. The session — and with it any
/// open transaction and its branch locks — lives exactly as long as this
/// function.
fn serve_connection(
    db: Arc<Database>,
    stream: TcpStream,
    state: &ServerState,
    read_timeout: Option<Duration>,
) -> Result<()> {
    stream
        .set_nodelay(true)
        .map_err(|e| DbError::io("setting TCP_NODELAY", e))?;
    stream
        .set_read_timeout(read_timeout)
        .map_err(|e| DbError::io("setting connection read timeout", e))?;
    let write_half = stream
        .try_clone()
        .map_err(|e| DbError::io("cloning connection socket", e))?;
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let schema = db.schema();
    let hello = Hello {
        protocol: proto::PROTOCOL_VERSION,
        schema: schema.clone(),
        engine: db.engine_kind().name().to_string(),
    };
    write_frame(&mut writer, &hello.encode())?;
    writer
        .flush()
        .map_err(|e| DbError::io("flushing hello", e))?;

    let mut session = db.session();
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()), // clean disconnect
            // An idle socket trips the read timeout (surfaced as
            // WouldBlock or TimedOut depending on the platform): roll the
            // session's open transaction back so its branch locks free,
            // tell the client why in a typed error frame (best effort —
            // the peer may already be gone), and close.
            Err(DbError::Io { source, .. })
                if matches!(
                    source.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                session.rollback();
                let err = DbError::timeout(
                    "connection idle past the server read timeout; transaction rolled back",
                );
                let _ = send(&mut writer, &schema, &Response::Err(err));
                return Err(DbError::timeout("connection read timeout"));
            }
            Err(e) => return Err(e),
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        // A malformed body is the client's bug, not a broken stream: the
        // framing layer already consumed the whole frame, so report the
        // decode error and keep serving.
        let outcome = Request::decode(&frame, &schema).and_then(|req| execute(&mut session, req));
        match outcome {
            Ok(Outcome::Reply(reply)) => {
                send(&mut writer, &schema, &Response::Ok(reply))?;
            }
            Ok(Outcome::Records(rows)) => {
                let total = rows.len() as u64;
                for chunk in rows.chunks(proto::batch_rows(schema.record_size())) {
                    send_unflushed(&mut writer, &schema, &Response::Batch(chunk.to_vec()))?;
                }
                send(&mut writer, &schema, &Response::Ok(Reply::Rows(total)))?;
            }
            Ok(Outcome::Annotated(rows)) => {
                let total = rows.len() as u64;
                for chunk in rows.chunks(proto::batch_rows(schema.record_size())) {
                    send_unflushed(
                        &mut writer,
                        &schema,
                        &Response::AnnotatedBatch(chunk.to_vec()),
                    )?;
                }
                send(&mut writer, &schema, &Response::Ok(Reply::Rows(total)))?;
            }
            Err(err) => {
                send(&mut writer, &schema, &Response::Err(err))?;
            }
        }
    }
}

fn send_unflushed(w: &mut impl Write, schema: &Schema, resp: &Response) -> Result<()> {
    write_frame(w, &resp.encode(schema)?)
}

fn send(w: &mut impl Write, schema: &Schema, resp: &Response) -> Result<()> {
    send_unflushed(w, schema, resp)?;
    w.flush().map_err(|e| DbError::io("flushing response", e))
}

/// Maps one request onto the session / database surface. Errors returned
/// here are *application* errors, shipped to the client as typed error
/// frames; the connection stays up.
fn execute(session: &mut Session, req: Request) -> Result<Outcome> {
    let db = Arc::clone(session.database());
    Ok(match req {
        Request::CheckoutBranch { name } => {
            Outcome::Reply(Reply::Branch(session.checkout_branch(&name)?))
        }
        Request::CheckoutCommit { commit } => {
            session.checkout_commit(commit)?;
            Outcome::Reply(Reply::Unit)
        }
        Request::Branch { name } => Outcome::Reply(Reply::Branch(session.branch(&name)?)),
        Request::LookupBranch { name } => Outcome::Reply(Reply::Branch(db.branch_id(&name)?)),
        Request::Begin => {
            session.begin()?;
            Outcome::Reply(Reply::Unit)
        }
        Request::Insert { record } => {
            session.insert(record)?;
            Outcome::Reply(Reply::Unit)
        }
        Request::Update { record } => {
            session.update(record)?;
            Outcome::Reply(Reply::Unit)
        }
        Request::Delete { key } => Outcome::Reply(Reply::Bool(session.delete(key)?)),
        Request::Get { key } => Outcome::Reply(Reply::MaybeRecord(session.get(key)?)),
        Request::Commit => Outcome::Reply(Reply::Commit(session.commit()?)),
        Request::Rollback => {
            session.rollback();
            Outcome::Reply(Reply::Unit)
        }
        Request::ScanSession => Outcome::Records(session.scan_collect()?),
        Request::Collect { version, predicate } => {
            Outcome::Records(db.read(version).filter(predicate).collect()?)
        }
        Request::Count { version, predicate } => Outcome::Reply(Reply::Scalar(
            db.read(version).filter(predicate).count()? as f64,
        )),
        Request::Aggregate {
            version,
            column,
            agg,
            predicate,
        } => Outcome::Reply(Reply::Scalar(
            db.read(version).filter(predicate).aggregate(column, agg)?,
        )),
        Request::MultiScan {
            branches,
            predicate,
            parallel,
        } => Outcome::Annotated(
            db.read_branches(&branches)
                .filter(predicate)
                .parallel(parallel)
                .annotated()?,
        ),
        Request::Merge { into, from, policy } => {
            Outcome::Reply(Reply::Merge(db.merge(into, from, policy)?))
        }
        Request::Flush => {
            db.flush()?;
            Outcome::Reply(Reply::Unit)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use decibel_common::ids::BranchId;
    use decibel_common::schema::ColumnType;
    use decibel_core::EngineKind;
    use decibel_pagestore::StoreConfig;
    use decibel_wire::Client;

    fn serve() -> (tempfile::TempDir, ServerHandle) {
        let dir = tempfile::tempdir().unwrap();
        let db = Database::create(
            dir.path().join("db"),
            EngineKind::Hybrid,
            Schema::new(2, ColumnType::U32),
            &StoreConfig::test_default(),
        )
        .unwrap();
        let handle = Server::bind(db, "127.0.0.1:0").unwrap().spawn();
        (dir, handle)
    }

    #[test]
    fn hello_then_basic_write_read() {
        let (_d, handle) = serve();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        assert_eq!(client.engine(), "hybrid");
        assert_eq!(client.schema().num_columns(), 2);
        client.insert(Record::new(1, vec![10, 20])).unwrap();
        client.commit().unwrap();
        assert_eq!(client.get(1).unwrap().unwrap().field(1), 20);
        assert_eq!(client.scan_collect().unwrap().len(), 1);
        handle.shutdown().unwrap();
    }

    #[test]
    fn disconnect_rolls_back_and_releases_locks() {
        let (_d, handle) = serve();
        {
            let mut a = Client::connect(handle.local_addr()).unwrap();
            a.insert(Record::new(1, vec![1, 1])).unwrap();
            // dropped without commit: the server-side session rolls back
        }
        let mut b = Client::connect(handle.local_addr()).unwrap();
        // The key never existed and the branch lock is free — but the
        // server processes the disconnect asynchronously, so retry briefly.
        let mut ok = false;
        for _ in 0..100 {
            match b.insert(Record::new(1, vec![2, 2])) {
                Ok(()) => {
                    ok = true;
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        assert!(ok, "lock never released after disconnect");
        b.commit().unwrap();
        assert_eq!(b.get(1).unwrap().unwrap().field(0), 2);
        handle.shutdown().unwrap();
    }

    #[test]
    fn connection_churn_releases_registrations() {
        // Regression: the conns registry must track *live* connections,
        // not lifetime connection count — otherwise every past client
        // leaks a duplicated descriptor until the process hits EMFILE.
        let (_d, handle) = serve();
        for k in 0..20u64 {
            let mut c = Client::connect(handle.local_addr()).unwrap();
            c.insert(Record::new(1000 + k, vec![k, k])).unwrap();
            c.commit().unwrap();
        }
        // Disconnects are processed asynchronously; wait for the workers
        // to deregister themselves.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let live = handle.state.conns.lock().unwrap().len();
            if live == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{live} connection registrations never released"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        handle.shutdown().unwrap();
    }

    #[test]
    fn shutdown_checkpoints_and_unblocks_clients() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db");
        let config = StoreConfig::test_default();
        let db = Database::create(
            &path,
            EngineKind::Hybrid,
            Schema::new(2, ColumnType::U32),
            &config,
        )
        .unwrap();
        let handle = Server::bind(db, "127.0.0.1:0").unwrap().spawn();
        let addr = handle.local_addr();
        let mut client = Client::connect(addr).unwrap();
        client.insert(Record::new(5, vec![50, 55])).unwrap();
        client.commit().unwrap();
        // A second client sits idle in a blocking read; shutdown must not
        // hang on it.
        let idle = Client::connect(addr).unwrap();
        handle.shutdown().unwrap();
        drop(idle);
        assert!(path.join("CHECKPOINT").exists(), "shutdown checkpoints");
        // Clean restart: the checkpoint covers everything.
        let db = Database::open(&path, &config).unwrap();
        assert_eq!(db.replayed_on_open(), 0);
        assert_eq!(
            db.read(BranchId::MASTER).count().unwrap(),
            1,
            "committed row survives the restart"
        );
    }

    #[test]
    fn typed_errors_cross_the_wire() {
        let (_d, handle) = serve();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        client.insert(Record::new(1, vec![1, 1])).unwrap();
        client.commit().unwrap();
        let err = client.insert(Record::new(1, vec![2, 2])).unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey { key: 1 }), "{err}");
        let err = client.checkout_branch("nope").unwrap_err();
        assert!(matches!(err, DbError::UnknownBranch(_)), "{err}");
        handle.shutdown().unwrap();
    }
}
