//! The `decibel-server` binary.
//!
//! ```text
//! decibel-server --dir PATH [--listen ADDR] [--create ENGINE COLS u32|u64]
//!                [--fsync] [--auth-token TOKEN] [--stats-interval SECS]
//! ```
//!
//! Opens (or, with `--create`, initializes) a database directory and
//! serves it over TCP on one event-loop thread, until SIGTERM/SIGINT. The
//! signal handler only stores an atomic flag — safe in signal context —
//! and the main thread runs the graceful shutdown: stop accepting, close
//! client sockets (their sessions roll back), join every thread, and
//! checkpoint via `Database::flush` so the next open replays nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use decibel_common::schema::{ColumnType, Schema};
use decibel_core::{Database, EngineKind};
use decibel_pagestore::StoreConfig;
use decibel_server::Server;

/// Default listen address when `--listen` is absent.
const DEFAULT_LISTEN: &str = "127.0.0.1:7430";

/// Set from the signal handler, polled by the main thread.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that only flip [`SHUTDOWN`]. Declared
/// against libc's `signal` directly — the workspace has no libc crate, but
/// every Unix target links libc anyway.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage() -> ! {
    eprintln!(
        "usage: decibel-server --dir PATH [--listen ADDR] \
         [--create ENGINE COLS u32|u64] [--fsync] [--auth-token TOKEN] \
         [--stats-interval SECS]\n\
         engines: tuple_first_branch tuple_first_tuple version_first hybrid\n\
         default listen address: {DEFAULT_LISTEN}\n\
         --stats-interval N logs a JSON metrics delta to stderr every N seconds"
    );
    std::process::exit(2);
}

struct Args {
    dir: std::path::PathBuf,
    listen: String,
    create: Option<(EngineKind, Schema)>,
    fsync: bool,
    auth_token: Option<String>,
    stats_interval: Option<Duration>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = None;
    let mut listen = DEFAULT_LISTEN.to_string();
    let mut create = None;
    let mut fsync = false;
    let mut auth_token = None;
    let mut stats_interval = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--dir" => {
                i += 1;
                dir = argv.get(i).map(Into::into);
            }
            "--listen" => {
                i += 1;
                listen = argv.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--create" => {
                let kind = argv
                    .get(i + 1)
                    .and_then(|s| EngineKind::from_name(s))
                    .unwrap_or_else(|| usage());
                let cols: usize = argv
                    .get(i + 2)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                let ctype = match argv.get(i + 3).map(String::as_str) {
                    Some("u32") => ColumnType::U32,
                    Some("u64") => ColumnType::U64,
                    _ => usage(),
                };
                create = Some((kind, Schema::new(cols, ctype)));
                i += 3;
            }
            "--fsync" => fsync = true,
            "--auth-token" => {
                i += 1;
                auth_token = Some(argv.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--stats-interval" => {
                i += 1;
                let secs: u64 = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&s| s > 0)
                    .unwrap_or_else(|| usage());
                stats_interval = Some(Duration::from_secs(secs));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    let Some(dir) = dir else { usage() };
    Args {
        dir,
        listen,
        create,
        fsync,
        auth_token,
        stats_interval,
    }
}

fn main() {
    let args = parse_args();
    let mut config = StoreConfig::bench_default();
    config.cold_scans = false;
    config.fsync = args.fsync;
    let db = match args.create {
        Some((kind, schema)) => Database::create(&args.dir, kind, schema, &config),
        None => Database::open(&args.dir, &config),
    }
    .unwrap_or_else(|e| {
        eprintln!("decibel-server: opening {}: {e}", args.dir.display());
        std::process::exit(1);
    });
    if db.replayed_on_open() > 0 {
        eprintln!(
            "decibel-server: recovered {} journaled transaction(s)",
            db.replayed_on_open()
        );
    }
    install_signal_handlers();
    let handle = Server::bind(db, args.listen.as_str())
        .map(|s| s.with_auth_token(args.auth_token.clone()).spawn())
        .unwrap_or_else(|e| {
            eprintln!("decibel-server: listening on {}: {e}", args.listen);
            std::process::exit(1);
        });
    eprintln!(
        "decibel-server: serving {} on {} (SIGTERM for graceful shutdown)",
        args.dir.display(),
        handle.local_addr()
    );
    // Periodic stats: log the JSON *delta* since the previous report, so
    // each line reads as "what happened in the last interval" rather than
    // ever-growing lifetime totals.
    let mut baseline = args.stats_interval.map(|_| handle.metrics());
    let mut next_report = args.stats_interval.map(|ivl| Instant::now() + ivl);
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::park_timeout(Duration::from_millis(50));
        if let (Some(ivl), Some(due)) = (args.stats_interval, next_report) {
            if Instant::now() >= due {
                let now = handle.metrics();
                let delta = now.diff(baseline.as_ref().unwrap());
                eprintln!("decibel-server: stats {}", delta.to_json());
                baseline = Some(now);
                next_report = Some(due + ivl);
            }
        }
    }
    eprintln!("decibel-server: shutting down (checkpointing)");
    if let Err(e) = handle.shutdown() {
        eprintln!("decibel-server: shutdown checkpoint failed: {e}");
        std::process::exit(1);
    }
}
