//! Length-prefixed framing over any byte stream.
//!
//! Every protocol message travels as one *frame*: a LEB128 varint length
//! (the same [`decibel_common::varint`] codec the commit stores and the
//! journal use) followed by exactly that many payload bytes. Varint
//! framing keeps the common case — a one-opcode request, a one-byte OK
//! response — at two bytes of overhead while still admitting multi-
//! megabyte scan batches.
//!
//! The reader enforces [`MAX_FRAME`] before allocating, so a corrupt or
//! hostile peer cannot make the receiver reserve unbounded memory off a
//! single length prefix.

use std::io::{self, Read, Write};

use decibel_common::error::{DbError, Result};
use decibel_common::varint;

/// Upper bound on a single frame's payload (64 MiB). Scan responses are
/// batched well below this (see [`crate::proto::SCAN_BATCH_BYTES`]); a
/// length prefix past it is treated as protocol corruption.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one frame: varint length then payload. The caller flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    let mut prefix = Vec::with_capacity(varint::encoded_len(payload.len() as u64));
    varint::write_u64(&mut prefix, payload.len() as u64);
    w.write_all(&prefix)
        .and_then(|_| w.write_all(payload))
        .map_err(|e| DbError::io("writing wire frame", e))
}

/// Reads one frame's payload.
///
/// Returns `Ok(None)` on a clean end of stream (EOF before the first
/// length byte) — how a client hang-up looks to the server. EOF *inside*
/// a frame is an error: the peer died mid-message.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if shift == 0 {
                    return Ok(None); // clean disconnect between frames
                }
                return Err(DbError::protocol("EOF inside a frame length"));
            }
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(DbError::io("reading wire frame length", e)),
        }
        len |= ((byte[0] & 0x7f) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 28 {
            // 2^28 > MAX_FRAME already; longer prefixes are garbage.
            return Err(DbError::protocol("frame length varint too long"));
        }
    }
    if len as usize > MAX_FRAME {
        return Err(DbError::protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| DbError::io("reading wire frame payload", e))?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(payload: &[u8]) {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
        assert!(cursor.is_empty());
    }

    #[test]
    fn frames_round_trip() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(&[7u8; 200]); // two-byte length prefix
        roundtrip(&vec![9u8; 70_000]); // three-byte length prefix (heap: too big for the stack)
    }

    #[test]
    fn sequential_frames_keep_boundaries() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"third").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"third");
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn clean_eof_is_none_torn_frame_is_error() {
        let mut empty: &[u8] = &[];
        assert_eq!(read_frame(&mut empty).unwrap(), None);

        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        buf.pop(); // tear the payload
        let mut cursor = &buf[..];
        assert!(read_frame(&mut cursor).is_err());

        // EOF inside the length varint itself.
        let mut torn_len: &[u8] = &[0x80];
        assert!(read_frame(&mut torn_len).is_err());
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, (MAX_FRAME as u64) + 1);
        let mut cursor = &buf[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(matches!(err, DbError::Protocol { .. }));

        // An absurd length must fail on the prefix, not try to allocate.
        let mut huge = Vec::new();
        varint::write_u64(&mut huge, u64::MAX);
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err());
    }
}
