//! Length-prefixed framing over any byte stream.
//!
//! Every protocol message travels as one *frame*: a LEB128 varint length
//! (the same [`decibel_common::varint`] codec the commit stores and the
//! journal use) followed by exactly that many payload bytes. Varint
//! framing keeps the common case — a one-opcode request, a one-byte OK
//! response — at two bytes of overhead while still admitting multi-
//! megabyte scan batches.
//!
//! The reader enforces [`MAX_FRAME`] before allocating, so a corrupt or
//! hostile peer cannot make the receiver reserve unbounded memory off a
//! single length prefix.

use std::io::{self, Read, Write};

use decibel_common::error::{DbError, Result};
use decibel_common::varint;

/// Upper bound on a single frame's payload (64 MiB). Scan responses are
/// batched well below this (see [`crate::proto::SCAN_BATCH_BYTES`]); a
/// length prefix past it is treated as protocol corruption.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one frame: varint length then payload. The caller flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    let mut prefix = Vec::with_capacity(varint::encoded_len(payload.len() as u64));
    varint::write_u64(&mut prefix, payload.len() as u64);
    w.write_all(&prefix)
        .and_then(|_| w.write_all(payload))
        .map_err(|e| DbError::io("writing wire frame", e))
}

/// Reads one frame's payload.
///
/// Returns `Ok(None)` on a clean end of stream (EOF before the first
/// length byte) — how a client hang-up looks to the server. EOF *inside*
/// a frame is an error: the peer died mid-message.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if shift == 0 {
                    return Ok(None); // clean disconnect between frames
                }
                return Err(DbError::protocol("EOF inside a frame length"));
            }
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(DbError::io("reading wire frame length", e)),
        }
        len |= ((byte[0] & 0x7f) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 28 {
            // 2^28 > MAX_FRAME already; longer prefixes are garbage.
            return Err(DbError::protocol("frame length varint too long"));
        }
    }
    if len as usize > MAX_FRAME {
        return Err(DbError::protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| DbError::io("reading wire frame payload", e))?;
    Ok(Some(payload))
}

/// Incremental frame decoder for nonblocking sockets.
///
/// The blocking [`read_frame`] pulls bytes on demand; a readiness-driven
/// server instead gets bytes whenever the socket happens to deliver them
/// and must resume mid-frame. `FrameDecoder` accepts arbitrary byte
/// slices via [`FrameDecoder::feed`] and yields complete frames via
/// [`FrameDecoder::next_frame`] — a partial length prefix or a partial
/// payload simply waits for the next `feed`. Limits match the blocking
/// reader exactly: varint prefixes past 28 bits of shift and payloads
/// past [`MAX_FRAME`] are protocol errors.
///
/// Pipelining falls out for free: if a client sends several requests
/// back-to-back, one `feed` of the socket's bytes yields them all through
/// repeated `next_frame` calls.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames; compacted
    /// opportunistically so slow trickles don't grow the buffer forever.
    consumed: usize,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends bytes received from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `consumed` is dead.
        if self.consumed > 0 && (self.consumed >= 4096 || self.consumed == self.buf.len()) {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet yielded as a frame — nonzero after EOF
    /// means the peer died mid-message.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Yields the next complete frame's payload, or `Ok(None)` if more
    /// bytes are needed. Errors are terminal for the stream: the buffer
    /// contents are garbage once the framing is broken.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        let avail = &self.buf[self.consumed..];
        let mut len: u64 = 0;
        let mut shift = 0u32;
        let mut idx = 0usize;
        loop {
            let Some(&byte) = avail.get(idx) else {
                return Ok(None); // partial length prefix: wait for more
            };
            idx += 1;
            len |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift > 28 {
                return Err(DbError::protocol("frame length varint too long"));
            }
        }
        let len = len as usize;
        if len > MAX_FRAME {
            return Err(DbError::protocol(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
            )));
        }
        if avail.len() - idx < len {
            return Ok(None); // partial payload: wait for more
        }
        let payload = avail[idx..idx + len].to_vec();
        self.consumed += idx + len;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(payload: &[u8]) {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
        assert!(cursor.is_empty());
    }

    #[test]
    fn frames_round_trip() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(&[7u8; 200]); // two-byte length prefix
        roundtrip(&vec![9u8; 70_000]); // three-byte length prefix (heap: too big for the stack)
    }

    #[test]
    fn sequential_frames_keep_boundaries() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"third").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"third");
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn clean_eof_is_none_torn_frame_is_error() {
        let mut empty: &[u8] = &[];
        assert_eq!(read_frame(&mut empty).unwrap(), None);

        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        buf.pop(); // tear the payload
        let mut cursor = &buf[..];
        assert!(read_frame(&mut cursor).is_err());

        // EOF inside the length varint itself.
        let mut torn_len: &[u8] = &[0x80];
        assert!(read_frame(&mut torn_len).is_err());
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, (MAX_FRAME as u64) + 1);
        let mut cursor = &buf[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(matches!(err, DbError::Protocol { .. }));

        // An absurd length must fail on the prefix, not try to allocate.
        let mut huge = Vec::new();
        varint::write_u64(&mut huge, u64::MAX);
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn incremental_decoder_resumes_across_arbitrary_splits() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"first").unwrap();
        write_frame(&mut stream, &[7u8; 300]).unwrap(); // two-byte prefix
        write_frame(&mut stream, b"").unwrap();

        // Every possible split point of the byte stream must decode the
        // same three frames — partial prefixes and partial payloads alike.
        for split in 0..=stream.len() {
            let mut dec = FrameDecoder::new();
            dec.feed(&stream[..split]);
            let mut frames = Vec::new();
            while let Some(f) = dec.next_frame().unwrap() {
                frames.push(f);
            }
            dec.feed(&stream[split..]);
            while let Some(f) = dec.next_frame().unwrap() {
                frames.push(f);
            }
            assert_eq!(frames.len(), 3, "split at {split}");
            assert_eq!(frames[0], b"first");
            assert_eq!(frames[1], vec![7u8; 300]);
            assert_eq!(frames[2], b"");
            assert_eq!(dec.pending(), 0);
        }
    }

    #[test]
    fn incremental_decoder_yields_pipelined_frames_from_one_feed() {
        let mut stream = Vec::new();
        for i in 0..5u8 {
            write_frame(&mut stream, &[i]).unwrap();
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        for i in 0..5u8 {
            assert_eq!(dec.next_frame().unwrap().unwrap(), vec![i]);
        }
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn incremental_decoder_enforces_limits() {
        let mut dec = FrameDecoder::new();
        let mut prefix = Vec::new();
        varint::write_u64(&mut prefix, (MAX_FRAME as u64) + 1);
        dec.feed(&prefix);
        assert!(dec.next_frame().is_err());

        let mut dec = FrameDecoder::new();
        dec.feed(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80]); // runaway varint
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn incremental_decoder_tracks_pending_bytes() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"payload").unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&stream[..3]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending(), 3); // torn mid-frame: bytes left behind
        dec.feed(&stream[3..]);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"payload");
        assert_eq!(dec.pending(), 0); // clean boundary
    }
}
