//! The Decibel wire protocol: length-prefixed binary frames serving
//! sessions over TCP, plus the blocking client.
//!
//! The paper describes Decibel as a server: "Users interact with Decibel
//! by opening a connection to the Decibel server, which creates a session"
//! (§2.2.3). This crate is the network half of that sentence — everything
//! needed to speak to a `decibel-server` (the `decibel_server` crate) from
//! another process:
//!
//! * [`frame`] — varint length-prefixed framing with a hard size cap;
//! * [`proto`] — opcodes and codecs for every session and query
//!   operation (checkout, branch, transactional writes, commit/rollback,
//!   point lookups, filtered scans, aggregates, multi-branch annotated
//!   scans, merge, flush), typed error frames carrying
//!   [`ErrorCode`](decibel_common::ErrorCode) discriminants, and
//!   record-batched scan streaming;
//! * [`client`] — the blocking [`Client`], a remote
//!   [`Session`](decibel_core::Session) with the same fluent read builders
//!   as the in-process [`Database`](decibel_core::Database).
//!
//! Everything is built on `std::net` — no external dependencies.

pub mod client;
pub mod frame;
pub mod proto;

pub use client::{Client, RemoteMultiReadBuilder, RemoteReadBuilder};
pub use proto::{Hello, Reply, Request, Response, PROTOCOL_VERSION};
