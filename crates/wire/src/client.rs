//! The blocking client: a remote [`Session`](decibel_core::Session) plus
//! the fluent read surface, over one TCP connection.
//!
//! A [`Client`] owns one connection and therefore one server-side session:
//! its checkout position, transaction state, and branch locks live on the
//! server and follow the session's rules (dropping the client — or losing
//! the connection — rolls back and releases locks, exactly like dropping a
//! local `Session`). Methods mirror the in-process API one-for-one:
//!
//! ```text
//! local                                   remote
//! db.session().insert(rec)                client.insert(rec)
//! session.commit()                        client.commit()
//! db.read(v).filter(p).collect()          client.read(v).filter(p).collect()
//! db.read_branches(&ids).annotated()      client.read_branches(&ids).annotated()
//! db.merge(into, from, policy)            client.merge(into, from, policy)
//! ```
//!
//! Scan terminals stream [`STATUS_BATCH`](crate::proto::STATUS_BATCH)
//! frames (many rows per frame) and verify the server's terminal row count
//! against what was received, so a truncated stream cannot silently pass
//! for a short table.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use decibel_common::error::{DbError, Result};
use decibel_common::ids::{BranchId, CommitId};
use decibel_common::record::Record;
use decibel_common::schema::Schema;
use decibel_common::Projection;
use decibel_core::query::{AggKind, Predicate};
use decibel_core::types::{MergePolicy, MergeResult, VersionRef};

use crate::frame::{read_frame, write_frame};
use crate::proto::{Hello, Reply, Request, Response};

/// A blocking connection to a `decibel-server`, holding one remote session.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    hello: Hello,
}

impl Client {
    /// Connects and performs the hello handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream =
            TcpStream::connect(addr).map_err(|e| DbError::io("connecting to decibel-server", e))?;
        // Request/response round-trips are latency-bound; never Nagle them.
        stream
            .set_nodelay(true)
            .map_err(|e| DbError::io("setting TCP_NODELAY", e))?;
        let write_half = stream
            .try_clone()
            .map_err(|e| DbError::io("cloning client socket", e))?;
        let mut reader = BufReader::new(stream);
        let hello_frame = read_frame(&mut reader)?
            .ok_or_else(|| DbError::protocol("server closed the connection before hello"))?;
        let hello = Hello::decode(&hello_frame)?;
        Ok(Client {
            reader,
            writer: BufWriter::new(write_half),
            hello,
        })
    }

    /// Connects, performs the hello handshake, and presents a shared-secret
    /// token as the first request. Works against any server: a
    /// token-protected server demands exactly this before serving anything
    /// (rejecting with [`DbError::AuthFailed`] on mismatch), and a server
    /// without a token accepts the frame and ignores the secret.
    pub fn connect_with_token(addr: impl ToSocketAddrs, token: &str) -> Result<Client> {
        let mut client = Client::connect(addr)?;
        client.expect_unit(&Request::Auth {
            token: token.into(),
        })?;
        Ok(client)
    }

    /// The relation's schema, as announced by the server.
    pub fn schema(&self) -> &Schema {
        &self.hello.schema
    }

    /// The serving engine's stable name, as announced by the server.
    pub fn engine(&self) -> &str {
        &self.hello.engine
    }

    fn send(&mut self, req: &Request) -> Result<()> {
        let payload = req.encode(&self.hello.schema)?;
        write_frame(&mut self.writer, &payload)?;
        self.writer
            .flush()
            .map_err(|e| DbError::io("flushing request", e))
    }

    fn next_response(&mut self) -> Result<Response> {
        let frame = read_frame(&mut self.reader)?
            .ok_or_else(|| DbError::protocol("server closed the connection mid-request"))?;
        Response::decode(&frame, &self.hello.schema)
    }

    /// One request → one terminal reply (no batch frames expected).
    fn call(&mut self, req: &Request) -> Result<Reply> {
        self.send(req)?;
        match self.next_response()? {
            Response::Ok(reply) => Ok(reply),
            Response::Err(err) => Err(err),
            Response::Batch(..) | Response::AnnotatedBatch(..) => Err(DbError::protocol(
                "unexpected batch frame for a non-scan request",
            )),
        }
    }

    /// One request → streamed record batches → terminal row count.
    fn call_scan(&mut self, req: &Request) -> Result<Vec<Record>> {
        self.send(req)?;
        let mut rows = Vec::new();
        loop {
            match self.next_response()? {
                Response::Batch(_, mut batch) => rows.append(&mut batch),
                Response::Ok(Reply::Rows(total)) => {
                    if total != rows.len() as u64 {
                        return Err(DbError::protocol(format!(
                            "scan terminal claims {total} rows, received {}",
                            rows.len()
                        )));
                    }
                    return Ok(rows);
                }
                Response::Ok(other) => {
                    return Err(DbError::protocol(format!(
                        "unexpected scan terminal {other:?}"
                    )))
                }
                Response::Err(err) => return Err(err),
                Response::AnnotatedBatch(..) => {
                    return Err(DbError::protocol("annotated batch in a record scan"))
                }
            }
        }
    }

    /// One request → streamed annotated batches → terminal row count.
    fn call_annotated(&mut self, req: &Request) -> Result<Vec<(Record, Vec<BranchId>)>> {
        self.send(req)?;
        let mut rows = Vec::new();
        loop {
            match self.next_response()? {
                Response::AnnotatedBatch(_, mut batch) => rows.append(&mut batch),
                Response::Ok(Reply::Rows(total)) => {
                    if total != rows.len() as u64 {
                        return Err(DbError::protocol(format!(
                            "scan terminal claims {total} rows, received {}",
                            rows.len()
                        )));
                    }
                    return Ok(rows);
                }
                Response::Ok(other) => {
                    return Err(DbError::protocol(format!(
                        "unexpected scan terminal {other:?}"
                    )))
                }
                Response::Err(err) => return Err(err),
                Response::Batch(..) => {
                    return Err(DbError::protocol("record batch in an annotated scan"))
                }
            }
        }
    }

    fn expect_unit(&mut self, req: &Request) -> Result<()> {
        match self.call(req)? {
            Reply::Unit => Ok(()),
            other => Err(DbError::protocol(format!("expected unit, got {other:?}"))),
        }
    }

    fn expect_branch(&mut self, req: &Request) -> Result<BranchId> {
        match self.call(req)? {
            Reply::Branch(b) => Ok(b),
            other => Err(DbError::protocol(format!(
                "expected a branch id, got {other:?}"
            ))),
        }
    }

    // ----------------------------------------------------------------
    // Session surface
    // ----------------------------------------------------------------

    /// Checks out a branch by name, returning its id.
    pub fn checkout_branch(&mut self, name: &str) -> Result<BranchId> {
        self.expect_branch(&Request::CheckoutBranch { name: name.into() })
    }

    /// Checks out a historical commit (read-only position).
    pub fn checkout_commit(&mut self, commit: CommitId) -> Result<()> {
        self.expect_unit(&Request::CheckoutCommit { commit })
    }

    /// Creates a branch at the session's position and checks it out.
    pub fn branch(&mut self, name: &str) -> Result<BranchId> {
        self.expect_branch(&Request::Branch { name: name.into() })
    }

    /// Resolves a branch name to its id without moving the session.
    pub fn branch_id(&mut self, name: &str) -> Result<BranchId> {
        self.expect_branch(&Request::LookupBranch { name: name.into() })
    }

    /// Opens a transaction explicitly (writes auto-begin one).
    pub fn begin(&mut self) -> Result<()> {
        self.expect_unit(&Request::Begin)
    }

    /// Buffers an insert in the remote session's transaction.
    pub fn insert(&mut self, record: Record) -> Result<()> {
        self.expect_unit(&Request::Insert { record })
    }

    /// Buffers an update.
    pub fn update(&mut self, record: Record) -> Result<()> {
        self.expect_unit(&Request::Update { record })
    }

    /// Buffers a delete; returns whether the key was visible.
    pub fn delete(&mut self, key: u64) -> Result<bool> {
        match self.call(&Request::Delete { key })? {
            Reply::Bool(b) => Ok(b),
            other => Err(DbError::protocol(format!("expected a bool, got {other:?}"))),
        }
    }

    /// Point lookup as the remote session sees it (overlay first).
    pub fn get(&mut self, key: u64) -> Result<Option<Record>> {
        match self.call(&Request::Get { key })? {
            Reply::MaybeRecord(r) => Ok(r),
            other => Err(DbError::protocol(format!(
                "expected an optional record, got {other:?}"
            ))),
        }
    }

    /// Commits the remote transaction, returning the new commit id.
    pub fn commit(&mut self) -> Result<CommitId> {
        match self.call(&Request::Commit)? {
            Reply::Commit(c) => Ok(c),
            other => Err(DbError::protocol(format!(
                "expected a commit id, got {other:?}"
            ))),
        }
    }

    /// Discards the remote transaction.
    pub fn rollback(&mut self) -> Result<()> {
        self.expect_unit(&Request::Rollback)
    }

    /// Materializes the remote session's view (base version merged with
    /// the transaction overlay), streamed in record batches.
    pub fn scan_collect(&mut self) -> Result<Vec<Record>> {
        self.call_scan(&Request::ScanSession)
    }

    /// Merges branch `from` into branch `into` under `policy`.
    pub fn merge(
        &mut self,
        into: BranchId,
        from: BranchId,
        policy: MergePolicy,
    ) -> Result<MergeResult> {
        match self.call(&Request::Merge { into, from, policy })? {
            Reply::Merge(m) => Ok(m),
            other => Err(DbError::protocol(format!(
                "expected a merge result, got {other:?}"
            ))),
        }
    }

    /// Checkpoints the remote database ([`Database::flush`](decibel_core::Database::flush)).
    pub fn flush(&mut self) -> Result<()> {
        self.expect_unit(&Request::Flush)
    }

    /// Fetches a point-in-time metrics snapshot: the remote database's
    /// registry (`pool`, `wal`, `commit`, `scan`, `checkpoint` families)
    /// merged with the server's own event-loop instruments (`server`).
    /// Take two snapshots and [`Snapshot::diff`](decibel_obs::Snapshot::diff)
    /// them to measure an interval. A pre-stats server answers the unknown
    /// opcode with a typed protocol error and keeps the connection usable.
    pub fn stats(&mut self) -> Result<decibel_obs::Snapshot> {
        match self.call(&Request::Stats)? {
            Reply::Stats(snap) => Ok(snap),
            other => Err(DbError::protocol(format!(
                "expected a stats snapshot, got {other:?}"
            ))),
        }
    }

    // ----------------------------------------------------------------
    // Fluent read surface
    // ----------------------------------------------------------------

    /// Starts a fluent single-version read, mirroring
    /// [`Database::read`](decibel_core::Database::read):
    /// `client.read(v).filter(p).collect()`.
    pub fn read(&mut self, version: impl Into<VersionRef>) -> RemoteReadBuilder<'_> {
        RemoteReadBuilder {
            client: self,
            version: version.into(),
            predicate: Predicate::True,
            projection: Projection::All,
        }
    }

    /// Starts a fluent multi-branch annotated read, mirroring
    /// [`Database::read_branches`](decibel_core::Database::read_branches).
    pub fn read_branches(&mut self, branches: &[BranchId]) -> RemoteMultiReadBuilder<'_> {
        RemoteMultiReadBuilder {
            client: self,
            branches: branches.to_vec(),
            predicate: Predicate::True,
            parallel: 1,
            projection: Projection::All,
        }
    }
}

/// Combines filters: chaining `.filter(a).filter(b)` means `a AND b`.
fn and(current: Predicate, next: Predicate) -> Predicate {
    if matches!(current, Predicate::True) {
        next
    } else {
        Predicate::And(Box::new(current), Box::new(next))
    }
}

/// Remote counterpart of [`ReadBuilder`](decibel_core::ReadBuilder).
#[must_use = "builders do nothing until a terminal method runs them"]
pub struct RemoteReadBuilder<'a> {
    client: &'a mut Client,
    version: VersionRef,
    predicate: Predicate,
    projection: Projection,
}

impl RemoteReadBuilder<'_> {
    /// Adds a row filter (chained filters are ANDed).
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = and(self.predicate, predicate);
        self
    }

    /// Ships only these data columns across the wire (non-selected fields
    /// of the returned records read `0`); chained selects union. Filters
    /// still see every column — they run server-side, against page bytes.
    /// An out-of-range column fails the terminal with a typed
    /// [`DbError::Invalid`] from the server, before the scan starts.
    pub fn select(mut self, cols: &[usize]) -> Self {
        self.projection = self.projection.narrow(cols);
        self
    }

    /// Materializes the qualifying records.
    pub fn collect(self) -> Result<Vec<Record>> {
        self.client.call_scan(&Request::Collect {
            version: self.version,
            predicate: self.predicate,
            projection: self.projection,
        })
    }

    /// Counts the qualifying records server-side (no rows cross the wire).
    pub fn count(self) -> Result<u64> {
        match self.client.call(&Request::Count {
            version: self.version,
            predicate: self.predicate,
        })? {
            Reply::Scalar(x) => Ok(x as u64),
            other => Err(DbError::protocol(format!(
                "expected a scalar, got {other:?}"
            ))),
        }
    }

    /// Runs a single aggregate over data column `column`, server-side.
    pub fn aggregate(self, column: usize, agg: AggKind) -> Result<f64> {
        match self.client.call(&Request::Aggregate {
            version: self.version,
            column,
            agg,
            predicate: self.predicate,
        })? {
            Reply::Scalar(x) => Ok(x),
            other => Err(DbError::protocol(format!(
                "expected a scalar, got {other:?}"
            ))),
        }
    }
}

/// Remote counterpart of
/// [`MultiReadBuilder`](decibel_core::MultiReadBuilder).
#[must_use = "builders do nothing until a terminal method runs them"]
pub struct RemoteMultiReadBuilder<'a> {
    client: &'a mut Client,
    branches: Vec<BranchId>,
    predicate: Predicate,
    parallel: usize,
    projection: Projection,
}

impl RemoteMultiReadBuilder<'_> {
    /// Adds a row filter (chained filters are ANDed).
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = and(self.predicate, predicate);
        self
    }

    /// Requests server-side intra-query parallelism (≤ 1 = sequential).
    pub fn parallel(mut self, threads: usize) -> Self {
        self.parallel = threads;
        self
    }

    /// Ships only these data columns across the wire (chained selects
    /// union); branch annotations are computed before projection, so the
    /// liveness sets are unaffected.
    pub fn select(mut self, cols: &[usize]) -> Self {
        self.projection = self.projection.narrow(cols);
        self
    }

    /// Materializes the annotated multi-branch scan, streamed in batches.
    pub fn annotated(self) -> Result<Vec<(Record, Vec<BranchId>)>> {
        self.client.call_annotated(&Request::MultiScan {
            branches: self.branches,
            predicate: self.predicate,
            parallel: self.parallel,
            projection: self.projection,
        })
    }
}
