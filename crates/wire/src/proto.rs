//! The Decibel wire protocol: opcodes, request/response bodies, and their
//! binary codecs.
//!
//! Every message rides in one [`crate::frame`] frame. The first payload
//! byte is an opcode (requests) or a status tag (responses); the rest is
//! the body, encoded with the workspace's varint codec plus the schema's
//! fixed-width record images — the same serialization the heap files and
//! the journal use, so a scan batch is byte-compatible with the storage
//! layer's own record layout and costs no per-row re-encoding beyond a
//! memcpy out of the page.
//!
//! # Conversation shape
//!
//! On connect the server sends one [`Hello`] frame (magic, protocol
//! version, relation schema, engine name); the client answers nothing —
//! unless the server was started with a shared-secret token, in which
//! case the client's *first* request frame must be [`Request::Auth`]
//! carrying the token (any other first frame, or a wrong token, earns a
//! typed [`ErrorCode::AuthFailed`] error frame and a close). A server
//! without a token answers a stray `Auth` with OK, so clients may always
//! send one. Thereafter the client sends request frames (it may pipeline
//! several without waiting) and reads frames until a terminal status per
//! request:
//!
//! * [`STATUS_OK`] — the request succeeded; the body is the typed
//!   [`Reply`] for that opcode;
//! * [`STATUS_ERR`] — the request failed; the body is an encoded
//!   [`DbError`] carrying its stable [`ErrorCode`] discriminant, so
//!   clients match on error *kind*, never on message text;
//! * [`STATUS_BATCH`] / [`STATUS_ABATCH`] — a non-terminal chunk of scan
//!   output (plain records / branch-annotated records). Scans stream any
//!   number of batch frames — each holding up to [`SCAN_BATCH_BYTES`] of
//!   record images, never one row per frame — followed by an OK frame
//!   with the total row count. Batch boundaries are *flow-controlled*,
//!   not result-sized: the server produces the next chunk only after the
//!   previous one drains into the socket, so a slow reader pins O(chunk)
//!   server memory, and chunk row counts are an implementation detail a
//!   client must not rely on (only the terminal total is contractual).
//!
//! # Projected batches
//!
//! Scan-shaped requests carry a [`Projection`]; batch frames are
//! self-describing — each leads with the projection its record images
//! were encoded under, so a 2-of-12-column `.select` ships 2 columns per
//! row ([`Record::write_projected_image`]), not 12, and the client
//! decodes without tracking per-request state. Non-projected fields of
//! the decoded records read `0`, exactly like a local projected scan.

use decibel_common::error::{DbError, ErrorCode, Result};
use decibel_common::ids::{BranchId, CommitId};
use decibel_common::record::Record;
use decibel_common::schema::{ColumnType, Schema};
use decibel_common::varint;
use decibel_common::Projection;
use decibel_core::query::{AggKind, Predicate};
use decibel_core::types::{Conflict, MergePolicy, MergeResult, VersionRef};
use decibel_obs::Snapshot;

/// Protocol magic: the first bytes of the server's hello frame.
pub const MAGIC: &[u8; 4] = b"DCBW";
/// Protocol version carried in the hello frame. Version 2 added column
/// projections: scan-shaped requests carry one and batch frames lead
/// with the projection their record images were encoded under.
pub const PROTOCOL_VERSION: u64 = 2;

/// Target payload size of one scan batch frame. Batching rows (instead of
/// a frame per row) is what lets the word-level scan pipeline's throughput
/// survive serialization: the per-frame cost (length prefix, status byte,
/// syscall amortization via the buffered writer) is paid once per ~256 KiB
/// of record images, not once per record.
pub const SCAN_BATCH_BYTES: usize = 256 << 10;

/// Rows per scan batch for a given record size (at least one).
pub fn batch_rows(record_size: usize) -> usize {
    (SCAN_BATCH_BYTES / record_size.max(1)).max(1)
}

// Request opcodes (first byte of a request frame).
const OP_CHECKOUT_BRANCH: u8 = 1;
const OP_CHECKOUT_COMMIT: u8 = 2;
const OP_BRANCH: u8 = 3;
const OP_LOOKUP_BRANCH: u8 = 4;
const OP_BEGIN: u8 = 5;
const OP_INSERT: u8 = 6;
const OP_UPDATE: u8 = 7;
const OP_DELETE: u8 = 8;
const OP_GET: u8 = 9;
const OP_COMMIT: u8 = 10;
const OP_ROLLBACK: u8 = 11;
const OP_SCAN_SESSION: u8 = 12;
const OP_COLLECT: u8 = 13;
const OP_COUNT: u8 = 14;
const OP_AGGREGATE: u8 = 15;
const OP_MULTI_SCAN: u8 = 16;
const OP_MERGE: u8 = 17;
const OP_FLUSH: u8 = 18;
const OP_AUTH: u8 = 19;
const OP_STATS: u8 = 20;

/// Response status tags (first byte of a response frame).
pub const STATUS_OK: u8 = 0;
/// Terminal error frame: `[status][varint code][varint p1][varint p2][detail]`.
pub const STATUS_ERR: u8 = 1;
/// Non-terminal record batch: `[status][varint n][n record images]`.
pub const STATUS_BATCH: u8 = 2;
/// Non-terminal annotated batch: `[status][varint n]` then per row
/// `[record image][varint k][k × varint branch]`.
pub const STATUS_ABATCH: u8 = 3;

/// The server's first frame on every connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Negotiated protocol version (the server's [`PROTOCOL_VERSION`]).
    pub protocol: u64,
    /// The relation's schema — the client needs it to encode and decode
    /// fixed-width record images.
    pub schema: Schema,
    /// The serving engine's stable name (informational).
    pub engine: String,
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// [`Session::checkout_branch`](decibel_core::Session::checkout_branch).
    CheckoutBranch {
        /// Branch name to check out.
        name: String,
    },
    /// [`Session::checkout_commit`](decibel_core::Session::checkout_commit).
    CheckoutCommit {
        /// Commit to check out (read-only position).
        commit: CommitId,
    },
    /// [`Session::branch`](decibel_core::Session::branch): create a branch
    /// at the session's position and check it out.
    Branch {
        /// Name of the branch to create.
        name: String,
    },
    /// Resolve a branch name to its id without moving the session.
    LookupBranch {
        /// Branch name to resolve.
        name: String,
    },
    /// [`Session::begin`](decibel_core::Session::begin).
    Begin,
    /// [`Session::insert`](decibel_core::Session::insert).
    Insert {
        /// Record to insert.
        record: Record,
    },
    /// [`Session::update`](decibel_core::Session::update).
    Update {
        /// Replacement record.
        record: Record,
    },
    /// [`Session::delete`](decibel_core::Session::delete).
    Delete {
        /// Primary key to delete.
        key: u64,
    },
    /// [`Session::get`](decibel_core::Session::get).
    Get {
        /// Primary key to look up.
        key: u64,
    },
    /// [`Session::commit`](decibel_core::Session::commit).
    Commit,
    /// [`Session::rollback`](decibel_core::Session::rollback).
    Rollback,
    /// [`Session::scan_with`](decibel_core::Session::scan_with): the
    /// session's view (base version + transaction overlay), streamed in
    /// batches.
    ScanSession,
    /// `db.read(version).select(&cols).filter(predicate).collect()`,
    /// streamed in batches of projected record images.
    Collect {
        /// Version to scan.
        version: VersionRef,
        /// Row filter.
        predicate: Predicate,
        /// Columns to ship (validated server-side; unknown columns earn
        /// a typed [`DbError::Invalid`] before the scan starts).
        projection: Projection,
    },
    /// `db.read(version).filter(predicate).count()`.
    Count {
        /// Version to scan.
        version: VersionRef,
        /// Row filter.
        predicate: Predicate,
    },
    /// `db.read(version).filter(predicate).aggregate(column, agg)`.
    Aggregate {
        /// Version to scan.
        version: VersionRef,
        /// Data column to aggregate.
        column: usize,
        /// Aggregate function.
        agg: AggKind,
        /// Row filter.
        predicate: Predicate,
    },
    /// `db.read_branches(&branches).parallel(n).filter(p).annotated()`,
    /// streamed in annotated batches.
    MultiScan {
        /// Branches to scan.
        branches: Vec<BranchId>,
        /// Row filter.
        predicate: Predicate,
        /// Intra-query parallelism hint (≤ 1 = sequential).
        parallel: usize,
        /// Columns to ship (validated server-side).
        projection: Projection,
    },
    /// [`Database::merge`](decibel_core::Database::merge).
    Merge {
        /// Destination branch.
        into: BranchId,
        /// Source branch.
        from: BranchId,
        /// Conflict-resolution policy.
        policy: MergePolicy,
    },
    /// [`Database::flush`](decibel_core::Database::flush): checkpoint.
    Flush,
    /// Present the shared-secret token. Must be the first request on a
    /// connection to a token-protected server; a no-auth server answers
    /// OK and ignores the token.
    Auth {
        /// The shared secret, compared in constant time server-side.
        token: String,
    },
    /// Fetch a point-in-time metrics snapshot covering every family the
    /// server tracks: the database's registry (pool, WAL, commit, scan,
    /// checkpoint) merged with the event loop's own (server). Added after
    /// protocol version 2 shipped; an older server answers the unknown
    /// opcode with a typed [`ErrorCode::Protocol`] error frame and keeps
    /// the connection alive, so probing is safe.
    Stats,
}

/// The typed body of a [`STATUS_OK`] frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// No payload.
    Unit,
    /// A branch id (checkout/branch/lookup).
    Branch(BranchId),
    /// A commit id (commit).
    Commit(CommitId),
    /// A boolean (delete).
    Bool(bool),
    /// An optional record (get).
    MaybeRecord(Option<Record>),
    /// Scan terminal: total rows streamed in the preceding batches.
    Rows(u64),
    /// An aggregate / count scalar.
    Scalar(f64),
    /// A merge outcome.
    Merge(MergeResult),
    /// A metrics snapshot (stats).
    Stats(Snapshot),
}

/// One server→client frame.
#[derive(Debug)]
pub enum Response {
    /// Terminal success.
    Ok(Reply),
    /// Terminal failure (decoded back into a typed [`DbError`]).
    Err(DbError),
    /// Non-terminal record batch: the projection its images were encoded
    /// under, plus the rows (non-projected fields decode as `0`).
    Batch(Projection, Vec<Record>),
    /// Non-terminal annotated batch, projected the same way.
    AnnotatedBatch(Projection, Vec<(Record, Vec<BranchId>)>),
}

fn bad(what: impl Into<String>) -> DbError {
    DbError::protocol(what)
}

fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    varint::read_u64(buf, pos)
}

fn read_u8(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| bad("truncated message: expected a byte"))?;
    *pos += 1;
    Ok(b)
}

fn read_rest_utf8(buf: &[u8], pos: usize) -> Result<String> {
    std::str::from_utf8(&buf[pos..])
        .map(str::to_owned)
        .map_err(|_| bad("string field is not UTF-8"))
}

fn write_record(out: &mut Vec<u8>, record: &Record, schema: &Schema) -> Result<()> {
    out.extend_from_slice(&record.to_bytes(schema)?);
    Ok(())
}

fn read_record(buf: &[u8], pos: &mut usize, schema: &Schema) -> Result<Record> {
    let size = schema.record_size();
    let end = pos
        .checked_add(size)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| bad("truncated record image"))?;
    let rec = Record::read_from(schema, &buf[*pos..end])?;
    *pos = end;
    Ok(rec)
}

fn read_projected_record(
    buf: &[u8],
    pos: &mut usize,
    schema: &Schema,
    projection: &Projection,
) -> Result<Record> {
    let size = projection.image_size(schema);
    let end = pos
        .checked_add(size)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| bad("truncated projected record image"))?;
    let rec = Record::read_projected_image(schema, &buf[*pos..end], projection)?;
    *pos = end;
    Ok(rec)
}

/// `[tag]` — 0 is [`Projection::All`]; 1 is followed by
/// `[varint n][n × varint column]`.
fn write_projection(out: &mut Vec<u8>, p: &Projection) {
    match p {
        Projection::All => out.push(0),
        Projection::Columns(cols) => {
            out.push(1);
            varint::write_u64(out, cols.len() as u64);
            for &c in cols {
                varint::write_u64(out, c as u64);
            }
        }
    }
}

fn read_projection(buf: &[u8], pos: &mut usize) -> Result<Projection> {
    match read_u8(buf, pos)? {
        0 => Ok(Projection::All),
        1 => {
            let n = read_u64(buf, pos)? as usize;
            if n > buf.len() {
                // Each column costs ≥ 1 encoded byte; a count beyond the
                // payload length is corruption, not a wide projection.
                return Err(bad("projection column count exceeds payload"));
            }
            let mut cols = Vec::with_capacity(n);
            for _ in 0..n {
                cols.push(read_u64(buf, pos)? as usize);
            }
            // Re-normalize: the wire is untrusted, and every consumer
            // relies on the sorted/deduplicated invariant.
            Ok(Projection::of(&cols))
        }
        _ => Err(bad("unknown projection tag")),
    }
}

/// `[tag][varint id]` — tag 0 names a branch head, 1 a commit.
fn write_version(out: &mut Vec<u8>, v: VersionRef) {
    match v {
        VersionRef::Branch(b) => {
            out.push(0);
            varint::write_u64(out, b.raw() as u64);
        }
        VersionRef::Commit(c) => {
            out.push(1);
            varint::write_u64(out, c.raw());
        }
    }
}

fn read_version(buf: &[u8], pos: &mut usize) -> Result<VersionRef> {
    let tag = read_u8(buf, pos)?;
    let id = read_u64(buf, pos)?;
    match tag {
        0 => Ok(VersionRef::Branch(BranchId(id as u32))),
        1 => Ok(VersionRef::Commit(CommitId(id))),
        _ => Err(bad("unknown version tag")),
    }
}

// Predicate node tags.
const P_TRUE: u8 = 0;
const P_KEY_EQ: u8 = 1;
const P_KEY_RANGE: u8 = 2;
const P_COL_EQ: u8 = 3;
const P_COL_NE: u8 = 4;
const P_COL_LT: u8 = 5;
const P_COL_GE: u8 = 6;
const P_COL_MOD: u8 = 7;
const P_AND: u8 = 8;
const P_OR: u8 = 9;
const P_NOT: u8 = 10;

/// Decode recursion limit for predicate trees: combinator nesting this
/// deep is never produced by the builders, so a deeper tree on the wire is
/// an attack or corruption, not a query.
const MAX_PREDICATE_DEPTH: u32 = 64;

fn write_predicate(out: &mut Vec<u8>, p: &Predicate) {
    match p {
        Predicate::True => out.push(P_TRUE),
        Predicate::KeyEq(k) => {
            out.push(P_KEY_EQ);
            varint::write_u64(out, *k);
        }
        Predicate::KeyRange(lo, hi) => {
            out.push(P_KEY_RANGE);
            varint::write_u64(out, *lo);
            varint::write_u64(out, *hi);
        }
        Predicate::ColEq(c, v) => {
            out.push(P_COL_EQ);
            varint::write_u64(out, *c as u64);
            varint::write_u64(out, *v);
        }
        Predicate::ColNe(c, v) => {
            out.push(P_COL_NE);
            varint::write_u64(out, *c as u64);
            varint::write_u64(out, *v);
        }
        Predicate::ColLt(c, v) => {
            out.push(P_COL_LT);
            varint::write_u64(out, *c as u64);
            varint::write_u64(out, *v);
        }
        Predicate::ColGe(c, v) => {
            out.push(P_COL_GE);
            varint::write_u64(out, *c as u64);
            varint::write_u64(out, *v);
        }
        Predicate::ColMod(c, m, r) => {
            out.push(P_COL_MOD);
            varint::write_u64(out, *c as u64);
            varint::write_u64(out, *m);
            varint::write_u64(out, *r);
        }
        Predicate::And(a, b) => {
            out.push(P_AND);
            write_predicate(out, a);
            write_predicate(out, b);
        }
        Predicate::Or(a, b) => {
            out.push(P_OR);
            write_predicate(out, a);
            write_predicate(out, b);
        }
        Predicate::Not(a) => {
            out.push(P_NOT);
            write_predicate(out, a);
        }
    }
}

fn read_predicate(buf: &[u8], pos: &mut usize, depth: u32) -> Result<Predicate> {
    if depth > MAX_PREDICATE_DEPTH {
        return Err(bad("predicate tree too deep"));
    }
    let tag = read_u8(buf, pos)?;
    Ok(match tag {
        P_TRUE => Predicate::True,
        P_KEY_EQ => Predicate::KeyEq(read_u64(buf, pos)?),
        P_KEY_RANGE => Predicate::KeyRange(read_u64(buf, pos)?, read_u64(buf, pos)?),
        P_COL_EQ => Predicate::ColEq(read_u64(buf, pos)? as usize, read_u64(buf, pos)?),
        P_COL_NE => Predicate::ColNe(read_u64(buf, pos)? as usize, read_u64(buf, pos)?),
        P_COL_LT => Predicate::ColLt(read_u64(buf, pos)? as usize, read_u64(buf, pos)?),
        P_COL_GE => Predicate::ColGe(read_u64(buf, pos)? as usize, read_u64(buf, pos)?),
        P_COL_MOD => Predicate::ColMod(
            read_u64(buf, pos)? as usize,
            read_u64(buf, pos)?,
            read_u64(buf, pos)?,
        ),
        P_AND => Predicate::And(
            Box::new(read_predicate(buf, pos, depth + 1)?),
            Box::new(read_predicate(buf, pos, depth + 1)?),
        ),
        P_OR => Predicate::Or(
            Box::new(read_predicate(buf, pos, depth + 1)?),
            Box::new(read_predicate(buf, pos, depth + 1)?),
        ),
        P_NOT => Predicate::Not(Box::new(read_predicate(buf, pos, depth + 1)?)),
        _ => return Err(bad("unknown predicate tag")),
    })
}

fn agg_tag(agg: AggKind) -> u8 {
    match agg {
        AggKind::Count => 0,
        AggKind::Sum => 1,
        AggKind::Min => 2,
        AggKind::Max => 3,
        AggKind::Avg => 4,
    }
}

fn read_agg(buf: &[u8], pos: &mut usize) -> Result<AggKind> {
    Ok(match read_u8(buf, pos)? {
        0 => AggKind::Count,
        1 => AggKind::Sum,
        2 => AggKind::Min,
        3 => AggKind::Max,
        4 => AggKind::Avg,
        _ => return Err(bad("unknown aggregate tag")),
    })
}

fn write_policy(out: &mut Vec<u8>, policy: MergePolicy) {
    match policy {
        MergePolicy::TwoWay { prefer_left } => {
            out.push(0);
            out.push(prefer_left as u8);
        }
        MergePolicy::ThreeWay { prefer_left } => {
            out.push(1);
            out.push(prefer_left as u8);
        }
    }
}

fn read_policy(buf: &[u8], pos: &mut usize) -> Result<MergePolicy> {
    let tag = read_u8(buf, pos)?;
    let prefer_left = read_u8(buf, pos)? != 0;
    match tag {
        0 => Ok(MergePolicy::TwoWay { prefer_left }),
        1 => Ok(MergePolicy::ThreeWay { prefer_left }),
        _ => Err(bad("unknown merge-policy tag")),
    }
}

impl Hello {
    /// Encodes the hello frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.engine.len());
        out.extend_from_slice(MAGIC);
        varint::write_u64(&mut out, self.protocol);
        varint::write_u64(&mut out, self.schema.num_columns() as u64);
        out.push(match self.schema.column_type() {
            ColumnType::U32 => 0,
            ColumnType::U64 => 1,
        });
        out.extend_from_slice(self.engine.as_bytes());
        out
    }

    /// Decodes a hello frame payload, verifying magic and version.
    pub fn decode(buf: &[u8]) -> Result<Hello> {
        if buf.len() < 4 || &buf[..4] != MAGIC {
            return Err(bad("not a Decibel server (bad magic)"));
        }
        let mut pos = 4usize;
        let protocol = read_u64(buf, &mut pos)?;
        if protocol != PROTOCOL_VERSION {
            return Err(bad(format!(
                "protocol version {protocol} unsupported (want {PROTOCOL_VERSION})"
            )));
        }
        let columns = read_u64(buf, &mut pos)? as usize;
        let ctype = match read_u8(buf, &mut pos)? {
            0 => ColumnType::U32,
            1 => ColumnType::U64,
            _ => return Err(bad("unknown column type")),
        };
        let engine = read_rest_utf8(buf, pos)?;
        Ok(Hello {
            protocol,
            schema: Schema::new(columns, ctype),
            engine,
        })
    }
}

impl Request {
    /// Encodes this request into a frame payload.
    pub fn encode(&self, schema: &Schema) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(16);
        match self {
            Request::CheckoutBranch { name } => {
                out.push(OP_CHECKOUT_BRANCH);
                out.extend_from_slice(name.as_bytes());
            }
            Request::CheckoutCommit { commit } => {
                out.push(OP_CHECKOUT_COMMIT);
                varint::write_u64(&mut out, commit.raw());
            }
            Request::Branch { name } => {
                out.push(OP_BRANCH);
                out.extend_from_slice(name.as_bytes());
            }
            Request::LookupBranch { name } => {
                out.push(OP_LOOKUP_BRANCH);
                out.extend_from_slice(name.as_bytes());
            }
            Request::Begin => out.push(OP_BEGIN),
            Request::Insert { record } => {
                out.push(OP_INSERT);
                write_record(&mut out, record, schema)?;
            }
            Request::Update { record } => {
                out.push(OP_UPDATE);
                write_record(&mut out, record, schema)?;
            }
            Request::Delete { key } => {
                out.push(OP_DELETE);
                varint::write_u64(&mut out, *key);
            }
            Request::Get { key } => {
                out.push(OP_GET);
                varint::write_u64(&mut out, *key);
            }
            Request::Commit => out.push(OP_COMMIT),
            Request::Rollback => out.push(OP_ROLLBACK),
            Request::ScanSession => out.push(OP_SCAN_SESSION),
            Request::Collect {
                version,
                predicate,
                projection,
            } => {
                out.push(OP_COLLECT);
                write_version(&mut out, *version);
                write_predicate(&mut out, predicate);
                write_projection(&mut out, projection);
            }
            Request::Count { version, predicate } => {
                out.push(OP_COUNT);
                write_version(&mut out, *version);
                write_predicate(&mut out, predicate);
            }
            Request::Aggregate {
                version,
                column,
                agg,
                predicate,
            } => {
                out.push(OP_AGGREGATE);
                write_version(&mut out, *version);
                varint::write_u64(&mut out, *column as u64);
                out.push(agg_tag(*agg));
                write_predicate(&mut out, predicate);
            }
            Request::MultiScan {
                branches,
                predicate,
                parallel,
                projection,
            } => {
                out.push(OP_MULTI_SCAN);
                varint::write_u64(&mut out, branches.len() as u64);
                for b in branches {
                    varint::write_u64(&mut out, b.raw() as u64);
                }
                varint::write_u64(&mut out, *parallel as u64);
                write_predicate(&mut out, predicate);
                write_projection(&mut out, projection);
            }
            Request::Merge { into, from, policy } => {
                out.push(OP_MERGE);
                varint::write_u64(&mut out, into.raw() as u64);
                varint::write_u64(&mut out, from.raw() as u64);
                write_policy(&mut out, *policy);
            }
            Request::Flush => out.push(OP_FLUSH),
            Request::Auth { token } => {
                out.push(OP_AUTH);
                out.extend_from_slice(token.as_bytes());
            }
            Request::Stats => out.push(OP_STATS),
        }
        Ok(out)
    }

    /// Decodes a request frame payload.
    pub fn decode(buf: &[u8], schema: &Schema) -> Result<Request> {
        let mut pos = 0usize;
        let op = read_u8(buf, &mut pos)?;
        let req = match op {
            OP_CHECKOUT_BRANCH => Request::CheckoutBranch {
                name: read_rest_utf8(buf, pos)?,
            },
            OP_CHECKOUT_COMMIT => Request::CheckoutCommit {
                commit: CommitId(read_u64(buf, &mut pos)?),
            },
            OP_BRANCH => Request::Branch {
                name: read_rest_utf8(buf, pos)?,
            },
            OP_LOOKUP_BRANCH => Request::LookupBranch {
                name: read_rest_utf8(buf, pos)?,
            },
            OP_BEGIN => Request::Begin,
            OP_INSERT => Request::Insert {
                record: read_record(buf, &mut pos, schema)?,
            },
            OP_UPDATE => Request::Update {
                record: read_record(buf, &mut pos, schema)?,
            },
            OP_DELETE => Request::Delete {
                key: read_u64(buf, &mut pos)?,
            },
            OP_GET => Request::Get {
                key: read_u64(buf, &mut pos)?,
            },
            OP_COMMIT => Request::Commit,
            OP_ROLLBACK => Request::Rollback,
            OP_SCAN_SESSION => Request::ScanSession,
            OP_COLLECT => Request::Collect {
                version: read_version(buf, &mut pos)?,
                predicate: read_predicate(buf, &mut pos, 0)?,
                projection: read_projection(buf, &mut pos)?,
            },
            OP_COUNT => Request::Count {
                version: read_version(buf, &mut pos)?,
                predicate: read_predicate(buf, &mut pos, 0)?,
            },
            OP_AGGREGATE => Request::Aggregate {
                version: read_version(buf, &mut pos)?,
                column: read_u64(buf, &mut pos)? as usize,
                agg: read_agg(buf, &mut pos)?,
                predicate: read_predicate(buf, &mut pos, 0)?,
            },
            OP_MULTI_SCAN => {
                let n = read_u64(buf, &mut pos)? as usize;
                if n > buf.len() {
                    // Each id costs ≥ 1 encoded byte; a count beyond the
                    // payload length is corruption, not a huge scan.
                    return Err(bad("branch count exceeds payload"));
                }
                let mut branches = Vec::with_capacity(n);
                for _ in 0..n {
                    branches.push(BranchId(read_u64(buf, &mut pos)? as u32));
                }
                Request::MultiScan {
                    branches,
                    parallel: read_u64(buf, &mut pos)? as usize,
                    predicate: read_predicate(buf, &mut pos, 0)?,
                    projection: read_projection(buf, &mut pos)?,
                }
            }
            OP_MERGE => Request::Merge {
                into: BranchId(read_u64(buf, &mut pos)? as u32),
                from: BranchId(read_u64(buf, &mut pos)? as u32),
                policy: read_policy(buf, &mut pos)?,
            },
            OP_FLUSH => Request::Flush,
            OP_AUTH => Request::Auth {
                token: read_rest_utf8(buf, pos)?,
            },
            OP_STATS => Request::Stats,
            _ => return Err(bad(format!("unknown request opcode {op}"))),
        };
        Ok(req)
    }
}

/// Encodes a [`DbError`] for the wire: `[varint code][varint p1][varint p2]
/// [detail utf-8]`. The two numeric parameters carry the variant's
/// structured fields (key, commit id, expected/actual arity, ...) so
/// [`decode_error`] reconstructs the *same variant*, not a stringly
/// approximation.
pub fn encode_error(err: &DbError) -> Vec<u8> {
    let (p1, p2, detail): (u64, u64, String) = match err {
        DbError::Io { .. } => (0, 0, err.to_string()),
        DbError::UnknownBranch(name) => (0, 0, name.clone()),
        DbError::UnknownCommit(id) => (*id, 0, String::new()),
        DbError::NotBranchHead { branch } => (0, 0, branch.clone()),
        DbError::DuplicateKey { key } => (*key, 0, String::new()),
        DbError::KeyNotFound { key } => (*key, 0, String::new()),
        DbError::SchemaMismatch { expected, actual } => {
            (*expected as u64, *actual as u64, String::new())
        }
        DbError::MergeConflicts { count } => (*count as u64, 0, String::new()),
        DbError::Corrupt { detail } => (0, 0, detail.clone()),
        DbError::LockContention { what } => (0, 0, what.clone()),
        DbError::TxnOpen { what } => (0, 0, what.clone()),
        DbError::ReadOnlyCheckout { commit } => (*commit, 0, String::new()),
        DbError::JournalDiverged => (0, 0, String::new()),
        DbError::Protocol { detail } => (0, 0, detail.clone()),
        DbError::Invalid(msg) => (0, 0, msg.clone()),
        DbError::Timeout { what } => (0, 0, what.clone()),
        DbError::AuthFailed => (0, 0, String::new()),
    };
    let mut out = Vec::with_capacity(8 + detail.len());
    varint::write_u64(&mut out, err.code().as_u16() as u64);
    varint::write_u64(&mut out, p1);
    varint::write_u64(&mut out, p2);
    out.extend_from_slice(detail.as_bytes());
    out
}

/// Decodes an error body written by [`encode_error`] back into the typed
/// [`DbError`] variant its [`ErrorCode`] names. Unknown codes (a newer
/// server) decode as [`DbError::Protocol`] rather than failing the
/// connection.
pub fn decode_error(buf: &[u8]) -> Result<DbError> {
    let mut pos = 0usize;
    let raw = read_u64(buf, &mut pos)?;
    let p1 = read_u64(buf, &mut pos)?;
    let p2 = read_u64(buf, &mut pos)?;
    let detail = read_rest_utf8(buf, pos)?;
    let Some(code) = u16::try_from(raw).ok().and_then(ErrorCode::from_u16) else {
        return Ok(DbError::protocol(format!(
            "server sent unknown error code {raw}: {detail}"
        )));
    };
    Ok(match code {
        ErrorCode::Io => DbError::io(detail, std::io::Error::other("remote I/O error")),
        ErrorCode::UnknownBranch => DbError::UnknownBranch(detail),
        ErrorCode::UnknownCommit => DbError::UnknownCommit(p1),
        ErrorCode::NotBranchHead => DbError::NotBranchHead { branch: detail },
        ErrorCode::DuplicateKey => DbError::DuplicateKey { key: p1 },
        ErrorCode::KeyNotFound => DbError::KeyNotFound { key: p1 },
        ErrorCode::SchemaMismatch => DbError::SchemaMismatch {
            expected: p1 as usize,
            actual: p2 as usize,
        },
        ErrorCode::MergeConflicts => DbError::MergeConflicts { count: p1 as usize },
        ErrorCode::Corrupt => DbError::Corrupt { detail },
        ErrorCode::LockContention => DbError::LockContention { what: detail },
        ErrorCode::TxnOpen => DbError::TxnOpen { what: detail },
        ErrorCode::ReadOnlyCheckout => DbError::ReadOnlyCheckout { commit: p1 },
        ErrorCode::JournalDiverged => DbError::JournalDiverged,
        ErrorCode::Protocol => DbError::Protocol { detail },
        ErrorCode::Invalid => DbError::Invalid(detail),
        ErrorCode::Timeout => DbError::Timeout { what: detail },
        ErrorCode::AuthFailed => DbError::AuthFailed,
    })
}

fn write_merge_result(out: &mut Vec<u8>, m: &MergeResult) {
    varint::write_u64(out, m.commit.raw());
    varint::write_u64(out, m.records_changed);
    varint::write_u64(out, m.bytes_compared);
    varint::write_u64(out, m.conflicts.len() as u64);
    for c in &m.conflicts {
        varint::write_u64(out, c.key);
        out.push(c.resolved_left as u8);
        varint::write_u64(out, c.fields.len() as u64);
        for &f in &c.fields {
            varint::write_u64(out, f as u64);
        }
    }
}

fn read_merge_result(buf: &[u8], pos: &mut usize) -> Result<MergeResult> {
    let commit = CommitId(read_u64(buf, pos)?);
    let records_changed = read_u64(buf, pos)?;
    let bytes_compared = read_u64(buf, pos)?;
    let n = read_u64(buf, pos)? as usize;
    if n > buf.len() {
        return Err(bad("conflict count exceeds payload"));
    }
    let mut conflicts = Vec::with_capacity(n);
    for _ in 0..n {
        let key = read_u64(buf, pos)?;
        let resolved_left = read_u8(buf, pos)? != 0;
        let nf = read_u64(buf, pos)? as usize;
        if nf > buf.len() {
            return Err(bad("conflict field count exceeds payload"));
        }
        let mut fields = Vec::with_capacity(nf);
        for _ in 0..nf {
            fields.push(read_u64(buf, pos)? as usize);
        }
        conflicts.push(Conflict {
            key,
            fields,
            resolved_left,
        });
    }
    Ok(MergeResult {
        commit,
        conflicts,
        records_changed,
        bytes_compared,
    })
}

// Reply body tags (second byte of an OK frame).
const R_UNIT: u8 = 0;
const R_BRANCH: u8 = 1;
const R_COMMIT: u8 = 2;
const R_BOOL: u8 = 3;
const R_MAYBE_RECORD: u8 = 4;
const R_ROWS: u8 = 5;
const R_SCALAR: u8 = 6;
const R_MERGE: u8 = 7;
const R_STATS: u8 = 8;

impl Response {
    /// Encodes this response into a frame payload.
    pub fn encode(&self, schema: &Schema) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(16);
        match self {
            Response::Ok(reply) => {
                out.push(STATUS_OK);
                match reply {
                    Reply::Unit => out.push(R_UNIT),
                    Reply::Branch(b) => {
                        out.push(R_BRANCH);
                        varint::write_u64(&mut out, b.raw() as u64);
                    }
                    Reply::Commit(c) => {
                        out.push(R_COMMIT);
                        varint::write_u64(&mut out, c.raw());
                    }
                    Reply::Bool(v) => {
                        out.push(R_BOOL);
                        out.push(*v as u8);
                    }
                    Reply::MaybeRecord(rec) => {
                        out.push(R_MAYBE_RECORD);
                        match rec {
                            Some(r) => {
                                out.push(1);
                                write_record(&mut out, r, schema)?;
                            }
                            None => out.push(0),
                        }
                    }
                    Reply::Rows(n) => {
                        out.push(R_ROWS);
                        varint::write_u64(&mut out, *n);
                    }
                    Reply::Scalar(x) => {
                        out.push(R_SCALAR);
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                    Reply::Merge(m) => {
                        out.push(R_MERGE);
                        write_merge_result(&mut out, m);
                    }
                    Reply::Stats(snap) => {
                        out.push(R_STATS);
                        out.extend_from_slice(&snap.encode());
                    }
                }
            }
            Response::Err(err) => {
                out.push(STATUS_ERR);
                out.extend_from_slice(&encode_error(err));
            }
            Response::Batch(projection, records) => {
                out.reserve(records.len() * projection.image_size(schema));
                out.push(STATUS_BATCH);
                write_projection(&mut out, projection);
                varint::write_u64(&mut out, records.len() as u64);
                for r in records {
                    r.write_projected_image(schema, projection, &mut out)?;
                }
            }
            Response::AnnotatedBatch(projection, rows) => {
                out.reserve(rows.len() * (projection.image_size(schema) + 4));
                out.push(STATUS_ABATCH);
                write_projection(&mut out, projection);
                varint::write_u64(&mut out, rows.len() as u64);
                for (r, branches) in rows {
                    r.write_projected_image(schema, projection, &mut out)?;
                    varint::write_u64(&mut out, branches.len() as u64);
                    for b in branches {
                        varint::write_u64(&mut out, b.raw() as u64);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Decodes a response frame payload.
    pub fn decode(buf: &[u8], schema: &Schema) -> Result<Response> {
        let mut pos = 0usize;
        match read_u8(buf, &mut pos)? {
            STATUS_OK => {
                let reply = match read_u8(buf, &mut pos)? {
                    R_UNIT => Reply::Unit,
                    R_BRANCH => Reply::Branch(BranchId(read_u64(buf, &mut pos)? as u32)),
                    R_COMMIT => Reply::Commit(CommitId(read_u64(buf, &mut pos)?)),
                    R_BOOL => Reply::Bool(read_u8(buf, &mut pos)? != 0),
                    R_MAYBE_RECORD => match read_u8(buf, &mut pos)? {
                        0 => Reply::MaybeRecord(None),
                        1 => Reply::MaybeRecord(Some(read_record(buf, &mut pos, schema)?)),
                        _ => return Err(bad("bad option tag")),
                    },
                    R_ROWS => Reply::Rows(read_u64(buf, &mut pos)?),
                    R_SCALAR => {
                        let end = pos
                            .checked_add(8)
                            .filter(|&e| e <= buf.len())
                            .ok_or_else(|| bad("truncated scalar"))?;
                        Reply::Scalar(f64::from_le_bytes(buf[pos..end].try_into().unwrap()))
                    }
                    R_MERGE => Reply::Merge(read_merge_result(buf, &mut pos)?),
                    R_STATS => Reply::Stats(
                        Snapshot::decode(&buf[pos..])
                            .map_err(|e| bad(format!("bad stats snapshot: {e}")))?,
                    ),
                    other => return Err(bad(format!("unknown reply tag {other}"))),
                };
                Ok(Response::Ok(reply))
            }
            STATUS_ERR => Ok(Response::Err(decode_error(&buf[pos..])?)),
            STATUS_BATCH => {
                let projection = read_projection(buf, &mut pos)?;
                let n = read_u64(buf, &mut pos)? as usize;
                if n.saturating_mul(projection.image_size(schema)) > buf.len() {
                    return Err(bad("batch row count exceeds payload"));
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    records.push(read_projected_record(buf, &mut pos, schema, &projection)?);
                }
                Ok(Response::Batch(projection, records))
            }
            STATUS_ABATCH => {
                let projection = read_projection(buf, &mut pos)?;
                let n = read_u64(buf, &mut pos)? as usize;
                if n.saturating_mul(projection.image_size(schema)) > buf.len() {
                    return Err(bad("annotated row count exceeds payload"));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let rec = read_projected_record(buf, &mut pos, schema, &projection)?;
                    let k = read_u64(buf, &mut pos)? as usize;
                    if k > buf.len() {
                        return Err(bad("branch annotation count exceeds payload"));
                    }
                    let mut branches = Vec::with_capacity(k);
                    for _ in 0..k {
                        branches.push(BranchId(read_u64(buf, &mut pos)? as u32));
                    }
                    rows.push((rec, branches));
                }
                Ok(Response::AnnotatedBatch(projection, rows))
            }
            other => Err(bad(format!("unknown response status {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(3, ColumnType::U32)
    }

    fn rec(k: u64) -> Record {
        Record::new(k, vec![k, k + 1, k + 2])
    }

    #[test]
    fn hello_round_trips() {
        let h = Hello {
            protocol: PROTOCOL_VERSION,
            schema: Schema::new(12, ColumnType::U64),
            engine: "hybrid".into(),
        };
        assert_eq!(Hello::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn hello_rejects_bad_magic_and_version() {
        assert!(Hello::decode(b"nope").is_err());
        let mut h = Hello {
            protocol: PROTOCOL_VERSION + 1,
            schema: schema(),
            engine: String::new(),
        }
        .encode();
        assert!(Hello::decode(&h).is_err());
        h.clear();
        assert!(Hello::decode(&h).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let s = schema();
        let requests = vec![
            Request::CheckoutBranch { name: "dev".into() },
            Request::CheckoutCommit {
                commit: CommitId(u64::MAX),
            },
            Request::Branch { name: "β".into() },
            Request::LookupBranch { name: "".into() },
            Request::Begin,
            Request::Insert { record: rec(7) },
            Request::Update { record: rec(8) },
            Request::Delete { key: 9 },
            Request::Get { key: 0 },
            Request::Commit,
            Request::Rollback,
            Request::ScanSession,
            Request::Collect {
                version: VersionRef::Branch(BranchId(3)),
                predicate: Predicate::ColGe(1, 5).and(Predicate::KeyRange(2, 9).not()),
                projection: Projection::of(&[0, 2]),
            },
            Request::Count {
                version: VersionRef::Commit(CommitId(4)),
                predicate: Predicate::True,
            },
            Request::Aggregate {
                version: VersionRef::Branch(BranchId(0)),
                column: 2,
                agg: AggKind::Avg,
                predicate: Predicate::ColMod(0, 3, 1),
            },
            Request::MultiScan {
                branches: vec![BranchId(0), BranchId(5), BranchId(u32::MAX)],
                predicate: Predicate::ColEq(0, 1).or(Predicate::KeyEq(2)),
                parallel: 8,
                projection: Projection::all(),
            },
            Request::Merge {
                into: BranchId(1),
                from: BranchId(2),
                policy: MergePolicy::ThreeWay { prefer_left: true },
            },
            Request::Flush,
            Request::Auth {
                token: "s3cr3t-τ".into(),
            },
            Request::Stats,
        ];
        for req in requests {
            let bytes = req.encode(&s).unwrap();
            assert_eq!(Request::decode(&bytes, &s).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn replies_round_trip() {
        let s = schema();
        let replies = vec![
            Reply::Unit,
            Reply::Branch(BranchId(42)),
            Reply::Commit(CommitId(7)),
            Reply::Bool(true),
            Reply::Bool(false),
            Reply::MaybeRecord(None),
            Reply::MaybeRecord(Some(rec(11))),
            Reply::Rows(1 << 40),
            Reply::Scalar(-1.25e300),
            Reply::Merge(MergeResult {
                commit: CommitId(9),
                conflicts: vec![Conflict {
                    key: 5,
                    fields: vec![0, 2],
                    resolved_left: true,
                }],
                records_changed: 3,
                bytes_compared: 999,
            }),
            Reply::Stats({
                let reg = decibel_obs::Registry::new();
                reg.counter("wal", "flushes").add(7);
                reg.gauge("server", "conns_live").set(3);
                reg.histogram("commit", "commit_us").record(1800);
                reg.snapshot()
            }),
        ];
        for reply in replies {
            let bytes = Response::Ok(reply.clone()).encode(&s).unwrap();
            match Response::decode(&bytes, &s).unwrap() {
                Response::Ok(back) => assert_eq!(back, reply),
                other => panic!("expected Ok, got {other:?}"),
            }
        }
    }

    #[test]
    fn batches_round_trip() {
        let s = schema();
        let batch = Response::Batch(Projection::all(), (0..100).map(rec).collect());
        let bytes = batch.encode(&s).unwrap();
        match Response::decode(&bytes, &s).unwrap() {
            Response::Batch(p, rows) => {
                assert!(p.is_all());
                assert_eq!(rows, (0..100).map(rec).collect::<Vec<_>>());
            }
            other => panic!("expected Batch, got {other:?}"),
        }

        let rows = vec![
            (rec(1), vec![BranchId(0)]),
            (rec(2), vec![BranchId(0), BranchId(3)]),
            (rec(3), vec![]),
        ];
        let bytes = Response::AnnotatedBatch(Projection::all(), rows.clone())
            .encode(&s)
            .unwrap();
        match Response::decode(&bytes, &s).unwrap() {
            Response::AnnotatedBatch(_, back) => assert_eq!(back, rows),
            other => panic!("expected AnnotatedBatch, got {other:?}"),
        }
    }

    #[test]
    fn projected_batches_ship_only_selected_columns() {
        let s = schema();
        let p = Projection::of(&[1]);
        let rows: Vec<Record> = (0..50).map(rec).collect();
        let bytes = Response::Batch(p.clone(), rows.clone()).encode(&s).unwrap();
        let full = Response::Batch(Projection::all(), rows.clone())
            .encode(&s)
            .unwrap();
        // 1-of-3 columns: the projected frame drops two 4-byte fields per
        // row relative to the whole-record frame, and pays 2 extra bytes
        // once for its column list ([1][n=1][col=1] vs [0]).
        assert_eq!(full.len() - bytes.len(), 50 * 2 * 4 - 2);
        match Response::decode(&bytes, &s).unwrap() {
            Response::Batch(back_p, back) => {
                assert_eq!(back_p, p);
                let expect: Vec<Record> = rows
                    .iter()
                    .map(|r| {
                        let mut r = r.clone();
                        r.project(&p);
                        r
                    })
                    .collect();
                assert_eq!(back, expect, "non-projected fields decode as 0");
            }
            other => panic!("expected Batch, got {other:?}"),
        }
    }

    #[test]
    fn errors_round_trip_structurally() {
        let errors = vec![
            DbError::UnknownBranch("dev".into()),
            DbError::UnknownCommit(77),
            DbError::NotBranchHead { branch: "b".into() },
            DbError::DuplicateKey { key: u64::MAX },
            DbError::KeyNotFound { key: 0 },
            DbError::SchemaMismatch {
                expected: 3,
                actual: 5,
            },
            DbError::MergeConflicts { count: 12 },
            DbError::corrupt("torn page"),
            DbError::LockContention {
                what: "branch 3".into(),
            },
            DbError::TxnOpen {
                what: "checkout".into(),
            },
            DbError::ReadOnlyCheckout { commit: 4 },
            DbError::JournalDiverged,
            DbError::protocol("junk"),
            DbError::Invalid("other".into()),
            DbError::AuthFailed,
        ];
        for err in errors {
            let back = decode_error(&encode_error(&err)).unwrap();
            assert_eq!(back.code(), err.code());
            assert_eq!(back.to_string(), err.to_string());
        }
        // Io keeps its context and code, with a synthetic remote source.
        let io = DbError::io("writing page", std::io::Error::other("disk full"));
        let back = decode_error(&encode_error(&io)).unwrap();
        assert_eq!(back.code(), ErrorCode::Io);
        assert!(back.to_string().contains("writing page"));
        assert!(back.to_string().contains("disk full"));
    }

    #[test]
    fn unknown_error_code_degrades_to_protocol() {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 60_000);
        varint::write_u64(&mut buf, 0);
        varint::write_u64(&mut buf, 0);
        buf.extend_from_slice(b"future variant");
        let err = decode_error(&buf).unwrap();
        assert_eq!(err.code(), ErrorCode::Protocol);
        assert!(err.to_string().contains("future variant"));
    }

    #[test]
    fn hostile_counts_are_rejected() {
        let s = schema();
        // A batch claiming 2^40 rows in a tiny payload must fail fast.
        // (The leading 0 is the Projection::All tag.)
        let mut buf = vec![STATUS_BATCH, 0];
        varint::write_u64(&mut buf, 1 << 40);
        assert!(Response::decode(&buf, &s).is_err());

        let mut buf = vec![STATUS_ABATCH, 0];
        varint::write_u64(&mut buf, 1 << 40);
        assert!(Response::decode(&buf, &s).is_err());

        // A projection claiming 2^40 columns must fail the same way.
        let mut buf = vec![STATUS_BATCH, 1];
        varint::write_u64(&mut buf, 1 << 40);
        assert!(Response::decode(&buf, &s).is_err());
    }

    #[test]
    fn deep_predicates_are_rejected() {
        let mut p = Predicate::True;
        for _ in 0..(MAX_PREDICATE_DEPTH + 4) {
            p = p.not();
        }
        let req = Request::Count {
            version: VersionRef::Branch(BranchId(0)),
            predicate: p,
        };
        let bytes = req.encode(&schema()).unwrap();
        assert!(Request::decode(&bytes, &schema()).is_err());
    }

    #[test]
    fn batch_rows_is_positive_and_byte_bounded() {
        assert_eq!(batch_rows(0), SCAN_BATCH_BYTES);
        assert_eq!(batch_rows(SCAN_BATCH_BYTES * 2), 1);
        let s = Schema::paper_default();
        let rows = batch_rows(s.record_size());
        assert!(rows >= 1 && rows * s.record_size() <= SCAN_BATCH_BYTES);
    }
}
