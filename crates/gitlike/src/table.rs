//! Versioned tables over the git-like repository.
//!
//! The paper implements "the Decibel API using git as a storage manager
//! ... in two ways: git 1 file, which uses a single heap file for all
//! records versioned by git, and git file/tup, which creates a file for
//! each tuple in the database. ... We also implemented CSV-based and
//! binary-based storage formats" (§5.7). [`GitTable`] reproduces those
//! four layouts behind a Decibel-flavoured insert/update/delete/commit/
//! branch/checkout API, which the Table 6/7 benchmarks drive.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use decibel_common::error::{DbError, IoResultExt, Result};
use decibel_common::hash::FxHashSet;
use decibel_common::record::Record;
use decibel_common::schema::Schema;

use crate::repo::Repo;
use crate::sha1::Sha1;

/// How the table maps onto files in the repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableLayout {
    /// The whole relation in a single file ("git 1 file").
    OneFile,
    /// One file per tuple ("git file/tup").
    FilePerTuple,
}

/// How records serialize inside files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableEncoding {
    /// Comma-separated decimal text ("a larger raw size due to string
    /// encoding", §5.7).
    Csv,
    /// The fixed-width binary record format.
    Binary,
}

/// A versioned relation stored in a git-like repository.
///
/// Modifications buffer in memory (the paper's client holds the working
/// set too); `commit` writes the affected files, then runs add+commit —
/// whose cost includes hashing every file, which is exactly where git's
/// commit latency comes from.
pub struct GitTable {
    repo: Repo,
    layout: TableLayout,
    encoding: TableEncoding,
    schema: Schema,
    /// The working state of the current branch.
    rows: BTreeMap<u64, Record>,
    /// Keys touched since the last commit (drives file writes).
    dirty: FxHashSet<u64>,
    /// Whether any delete happened since the last commit.
    deleted: bool,
}

impl GitTable {
    /// Creates a table repository at `dir`.
    pub fn create(
        dir: impl AsRef<Path>,
        layout: TableLayout,
        encoding: TableEncoding,
        schema: Schema,
    ) -> Result<GitTable> {
        let repo = Repo::init(dir)?;
        Ok(GitTable {
            repo,
            layout,
            encoding,
            schema,
            rows: BTreeMap::new(),
            dirty: FxHashSet::default(),
            deleted: false,
        })
    }

    /// The underlying repository (size accounting, repack).
    pub fn repo(&self) -> &Repo {
        &self.repo
    }

    /// Mutable access to the repository (repack).
    pub fn repo_mut(&mut self) -> &mut Repo {
        &mut self.repo
    }

    /// Number of live records in the working state.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the working state is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a record into the working state.
    pub fn insert(&mut self, record: Record) -> Result<()> {
        self.schema.check_arity(record.fields().len())?;
        if self.rows.contains_key(&record.key()) {
            return Err(DbError::DuplicateKey { key: record.key() });
        }
        self.dirty.insert(record.key());
        self.rows.insert(record.key(), record);
        Ok(())
    }

    /// Updates an existing record.
    pub fn update(&mut self, record: Record) -> Result<()> {
        self.schema.check_arity(record.fields().len())?;
        if !self.rows.contains_key(&record.key()) {
            return Err(DbError::KeyNotFound { key: record.key() });
        }
        self.dirty.insert(record.key());
        self.rows.insert(record.key(), record);
        Ok(())
    }

    /// Deletes a key.
    pub fn delete(&mut self, key: u64) -> Result<bool> {
        let existed = self.rows.remove(&key).is_some();
        if existed {
            self.dirty.insert(key);
            self.deleted = true;
        }
        Ok(existed)
    }

    /// Point lookup in the working state.
    pub fn get(&self, key: u64) -> Option<&Record> {
        self.rows.get(&key)
    }

    /// All live records in key order.
    pub fn scan(&self) -> impl Iterator<Item = &Record> {
        self.rows.values()
    }

    fn encode_record(&self, r: &Record) -> Result<Vec<u8>> {
        match self.encoding {
            TableEncoding::Binary => r.to_bytes(&self.schema),
            TableEncoding::Csv => {
                let mut line = r.key().to_string();
                for f in r.fields() {
                    line.push(',');
                    line.push_str(&f.to_string());
                }
                line.push('\n');
                Ok(line.into_bytes())
            }
        }
    }

    fn decode_records(&self, bytes: &[u8]) -> Result<Vec<Record>> {
        match self.encoding {
            TableEncoding::Binary => {
                let rs = self.schema.record_size();
                if !bytes.len().is_multiple_of(rs) {
                    return Err(DbError::corrupt("binary table file torn"));
                }
                bytes
                    .chunks_exact(rs)
                    .map(|c| Record::read_from(&self.schema, c))
                    .collect()
            }
            TableEncoding::Csv => {
                let text = std::str::from_utf8(bytes)
                    .map_err(|_| DbError::corrupt("CSV table file not UTF-8"))?;
                let mut out = Vec::new();
                for line in text.lines() {
                    if line.is_empty() {
                        continue;
                    }
                    let mut parts = line.split(',');
                    let key: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| DbError::corrupt("CSV key"))?;
                    let fields: Vec<u64> = parts
                        .map(|s| s.parse().map_err(|_| DbError::corrupt("CSV field")))
                        .collect::<Result<_>>()?;
                    self.schema.check_arity(fields.len())?;
                    out.push(Record::new(key, fields));
                }
                Ok(out)
            }
        }
    }

    fn tuple_file_name(key: u64) -> String {
        format!("t{key:016x}")
    }

    /// Writes the working state into the repository's working directory.
    fn write_working_files(&mut self) -> Result<()> {
        match self.layout {
            TableLayout::OneFile => {
                // Any change rewrites the single file, like the paper's
                // one-heap-file layout.
                if self.dirty.is_empty() && !self.deleted {
                    return Ok(());
                }
                let mut buf = Vec::new();
                for r in self.rows.values() {
                    buf.extend_from_slice(&self.encode_record(r)?);
                }
                fs::write(self.repo.workdir().join("table.dat"), buf).ctx("writing table file")?;
            }
            TableLayout::FilePerTuple => {
                for &key in &self.dirty {
                    let path = self.repo.workdir().join(Self::tuple_file_name(key));
                    match self.rows.get(&key) {
                        Some(r) => {
                            let mut buf = Vec::new();
                            buf.extend_from_slice(&self.encode_record(r)?);
                            fs::write(path, buf).ctx("writing tuple file")?;
                        }
                        None => {
                            if path.exists() {
                                fs::remove_file(path).ctx("removing tuple file")?;
                            }
                        }
                    }
                }
            }
        }
        self.dirty.clear();
        self.deleted = false;
        Ok(())
    }

    /// Reloads the working state from the working directory (after a
    /// checkout).
    fn reload(&mut self) -> Result<()> {
        self.rows.clear();
        self.dirty.clear();
        self.deleted = false;
        match self.layout {
            TableLayout::OneFile => {
                let path = self.repo.workdir().join("table.dat");
                if path.exists() {
                    let bytes = fs::read(path).ctx("reading table file")?;
                    for r in self.decode_records(&bytes)? {
                        self.rows.insert(r.key(), r);
                    }
                }
            }
            TableLayout::FilePerTuple => {
                for entry in fs::read_dir(self.repo.workdir()).ctx("listing workdir")? {
                    let entry = entry.ctx("listing workdir")?;
                    let name = entry.file_name().to_string_lossy().to_string();
                    if !name.starts_with('t') || name == ".gitlike" {
                        continue;
                    }
                    if entry.file_type().ctx("stat")?.is_file() {
                        let bytes = fs::read(entry.path()).ctx("reading tuple file")?;
                        for r in self.decode_records(&bytes)? {
                            self.rows.insert(r.key(), r);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// `git add -A && git commit` over the working state.
    pub fn commit(&mut self, message: &str) -> Result<Sha1> {
        self.write_working_files()?;
        self.repo.commit(message)
    }

    /// Creates a branch at the current head.
    pub fn branch(&mut self, name: &str) -> Result<()> {
        self.repo.branch(name)
    }

    /// Switches to a branch, reloading the working state.
    pub fn checkout_branch(&mut self, name: &str) -> Result<()> {
        self.repo.checkout_branch(name)?;
        self.reload()
    }

    /// Checks out a historical commit, reloading the working state.
    pub fn checkout_commit(&mut self, commit: Sha1) -> Result<()> {
        self.repo.checkout_commit(commit)?;
        self.reload()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decibel_common::schema::ColumnType;

    fn all_modes() -> Vec<(TableLayout, TableEncoding)> {
        vec![
            (TableLayout::OneFile, TableEncoding::Csv),
            (TableLayout::OneFile, TableEncoding::Binary),
            (TableLayout::FilePerTuple, TableEncoding::Csv),
            (TableLayout::FilePerTuple, TableEncoding::Binary),
        ]
    }

    fn rec(k: u64, v: u64) -> Record {
        Record::new(k, vec![v, v + 1, v + 2])
    }

    #[test]
    fn insert_commit_checkout_roundtrip_all_modes() {
        for (layout, encoding) in all_modes() {
            let dir = tempfile::tempdir().unwrap();
            let mut t = GitTable::create(
                dir.path().join("t"),
                layout,
                encoding,
                Schema::new(3, ColumnType::U32),
            )
            .unwrap();
            for k in 0..20 {
                t.insert(rec(k, k * 10)).unwrap();
            }
            let c1 = t.commit("v1").unwrap();
            t.update(rec(3, 999)).unwrap();
            t.delete(7).unwrap();
            t.insert(rec(100, 0)).unwrap();
            t.commit("v2").unwrap();

            assert_eq!(t.len(), 20);
            assert_eq!(t.get(3).unwrap().field(0), 999);
            assert!(t.get(7).is_none());

            // Historical checkout restores v1 exactly.
            t.checkout_commit(c1).unwrap();
            assert_eq!(t.len(), 20, "{layout:?}/{encoding:?}");
            assert_eq!(t.get(3).unwrap().field(0), 30);
            assert!(t.get(7).is_some());
            assert!(t.get(100).is_none());
        }
    }

    #[test]
    fn branches_isolate_changes() {
        for (layout, encoding) in all_modes() {
            let dir = tempfile::tempdir().unwrap();
            let mut t = GitTable::create(
                dir.path().join("t"),
                layout,
                encoding,
                Schema::new(3, ColumnType::U32),
            )
            .unwrap();
            t.insert(rec(1, 10)).unwrap();
            t.commit("base").unwrap();
            t.branch("dev").unwrap();
            t.checkout_branch("dev").unwrap();
            t.update(rec(1, 99)).unwrap();
            t.insert(rec(2, 20)).unwrap();
            t.commit("dev work").unwrap();
            t.checkout_branch("master").unwrap();
            assert_eq!(t.get(1).unwrap().field(0), 10);
            assert!(t.get(2).is_none());
            t.checkout_branch("dev").unwrap();
            assert_eq!(t.get(1).unwrap().field(0), 99);
            assert_eq!(t.len(), 2);
        }
    }

    #[test]
    fn validation_errors() {
        let dir = tempfile::tempdir().unwrap();
        let mut t = GitTable::create(
            dir.path().join("t"),
            TableLayout::OneFile,
            TableEncoding::Csv,
            Schema::new(3, ColumnType::U32),
        )
        .unwrap();
        t.insert(rec(1, 0)).unwrap();
        assert!(matches!(
            t.insert(rec(1, 1)),
            Err(DbError::DuplicateKey { .. })
        ));
        assert!(matches!(
            t.update(rec(9, 0)),
            Err(DbError::KeyNotFound { .. })
        ));
        assert!(!t.delete(9).unwrap());
    }

    #[test]
    fn repack_preserves_history() {
        let dir = tempfile::tempdir().unwrap();
        let mut t = GitTable::create(
            dir.path().join("t"),
            TableLayout::OneFile,
            TableEncoding::Csv,
            Schema::new(3, ColumnType::U32),
        )
        .unwrap();
        let mut commits = Vec::new();
        for batch in 0..5 {
            for k in 0..50 {
                let key = batch * 50 + k;
                t.insert(rec(key, key)).unwrap();
            }
            commits.push(t.commit(&format!("batch {batch}")).unwrap());
        }
        let (elapsed, stats) = t.repo_mut().repack().unwrap();
        assert!(stats.deltas > 0);
        assert!(elapsed.as_nanos() > 0);
        t.checkout_commit(commits[1]).unwrap();
        assert_eq!(t.len(), 100);
        t.checkout_commit(commits[4]).unwrap();
        assert_eq!(t.len(), 250);
    }

    #[test]
    fn csv_is_larger_than_binary_on_disk() {
        // §5.7: "CSV results in a larger raw size due to string encoding"
        // (with wide-ish values).
        let schema = Schema::new(3, ColumnType::U32);
        let mut sizes = Vec::new();
        for encoding in [TableEncoding::Csv, TableEncoding::Binary] {
            let dir = tempfile::tempdir().unwrap();
            let mut t = GitTable::create(
                dir.path().join("t"),
                TableLayout::OneFile,
                encoding,
                schema.clone(),
            )
            .unwrap();
            for k in 0..100 {
                t.insert(Record::new(
                    k,
                    vec![3_000_000_000, 3_000_000_001, 3_000_000_002],
                ))
                .unwrap();
            }
            t.commit("data").unwrap();
            sizes.push(t.repo().data_size().unwrap());
        }
        assert!(
            sizes[0] > sizes[1],
            "csv {} vs binary {}",
            sizes[0],
            sizes[1]
        );
    }
}
