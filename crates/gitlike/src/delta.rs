//! Byte-level binary deltas (the packfile delta encoding).
//!
//! git packs store most objects as deltas against a similar base object —
//! "periodic creation of 'packfiles' to contain several objects, either in
//! their entirety or using a delta encoding" (§5.7). The encoding here is
//! git's shape: a stream of *copy* (offset+length from the base) and
//! *insert* (literal bytes) instructions, computed greedily with a
//! block-hash index over the base.

use decibel_common::error::{DbError, Result};
use decibel_common::hash::FxHashMap;
use decibel_common::varint;

const BLOCK: usize = 16;

/// Computes a delta transforming `base` into `target`.
///
/// The result starts with varints of the base and target lengths, then
/// instruction tokens: `0x01 [off][len]` = copy from base, `0x00 [len]
/// [bytes]` = insert literals.
pub fn encode(base: &[u8], target: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    varint::write_u64(&mut out, base.len() as u64);
    varint::write_u64(&mut out, target.len() as u64);

    // Index the base by non-overlapping BLOCK-byte chunks.
    let mut index: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    let mut off = 0usize;
    while off + BLOCK <= base.len() {
        index
            .entry(block_hash(&base[off..off + BLOCK]))
            .or_default()
            .push(off);
        off += BLOCK;
    }

    let mut pending: Vec<u8> = Vec::new();
    let mut i = 0usize;
    while i < target.len() {
        let mut best = (0usize, 0usize); // (base offset, match length)
        if i + BLOCK <= target.len() {
            if let Some(candidates) = index.get(&block_hash(&target[i..i + BLOCK])) {
                for &cand in candidates.iter().take(8) {
                    if base[cand..cand + BLOCK] != target[i..i + BLOCK] {
                        continue; // hash collision
                    }
                    // Extend the verified match forward as far as it goes.
                    let mut l = BLOCK;
                    while cand + l < base.len()
                        && i + l < target.len()
                        && base[cand + l] == target[i + l]
                    {
                        l += 1;
                    }
                    if l > best.1 {
                        best = (cand, l);
                    }
                }
            }
        }
        if best.1 >= BLOCK {
            flush_insert(&mut out, &mut pending);
            out.push(0x01);
            varint::write_u64(&mut out, best.0 as u64);
            varint::write_u64(&mut out, best.1 as u64);
            i += best.1;
        } else {
            pending.push(target[i]);
            i += 1;
        }
    }
    flush_insert(&mut out, &mut pending);
    out
}

fn block_hash(block: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in block {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn flush_insert(out: &mut Vec<u8>, pending: &mut Vec<u8>) {
    if pending.is_empty() {
        return;
    }
    out.push(0x00);
    varint::write_u64(out, pending.len() as u64);
    out.extend_from_slice(pending);
    pending.clear();
}

/// Applies a delta to `base`, reconstructing the target.
pub fn apply(base: &[u8], delta: &[u8]) -> Result<Vec<u8>> {
    let mut pos = 0usize;
    let base_len = varint::read_u64(delta, &mut pos)? as usize;
    if base_len != base.len() {
        return Err(DbError::corrupt(format!(
            "delta base length {} != supplied base {}",
            base_len,
            base.len()
        )));
    }
    let target_len = varint::read_u64(delta, &mut pos)? as usize;
    let mut out = Vec::with_capacity(target_len);
    while pos < delta.len() {
        let op = delta[pos];
        pos += 1;
        match op {
            0x01 => {
                let off = varint::read_u64(delta, &mut pos)? as usize;
                let len = varint::read_u64(delta, &mut pos)? as usize;
                if off + len > base.len() {
                    return Err(DbError::corrupt("delta copy out of base bounds"));
                }
                out.extend_from_slice(&base[off..off + len]);
            }
            0x00 => {
                let len = varint::read_u64(delta, &mut pos)? as usize;
                if pos + len > delta.len() {
                    return Err(DbError::corrupt("delta insert truncated"));
                }
                out.extend_from_slice(&delta[pos..pos + len]);
                pos += len;
            }
            other => return Err(DbError::corrupt(format!("bad delta opcode {other}"))),
        }
    }
    if out.len() != target_len {
        return Err(DbError::corrupt("delta target length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decibel_common::rng::DetRng;

    fn roundtrip(base: &[u8], target: &[u8]) -> usize {
        let d = encode(base, target);
        assert_eq!(
            apply(base, &d).unwrap(),
            target,
            "delta must reconstruct target"
        );
        d.len()
    }

    #[test]
    fn identical_content_is_one_copy() {
        let data = b"0123456789abcdef".repeat(64);
        let dlen = roundtrip(&data, &data);
        assert!(dlen < 24, "identical content encodes in {dlen} bytes");
    }

    #[test]
    fn append_only_change_is_small() {
        let base = b"row1\nrow2\nrow3\n".repeat(100);
        let mut target = base.clone();
        target.extend_from_slice(b"row-new\n");
        let dlen = roundtrip(&base, &target);
        assert!(dlen < 64, "append delta is {dlen} bytes");
    }

    #[test]
    fn small_edit_in_the_middle() {
        let base: Vec<u8> = (0..5000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut target = base.clone();
        target[10_000] ^= 0xFF;
        let dlen = roundtrip(&base, &target);
        assert!(dlen < 200, "single-byte edit delta is {dlen} bytes");
    }

    #[test]
    fn unrelated_content_degrades_to_insert() {
        let mut rng = DetRng::seed_from_u64(5);
        let base: Vec<u8> = (0..2000).map(|_| rng.next_u32() as u8).collect();
        let target: Vec<u8> = (0..2000).map(|_| rng.next_u32() as u8).collect();
        let dlen = roundtrip(&base, &target);
        assert!(
            dlen >= 2000,
            "random target cannot be compressed against base"
        );
    }

    #[test]
    fn empty_edges() {
        roundtrip(b"", b"");
        roundtrip(b"", b"new content here");
        roundtrip(b"old content here", b"");
    }

    #[test]
    fn random_mutations_roundtrip() {
        let mut rng = DetRng::seed_from_u64(17);
        let base: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        for _ in 0..10 {
            let mut target = base.clone();
            for _ in 0..rng.range(1, 50) {
                let pos = rng.below_usize(target.len());
                target[pos] = rng.next_u32() as u8;
            }
            // Insertions and truncations too.
            if rng.chance(1, 2) {
                let pos = rng.below_usize(target.len());
                target.splice(
                    pos..pos,
                    (0..rng.range(1, 100)).map(|_| rng.next_u32() as u8),
                );
            } else {
                target.truncate(rng.range(1, target.len() as u64) as usize);
            }
            roundtrip(&base, &target);
        }
    }

    #[test]
    fn wrong_base_is_rejected() {
        let d = encode(b"base one", b"target");
        assert!(apply(b"different", &d).is_err());
    }
}
