//! A from-scratch git-like version control system.
//!
//! §5.7 of the Decibel paper asks "whether it would be possible to build
//! Decibel on top of an existing version control system like git" and
//! answers by implementing the Decibel API over git in several storage
//! layouts. We cannot ship the git binary, so this crate rebuilds the
//! *mechanisms* the paper measures and blames for git's behaviour:
//!
//! * content addressing — every object is named by a SHA-1 over its full
//!   serialized form ([`sha1`]), so commit cost grows with data size
//!   ("compute SHA-1 hashes for each commit (proportional to data set
//!   size)");
//! * loose blob/tree/commit objects, compressed on disk ([`object`],
//!   [`compress`] — an LZSS substitute for zlib, documented in DESIGN.md);
//! * packfiles with byte-level copy/insert delta chains and an explicit
//!   `repack` operation ([`delta`], [`pack`]) — "git exhaustively compares
//!   objects to find the best delta encoding to use";
//! * refs, branches, commits, and checkouts over a working directory
//!   ([`repo`]);
//! * the paper's four table layouts — one-file vs file-per-tuple, CSV vs
//!   binary encoding ([`table`]) — driven through a Decibel-like API.

pub mod compress;
pub mod delta;
pub mod object;
pub mod pack;
pub mod repo;
pub mod sha1;
pub mod table;

pub use repo::Repo;
pub use table::{GitTable, TableLayout};
