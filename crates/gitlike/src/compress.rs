//! LZSS compression — the zlib stand-in for loose objects.
//!
//! git deflates every loose object and packfile entry with zlib; shipping
//! zlib is outside this reproduction's dependency budget, so loose objects
//! are compressed with a greedy LZSS coder (64 KiB window, hash-chain
//! matching). It preserves the *behavioural* property the paper leans on:
//! compression work proportional to object size on every commit, and
//! redundant content (CSV text, repeated rows) shrinking substantially.
//! This substitution is recorded in DESIGN.md.
//!
//! Format: `[varint raw_len]` then a stream of tokens under flag bytes —
//! each flag bit selects literal (1 byte) or match (`u16` offset-1,
//! `u8` len-MIN_MATCH).

use decibel_common::error::{DbError, Result};
use decibel_common::varint;

const WINDOW: usize = 1 << 16;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `data`. Output always decompresses to the exact input.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    varint::write_u64(&mut out, data.len() as u64);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len().clamp(1, WINDOW)];

    let mut i = 0usize;
    let mut flag_pos = out.len();
    out.push(0);
    let mut flag_bit = 0u8;

    macro_rules! emit_bit {
        ($is_match:expr) => {
            if flag_bit == 8 {
                flag_pos = out.len();
                out.push(0);
                flag_bit = 0;
            }
            if $is_match {
                out[flag_pos] |= 1 << flag_bit;
            }
            flag_bit += 1;
        };
    }

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(&data[i..]);
            let chain_head = head[h];
            let mut cand = chain_head;
            let mut probes = 32;
            while cand != usize::MAX && probes > 0 && i - cand <= WINDOW && cand < i {
                let max = (data.len() - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < max && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l == max {
                        break;
                    }
                }
                let next = prev[cand % prev.len()];
                if next >= cand {
                    break; // stale slot from window wraparound
                }
                cand = next;
                probes -= 1;
            }
            let slot = i % prev.len();
            prev[slot] = chain_head;
            head[h] = i;
        }
        if best_len >= MIN_MATCH && best_off <= WINDOW {
            emit_bit!(true);
            out.extend_from_slice(&((best_off - 1) as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Index the skipped positions so later input can match into
            // the middle of this run.
            let end = i + best_len;
            i += 1;
            while i < end && i + MIN_MATCH <= data.len() {
                let h = hash4(&data[i..]);
                let slot = i % prev.len();
                prev[slot] = head[h];
                head[h] = i;
                i += 1;
            }
            i = end;
        } else {
            emit_bit!(false);
            out.push(data[i]);
            i += 1;
        }
    }
    out
}

/// Decompresses a buffer produced by [`compress`].
pub fn decompress(buf: &[u8]) -> Result<Vec<u8>> {
    let mut pos = 0usize;
    let raw_len = varint::read_u64(buf, &mut pos)? as usize;
    let mut out = Vec::with_capacity(raw_len);
    let mut flag = 0u8;
    let mut flag_bit = 8u8;
    while out.len() < raw_len {
        if flag_bit == 8 {
            flag = *buf
                .get(pos)
                .ok_or_else(|| DbError::corrupt("LZSS truncated (flag)"))?;
            pos += 1;
            flag_bit = 0;
        }
        let is_match = flag >> flag_bit & 1 == 1;
        flag_bit += 1;
        if is_match {
            if pos + 3 > buf.len() {
                return Err(DbError::corrupt("LZSS truncated (match)"));
            }
            let off = u16::from_le_bytes([buf[pos], buf[pos + 1]]) as usize + 1;
            let len = buf[pos + 2] as usize + MIN_MATCH;
            pos += 3;
            if off > out.len() {
                return Err(DbError::corrupt("LZSS match before start"));
            }
            let start = out.len() - off;
            for j in 0..len {
                let b = out[start + j];
                out.push(b);
            }
        } else {
            let b = *buf
                .get(pos)
                .ok_or_else(|| DbError::corrupt("LZSS truncated (lit)"))?;
            pos += 1;
            out.push(b);
        }
    }
    if out.len() != raw_len {
        return Err(DbError::corrupt("LZSS length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decibel_common::rng::DetRng;

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data);
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_data_shrinks() {
        let data = b"the quick brown fox ".repeat(200);
        let clen = roundtrip(&data);
        assert!(
            clen < data.len() / 5,
            "compressed {} of {}",
            clen,
            data.len()
        );
    }

    #[test]
    fn long_runs() {
        let data = vec![7u8; 100_000];
        let clen = roundtrip(&data);
        assert!(clen < 2500);
    }

    #[test]
    fn csv_like_content() {
        let mut csv = String::new();
        for i in 0..2000 {
            csv.push_str(&format!("{i},100,200,300,400,500\n"));
        }
        let clen = roundtrip(csv.as_bytes());
        assert!(clen < csv.len() / 2);
    }

    #[test]
    fn random_data_survives() {
        let mut rng = DetRng::seed_from_u64(42);
        for len in [1usize, 63, 64, 65, 1000, 70_000] {
            let data: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn match_distance_across_window_boundary() {
        // A repeating motif longer than the 64 KiB window still roundtrips.
        let motif: Vec<u8> = (0..=255u8).collect();
        let data = motif.repeat(300); // ~77 KB
        roundtrip(&data);
    }

    #[test]
    fn corrupt_streams_error() {
        let c = compress(b"hello hello hello hello");
        assert!(decompress(&c[..c.len() - 1]).is_err() || decompress(&c[..c.len() - 1]).is_ok());
        // Empty input is corrupt (missing varint).
        assert!(decompress(&[]).is_err());
    }
}
