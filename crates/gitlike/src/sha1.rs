//! SHA-1, implemented from scratch (FIPS 180-1).
//!
//! git names every object by the SHA-1 of its serialized form; the paper
//! attributes part of git's commit cost to exactly this hashing
//! ("compute SHA-1 hashes for each commit (proportional to data set
//! size)", §5.7). SHA-1 is used here as a *content address*, not for
//! security — collision weaknesses are irrelevant to the benchmark.

/// A 20-byte SHA-1 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sha1(pub [u8; 20]);

impl Sha1 {
    /// Hex rendering (git's object naming).
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a 40-character hex digest.
    pub fn from_hex(hex: &str) -> Option<Sha1> {
        if hex.len() != 40 {
            return None;
        }
        let mut out = [0u8; 20];
        for i in 0..20 {
            out[i] = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(Sha1(out))
    }
}

/// Incremental SHA-1 hasher.
pub struct Hasher {
    h: [u32; 5],
    /// Bytes processed so far (for the length suffix).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

impl Hasher {
    /// Creates a hasher in the initial state.
    pub fn new() -> Hasher {
        Hasher {
            h: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len += data.len() as u64;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> Sha1 {
        let bit_len = self.len * 8;
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length goes in raw (bypass the len counter — it's already fixed).
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Sha1(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

/// One-shot digest of a byte slice.
pub fn digest(data: &[u8]) -> Sha1 {
    let mut h = Hasher::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-1 / RFC 3174 reference vectors.
    #[test]
    fn reference_vectors() {
        assert_eq!(
            digest(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            digest(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            digest(&[b'a'; 1_000_000]).to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn git_style_blob_hash() {
        // `echo -n 'what is up, doc?' | git hash-object --stdin`
        let content = b"what is up, doc?";
        let mut h = Hasher::new();
        h.update(format!("blob {}\0", content.len()).as_bytes());
        h.update(content);
        assert_eq!(
            h.finalize().to_hex(),
            "bd9dbf5aae1a3862dd1526723246b20206e5fc37"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let mut h = Hasher::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), digest(&data));
    }

    #[test]
    fn hex_roundtrip() {
        let d = digest(b"roundtrip");
        assert_eq!(Sha1::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Sha1::from_hex("nope"), None);
        assert_eq!(Sha1::from_hex(&"z".repeat(40)), None);
    }
}
