//! Packfiles and `repack`.
//!
//! git controls loose-object explosion with packfiles: "periodic creation
//! of 'packfiles' to contain several objects, either in their entirety or
//! using a delta encoding. ... git exhaustively compares objects to find
//! the best delta encoding to use" (§5.7). The paper had to repack
//! manually and measured it at hours for 1 GB — the cost comes from
//! reading every object, trying deltas against a sliding window of
//! similarly sized objects, and recompressing. This module reproduces that
//! procedure: size-sorted delta window, chain-depth limit, LZSS-compressed
//! entries, and an in-memory index for reads.

use std::fs;
use std::path::{Path, PathBuf};

use decibel_common::error::{DbError, IoResultExt, Result};
use decibel_common::hash::FxHashMap;
use decibel_common::varint;

use crate::compress;
use crate::delta;
use crate::object::ObjectStore;
use crate::sha1::Sha1;

const KIND_FULL: u8 = 0;
const KIND_DELTA: u8 = 1;
/// git's default delta chain depth limit is 50; we keep chains shorter to
/// bound checkout latency the same way `--depth` does.
const MAX_CHAIN: u32 = 10;
/// Size of the sliding window of delta candidates (git uses 10).
const WINDOW: usize = 10;

#[derive(Debug, Clone, Copy)]
struct PackEntry {
    offset: u64,
    len: u32,
    kind: u8,
    base: Option<Sha1>,
    chain: u32,
}

/// One immutable packfile plus its in-memory index.
pub struct Pack {
    path: PathBuf,
    file: fs::File,
    index: FxHashMap<Sha1, PackEntry>,
}

/// Statistics from a repack run (Table 6's "repack time" and size columns
/// derive from these).
#[derive(Debug, Clone, Copy, Default)]
pub struct RepackStats {
    /// Objects migrated into the pack.
    pub objects: u64,
    /// Objects stored as deltas.
    pub deltas: u64,
    /// Total bytes written to the pack.
    pub pack_bytes: u64,
    /// Total serialized bytes before packing.
    pub raw_bytes: u64,
}

impl Pack {
    /// Builds a pack at `path` from every loose object in `store`,
    /// removing the loose copies afterwards (like `git repack -ad`).
    pub fn repack(store: &ObjectStore, path: impl AsRef<Path>) -> Result<(Pack, RepackStats)> {
        let path = path.as_ref().to_path_buf();
        let ids = store.list()?;
        // Read and serialize every object ("git exhaustively compares
        // objects": the read + hash + compare cost is the point).
        let mut objects: Vec<(Sha1, Vec<u8>)> = Vec::with_capacity(ids.len());
        for id in ids {
            let (kind, payload) = store.read(id)?;
            let mut full = format!("{} {}\0", kind_tag(kind), payload.len()).into_bytes();
            full.extend_from_slice(&payload);
            objects.push((id, full));
        }
        // Sort by descending size so similar-sized objects neighbour each
        // other in the delta window (git sorts by type/path/size).
        objects.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));

        let mut stats = RepackStats::default();
        let mut file_buf: Vec<u8> = Vec::new();
        let mut index: FxHashMap<Sha1, PackEntry> = FxHashMap::default();
        let mut window: Vec<(Sha1, usize)> = Vec::new(); // (id, objects idx)

        for i in 0..objects.len() {
            let (id, ref full) = objects[i];
            stats.raw_bytes += full.len() as u64;
            // Try a delta against each window candidate; keep the best.
            let mut best: Option<(Sha1, Vec<u8>, u32)> = None;
            for &(base_id, base_idx) in window.iter().rev() {
                let base_chain = index.get(&base_id).map(|e| e.chain).unwrap_or(0);
                if base_chain + 1 > MAX_CHAIN {
                    continue;
                }
                let d = delta::encode(&objects[base_idx].1, full);
                if d.len() < full.len() * 7 / 10
                    && best
                        .as_ref()
                        .map(|(_, b, _)| d.len() < b.len())
                        .unwrap_or(true)
                {
                    best = Some((base_id, d, base_chain + 1));
                }
            }
            let entry = match best {
                Some((base_id, d, chain)) => {
                    stats.deltas += 1;
                    let compressed = compress::compress(&d);
                    write_entry(&mut file_buf, id, KIND_DELTA, Some(base_id), &compressed);
                    PackEntry {
                        offset: (file_buf.len() - compressed.len()) as u64,
                        len: compressed.len() as u32,
                        kind: KIND_DELTA,
                        base: Some(base_id),
                        chain,
                    }
                }
                None => {
                    let compressed = compress::compress(full);
                    write_entry(&mut file_buf, id, KIND_FULL, None, &compressed);
                    PackEntry {
                        offset: (file_buf.len() - compressed.len()) as u64,
                        len: compressed.len() as u32,
                        kind: KIND_FULL,
                        base: None,
                        chain: 0,
                    }
                }
            };
            index.insert(id, entry);
            stats.objects += 1;
            window.push((id, i));
            if window.len() > WINDOW {
                window.remove(0);
            }
        }
        stats.pack_bytes = file_buf.len() as u64;
        fs::write(&path, &file_buf).ctx("writing packfile")?;
        // Drop the loose copies the pack replaces.
        for (id, _) in &objects {
            store.remove(*id)?;
        }
        let file = fs::File::open(&path).ctx("opening packfile")?;
        Ok((Pack { path, file, index }, stats))
    }

    /// Opens an existing packfile, rebuilding the index by scanning it.
    pub fn open(path: impl AsRef<Path>) -> Result<Pack> {
        let path = path.as_ref().to_path_buf();
        let bytes = fs::read(&path).ctx("reading packfile")?;
        let mut index = FxHashMap::default();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let mut id = [0u8; 20];
            id.copy_from_slice(&bytes[pos..pos + 20]);
            pos += 20;
            let kind = bytes[pos];
            pos += 1;
            let base = if kind == KIND_DELTA {
                let mut b = [0u8; 20];
                b.copy_from_slice(&bytes[pos..pos + 20]);
                pos += 20;
                Some(Sha1(b))
            } else {
                None
            };
            let len = varint::read_u64(&bytes, &mut pos)? as usize;
            index.insert(
                Sha1(id),
                PackEntry {
                    offset: pos as u64,
                    len: len as u32,
                    kind,
                    base,
                    chain: 0, // depth only matters at build time
                },
            );
            pos += len;
        }
        let file = fs::File::open(&path).ctx("opening packfile")?;
        Ok(Pack { path, file, index })
    }

    /// Whether the pack holds `id`.
    pub fn contains(&self, id: Sha1) -> bool {
        self.index.contains_key(&id)
    }

    /// Reads the serialized object form (`<type> <len>\0<payload>`),
    /// resolving delta chains recursively.
    pub fn read_full(&self, id: Sha1) -> Result<Vec<u8>> {
        let entry = *self
            .index
            .get(&id)
            .ok_or_else(|| DbError::corrupt(format!("object {} not in pack", id.to_hex())))?;
        self.read_entry(entry)
    }

    fn read_entry(&self, entry: PackEntry) -> Result<Vec<u8>> {
        use std::os::unix::fs::FileExt;
        let mut raw = vec![0u8; entry.len as usize];
        self.file
            .read_exact_at(&mut raw, entry.offset)
            .ctx("reading pack entry")?;
        let data = compress::decompress(&raw)?;
        match entry.kind {
            KIND_FULL => Ok(data),
            KIND_DELTA => {
                let base_id = entry.base.expect("delta entry has a base");
                let base_entry = *self.index.get(&base_id).ok_or_else(|| {
                    DbError::corrupt(format!("delta base {} missing", base_id.to_hex()))
                })?;
                let base = self.read_entry(base_entry)?;
                delta::apply(&base, &data)
            }
            other => Err(DbError::corrupt(format!("bad pack entry kind {other}"))),
        }
    }

    /// Number of objects in the pack.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if the pack is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// On-disk size in bytes.
    pub fn disk_size(&self) -> u64 {
        fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }
}

fn write_entry(buf: &mut Vec<u8>, id: Sha1, kind: u8, base: Option<Sha1>, payload: &[u8]) {
    buf.extend_from_slice(&id.0);
    buf.push(kind);
    if let Some(b) = base {
        buf.extend_from_slice(&b.0);
    }
    varint::write_u64(buf, payload.len() as u64);
    buf.extend_from_slice(payload);
}

fn kind_tag(kind: crate::object::ObjKind) -> &'static str {
    match kind {
        crate::object::ObjKind::Blob => "blob",
        crate::object::ObjKind::Tree => "tree",
        crate::object::ObjKind::Commit => "commit",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjKind;

    fn store_with_blobs(contents: &[&[u8]]) -> (tempfile::TempDir, ObjectStore, Vec<Sha1>) {
        let dir = tempfile::tempdir().unwrap();
        let store = ObjectStore::new(dir.path().join("objects")).unwrap();
        let ids = contents
            .iter()
            .map(|c| store.write(ObjKind::Blob, c).unwrap())
            .collect();
        (dir, store, ids)
    }

    #[test]
    fn repack_roundtrips_all_objects() {
        // Append-only growth, like table versions: version i holds the
        // first (i+1)*50 rows, so consecutive versions share long prefixes.
        let versions: Vec<Vec<u8>> = (0..20)
            .map(|i| {
                let mut rows = String::new();
                for k in 0..(i + 1) * 50 {
                    rows.push_str(&format!("{k},{},{}\n", k * 2, k * 3));
                }
                rows.into_bytes()
            })
            .collect();
        let refs: Vec<&[u8]> = versions.iter().map(|v| v.as_slice()).collect();
        let (dir, store, ids) = store_with_blobs(&refs);
        let (pack, stats) = Pack::repack(&store, dir.path().join("p.pack")).unwrap();
        assert_eq!(stats.objects, 20);
        assert!(stats.deltas > 0, "similar versions should delta");
        assert!(stats.pack_bytes < stats.raw_bytes);
        // Loose objects were removed; the pack serves reads.
        assert!(store.list().unwrap().is_empty());
        for (id, content) in ids.iter().zip(&versions) {
            let full = pack.read_full(*id).unwrap();
            let (kind, payload) = ObjectStore::parse(&full).unwrap();
            assert_eq!(kind, ObjKind::Blob);
            assert_eq!(&payload, content);
        }
    }

    #[test]
    fn pack_reopen_serves_reads() {
        let (dir, store, ids) =
            store_with_blobs(&[b"alpha alpha alpha", b"alpha alpha alphb", b"gamma"]);
        let path = dir.path().join("p.pack");
        let (_pack, _) = Pack::repack(&store, &path).unwrap();
        let pack = Pack::open(&path).unwrap();
        assert_eq!(pack.len(), 3);
        for id in ids {
            let full = pack.read_full(id).unwrap();
            let (_, payload) = ObjectStore::parse(&full).unwrap();
            assert_eq!(ObjectStore::hash(ObjKind::Blob, &payload), id);
        }
    }

    #[test]
    fn missing_object_errors() {
        let (dir, store, _) = store_with_blobs(&[b"only one"]);
        let (pack, _) = Pack::repack(&store, dir.path().join("p.pack")).unwrap();
        assert!(pack.read_full(crate::sha1::digest(b"missing")).is_err());
    }

    #[test]
    fn empty_store_packs_empty() {
        let dir = tempfile::tempdir().unwrap();
        let store = ObjectStore::new(dir.path().join("objects")).unwrap();
        let (pack, stats) = Pack::repack(&store, dir.path().join("p.pack")).unwrap();
        assert!(pack.is_empty());
        assert_eq!(stats.objects, 0);
    }
}
