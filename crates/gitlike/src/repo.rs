//! The repository: working directory, refs, commits, checkouts, repack.
//!
//! The paper's baseline "created a local git repository, and call\[s\] git
//! commands (e.g. branch) in place of Decibel API calls" (§5.7). This is
//! that repository: a working directory of table files, a `.gitlike`
//! directory holding loose objects / packfiles / refs, and the five
//! operations the benchmark drives (add+commit, branch, checkout, repack,
//! size accounting).

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use decibel_common::error::{DbError, IoResultExt, Result};
use decibel_common::hash::FxHashMap;

use crate::object::{Commit, ObjKind, ObjectStore, Tree};
use crate::pack::{Pack, RepackStats};
use crate::sha1::Sha1;

/// A git-like repository over a working directory.
pub struct Repo {
    workdir: PathBuf,
    gitdir: PathBuf,
    objects: ObjectStore,
    packs: Vec<Pack>,
    refs: FxHashMap<String, Sha1>,
    head: String,
}

impl Repo {
    /// Initializes a repository whose working directory is `workdir`.
    pub fn init(workdir: impl AsRef<Path>) -> Result<Repo> {
        let workdir = workdir.as_ref().to_path_buf();
        fs::create_dir_all(&workdir).ctx("creating working directory")?;
        let gitdir = workdir.join(".gitlike");
        fs::create_dir_all(&gitdir).ctx("creating .gitlike")?;
        let objects = ObjectStore::new(gitdir.join("objects"))?;
        let mut repo = Repo {
            workdir,
            gitdir,
            objects,
            packs: Vec::new(),
            refs: FxHashMap::default(),
            head: "master".to_string(),
        };
        // Root commit over the (empty) working tree.
        let root = repo.commit("init")?;
        repo.refs.insert("master".to_string(), root);
        Ok(repo)
    }

    /// The working directory path.
    pub fn workdir(&self) -> &Path {
        &self.workdir
    }

    /// The current branch name.
    pub fn head_branch(&self) -> &str {
        &self.head
    }

    /// The head commit of a branch.
    pub fn branch_head(&self, name: &str) -> Result<Sha1> {
        self.refs
            .get(name)
            .copied()
            .ok_or_else(|| DbError::UnknownBranch(name.to_string()))
    }

    fn read_object(&self, id: Sha1) -> Result<(ObjKind, Vec<u8>)> {
        if self.objects.contains(id) {
            return self.objects.read(id);
        }
        for pack in &self.packs {
            if pack.contains(id) {
                let full = pack.read_full(id)?;
                return ObjectStore::parse(&full);
            }
        }
        Err(DbError::corrupt(format!(
            "object {} not found",
            id.to_hex()
        )))
    }

    /// Lists working-directory data files (sorted; `.gitlike` excluded).
    fn work_files(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.workdir).ctx("listing workdir")? {
            let entry = entry.ctx("listing workdir")?;
            let name = entry.file_name().to_string_lossy().to_string();
            if name == ".gitlike" {
                continue;
            }
            if entry.file_type().ctx("stat workdir entry")?.is_file() {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    /// `git add -A && git commit`: hashes every working file into a blob
    /// (cost proportional to the dataset, as §5.7 observes), snapshots the
    /// tree, and advances the current branch.
    pub fn commit(&mut self, message: &str) -> Result<Sha1> {
        let mut entries = Vec::new();
        for name in self.work_files()? {
            let content = fs::read(self.workdir.join(&name)).ctx("reading working file")?;
            let blob = self.objects.write(ObjKind::Blob, &content)?;
            entries.push((name, blob));
        }
        let tree = Tree { entries };
        let tree_id = self.objects.write(ObjKind::Tree, &tree.to_bytes())?;
        let parents = self.refs.get(&self.head).copied().into_iter().collect();
        let commit = Commit {
            tree: tree_id,
            parents,
            message: message.to_string(),
        };
        let commit_id = self.objects.write(ObjKind::Commit, &commit.to_bytes())?;
        self.refs.insert(self.head.clone(), commit_id);
        Ok(commit_id)
    }

    /// `git branch <name>`: a new ref at the current head.
    pub fn branch(&mut self, name: &str) -> Result<()> {
        if self.refs.contains_key(name) {
            return Err(DbError::Invalid(format!("branch {name:?} already exists")));
        }
        let head = self.branch_head(&self.head)?;
        self.refs.insert(name.to_string(), head);
        Ok(())
    }

    /// `git checkout <branch>`: materializes the branch head's tree into
    /// the working directory and switches HEAD.
    pub fn checkout_branch(&mut self, name: &str) -> Result<()> {
        let commit = self.branch_head(name)?;
        self.materialize(commit)?;
        self.head = name.to_string();
        Ok(())
    }

    /// `git checkout <commit>`: materializes a commit (detached HEAD stays
    /// on the current branch for subsequent commits).
    pub fn checkout_commit(&mut self, commit: Sha1) -> Result<()> {
        self.materialize(commit)
    }

    fn materialize(&self, commit: Sha1) -> Result<()> {
        let (kind, payload) = self.read_object(commit)?;
        if kind != ObjKind::Commit {
            return Err(DbError::corrupt("checkout target is not a commit"));
        }
        let commit = Commit::from_bytes(&payload)?;
        let (kind, payload) = self.read_object(commit.tree)?;
        if kind != ObjKind::Tree {
            return Err(DbError::corrupt("commit tree is not a tree"));
        }
        let tree = Tree::from_bytes(&payload)?;
        // Remove files not in the target tree.
        for name in self.work_files()? {
            if tree.get(&name).is_none() {
                fs::remove_file(self.workdir.join(&name)).ctx("removing stale file")?;
            }
        }
        // Write out every tree entry ("restoring binary objects is
        // inefficient": each blob may walk a delta chain).
        for (name, blob_id) in &tree.entries {
            let (kind, content) = self.read_object(*blob_id)?;
            if kind != ObjKind::Blob {
                return Err(DbError::corrupt("tree entry is not a blob"));
            }
            fs::write(self.workdir.join(name), content).ctx("writing working file")?;
        }
        Ok(())
    }

    /// Parents of a commit (for history walks).
    pub fn commit_parents(&self, id: Sha1) -> Result<Vec<Sha1>> {
        let (kind, payload) = self.read_object(id)?;
        if kind != ObjKind::Commit {
            return Err(DbError::corrupt("not a commit"));
        }
        Ok(Commit::from_bytes(&payload)?.parents)
    }

    /// `git repack -ad`: migrates all loose objects into a new packfile.
    /// Returns the wall-clock duration and delta statistics — the paper
    /// reports repack time as a headline cost (Table 6).
    pub fn repack(&mut self) -> Result<(Duration, RepackStats)> {
        let start = Instant::now();
        let pack_path = self.gitdir.join(format!("pack_{}.pack", self.packs.len()));
        let (pack, stats) = Pack::repack(&self.objects, pack_path)?;
        self.packs.push(pack);
        Ok((start.elapsed(), stats))
    }

    /// Total bytes under `.gitlike` (Table 6's "repo size").
    pub fn repo_size(&self) -> u64 {
        self.objects.disk_size() + self.packs.iter().map(|p| p.disk_size()).sum::<u64>()
    }

    /// Bytes of table data in the working directory (Table 6's
    /// "data size").
    pub fn data_size(&self) -> Result<u64> {
        let mut total = 0u64;
        for name in self.work_files()? {
            total += fs::metadata(self.workdir.join(name))
                .ctx("stat working file")?
                .len();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo() -> (tempfile::TempDir, Repo) {
        let dir = tempfile::tempdir().unwrap();
        let repo = Repo::init(dir.path().join("wd")).unwrap();
        (dir, repo)
    }

    fn write_file(repo: &Repo, name: &str, content: &str) {
        fs::write(repo.workdir().join(name), content).unwrap();
    }

    fn read_file(repo: &Repo, name: &str) -> String {
        fs::read_to_string(repo.workdir().join(name)).unwrap()
    }

    #[test]
    fn commit_and_checkout_restores_content() {
        let (_d, mut repo) = repo();
        write_file(&repo, "t.csv", "1,a\n2,b\n");
        let c1 = repo.commit("v1").unwrap();
        write_file(&repo, "t.csv", "1,a\n2,b\n3,c\n");
        let _c2 = repo.commit("v2").unwrap();
        repo.checkout_commit(c1).unwrap();
        assert_eq!(read_file(&repo, "t.csv"), "1,a\n2,b\n");
    }

    #[test]
    fn branches_diverge_and_switch() {
        let (_d, mut repo) = repo();
        write_file(&repo, "t.csv", "base\n");
        repo.commit("base").unwrap();
        repo.branch("dev").unwrap();
        repo.checkout_branch("dev").unwrap();
        write_file(&repo, "t.csv", "dev version\n");
        repo.commit("dev change").unwrap();
        repo.checkout_branch("master").unwrap();
        assert_eq!(read_file(&repo, "t.csv"), "base\n");
        repo.checkout_branch("dev").unwrap();
        assert_eq!(read_file(&repo, "t.csv"), "dev version\n");
    }

    #[test]
    fn checkout_removes_stale_files() {
        let (_d, mut repo) = repo();
        write_file(&repo, "a", "1");
        let c1 = repo.commit("one file").unwrap();
        write_file(&repo, "b", "2");
        repo.commit("two files").unwrap();
        repo.checkout_commit(c1).unwrap();
        assert!(repo.workdir().join("a").exists());
        assert!(!repo.workdir().join("b").exists());
    }

    #[test]
    fn commit_history_via_parents() {
        let (_d, mut repo) = repo();
        write_file(&repo, "t", "1");
        let c1 = repo.commit("c1").unwrap();
        write_file(&repo, "t", "2");
        let c2 = repo.commit("c2").unwrap();
        assert_eq!(repo.commit_parents(c2).unwrap(), vec![c1]);
    }

    #[test]
    fn repack_then_read_through_pack() {
        let (_d, mut repo) = repo();
        for i in 0..10 {
            write_file(&repo, "t.csv", &format!("version {i}\n").repeat(100));
            repo.commit(&format!("v{i}")).unwrap();
        }
        let head = repo.branch_head("master").unwrap();
        let (elapsed, stats) = repo.repack().unwrap();
        assert!(stats.objects > 10);
        assert!(elapsed.as_nanos() > 0);
        assert!(repo.repo_size() > 0);
        // Checkout still works after repack.
        repo.checkout_commit(head).unwrap();
        assert!(read_file(&repo, "t.csv").starts_with("version 9"));
    }

    #[test]
    fn duplicate_branch_rejected() {
        let (_d, mut repo) = repo();
        repo.branch("dev").unwrap();
        assert!(repo.branch("dev").is_err());
        assert!(repo.checkout_branch("nope").is_err());
    }

    #[test]
    fn sizes_reported() {
        let (_d, mut repo) = repo();
        write_file(&repo, "t.csv", &"x".repeat(1000));
        repo.commit("data").unwrap();
        assert_eq!(repo.data_size().unwrap(), 1000);
        assert!(repo.repo_size() > 0);
    }
}
