//! The content-addressed object database.
//!
//! Objects are git's three kinds — blobs (file contents), trees (name →
//! object listings), commits (tree + parents + message) — serialized as
//! `"<type> <len>\0<payload>"`, named by the SHA-1 of that form, and stored
//! compressed under `objects/ab/cdef...` ("git's poor performance is from
//! storing each version as a separate object", §5.7).

use std::fs;
use std::path::{Path, PathBuf};

use decibel_common::error::{DbError, IoResultExt, Result};

use crate::compress;
use crate::sha1::{self, Sha1};

/// Object kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjKind {
    /// File contents.
    Blob,
    /// A directory listing: `(name, child id)` pairs.
    Tree,
    /// A commit: root tree + parent commits + message.
    Commit,
}

impl ObjKind {
    fn tag(self) -> &'static str {
        match self {
            ObjKind::Blob => "blob",
            ObjKind::Tree => "tree",
            ObjKind::Commit => "commit",
        }
    }

    fn from_tag(tag: &str) -> Option<ObjKind> {
        match tag {
            "blob" => Some(ObjKind::Blob),
            "tree" => Some(ObjKind::Tree),
            "commit" => Some(ObjKind::Commit),
            _ => None,
        }
    }
}

/// A parsed tree object.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tree {
    /// Sorted `(name, object id)` entries.
    pub entries: Vec<(String, Sha1)>,
}

impl Tree {
    /// Serializes to the payload format `name\0<20-byte id>` per entry.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (name, id) in &self.entries {
            out.extend_from_slice(name.as_bytes());
            out.push(0);
            out.extend_from_slice(&id.0);
        }
        out
    }

    /// Parses a tree payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Tree> {
        let mut entries = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let nul = bytes[pos..]
                .iter()
                .position(|&b| b == 0)
                .ok_or_else(|| DbError::corrupt("tree entry missing NUL"))?;
            let name = String::from_utf8(bytes[pos..pos + nul].to_vec())
                .map_err(|_| DbError::corrupt("tree entry name not UTF-8"))?;
            pos += nul + 1;
            if pos + 20 > bytes.len() {
                return Err(DbError::corrupt("tree entry truncated"));
            }
            let mut id = [0u8; 20];
            id.copy_from_slice(&bytes[pos..pos + 20]);
            pos += 20;
            entries.push((name, Sha1(id)));
        }
        Ok(Tree { entries })
    }

    /// Finds an entry by name (entries are kept sorted).
    pub fn get(&self, name: &str) -> Option<Sha1> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.entries[i].1)
    }
}

/// A parsed commit object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commit {
    /// Root tree of the snapshot.
    pub tree: Sha1,
    /// Parent commits (0 for the root, 2 for merges).
    pub parents: Vec<Sha1>,
    /// Free-form message.
    pub message: String,
}

impl Commit {
    /// Serializes in a git-like text format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut s = format!("tree {}\n", self.tree.to_hex());
        for p in &self.parents {
            s.push_str(&format!("parent {}\n", p.to_hex()));
        }
        s.push('\n');
        s.push_str(&self.message);
        s.into_bytes()
    }

    /// Parses a commit payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Commit> {
        let text = std::str::from_utf8(bytes).map_err(|_| DbError::corrupt("commit not UTF-8"))?;
        let mut tree = None;
        let mut parents = Vec::new();
        let mut lines = text.lines();
        for line in lines.by_ref() {
            if line.is_empty() {
                break;
            }
            if let Some(hex) = line.strip_prefix("tree ") {
                tree = Sha1::from_hex(hex);
            } else if let Some(hex) = line.strip_prefix("parent ") {
                parents.push(Sha1::from_hex(hex).ok_or_else(|| DbError::corrupt("bad parent id"))?);
            }
        }
        let message: String = lines.collect::<Vec<_>>().join("\n");
        Ok(Commit {
            tree: tree.ok_or_else(|| DbError::corrupt("commit missing tree"))?,
            parents,
            message,
        })
    }
}

/// The loose-object store rooted at `<repo>/objects`.
pub struct ObjectStore {
    root: PathBuf,
}

impl ObjectStore {
    /// Creates/opens the store under `root`.
    pub fn new(root: impl AsRef<Path>) -> Result<ObjectStore> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root).ctx("creating object store")?;
        Ok(ObjectStore { root })
    }

    fn path_of(&self, id: Sha1) -> PathBuf {
        let hex = id.to_hex();
        self.root.join(&hex[..2]).join(&hex[2..])
    }

    /// Computes the id an object would get without writing it.
    pub fn hash(kind: ObjKind, payload: &[u8]) -> Sha1 {
        let mut h = sha1::Hasher::new();
        h.update(format!("{} {}\0", kind.tag(), payload.len()).as_bytes());
        h.update(payload);
        h.finalize()
    }

    /// Writes an object (idempotent), returning its id. The serialized
    /// form is LZSS-compressed on disk, like git's zlib deflate.
    pub fn write(&self, kind: ObjKind, payload: &[u8]) -> Result<Sha1> {
        let id = Self::hash(kind, payload);
        let path = self.path_of(id);
        if path.exists() {
            return Ok(id); // content-addressed: already present
        }
        let mut full = Vec::with_capacity(payload.len() + 16);
        full.extend_from_slice(format!("{} {}\0", kind.tag(), payload.len()).as_bytes());
        full.extend_from_slice(payload);
        let compressed = compress::compress(&full);
        fs::create_dir_all(path.parent().unwrap()).ctx("creating object fan-out dir")?;
        fs::write(&path, compressed).ctx("writing loose object")?;
        Ok(id)
    }

    /// Reads an object, returning its kind and payload.
    pub fn read(&self, id: Sha1) -> Result<(ObjKind, Vec<u8>)> {
        let path = self.path_of(id);
        let compressed = fs::read(&path)
            .map_err(|e| DbError::io(format!("reading object {}", id.to_hex()), e))?;
        let full = compress::decompress(&compressed)?;
        Self::parse(&full)
    }

    /// Parses the serialized `<type> <len>\0<payload>` form.
    pub fn parse(full: &[u8]) -> Result<(ObjKind, Vec<u8>)> {
        let nul = full
            .iter()
            .position(|&b| b == 0)
            .ok_or_else(|| DbError::corrupt("object header missing NUL"))?;
        let header =
            std::str::from_utf8(&full[..nul]).map_err(|_| DbError::corrupt("object header"))?;
        let (tag, len) = header
            .split_once(' ')
            .ok_or_else(|| DbError::corrupt("object header shape"))?;
        let kind = ObjKind::from_tag(tag).ok_or_else(|| DbError::corrupt("unknown object kind"))?;
        let len: usize = len
            .parse()
            .map_err(|_| DbError::corrupt("object length not a number"))?;
        let payload = full[nul + 1..].to_vec();
        if payload.len() != len {
            return Err(DbError::corrupt("object length mismatch"));
        }
        Ok((kind, payload))
    }

    /// Whether an object exists as a loose object.
    pub fn contains(&self, id: Sha1) -> bool {
        self.path_of(id).exists()
    }

    /// Removes a loose object (after repack migrates it into a pack).
    pub fn remove(&self, id: Sha1) -> Result<()> {
        fs::remove_file(self.path_of(id)).ctx("removing loose object")
    }

    /// Lists all loose object ids.
    pub fn list(&self) -> Result<Vec<Sha1>> {
        let mut out = Vec::new();
        for fan in fs::read_dir(&self.root).ctx("listing object store")? {
            let fan = fan.ctx("listing object store")?;
            if !fan.file_type().ctx("stat fan-out")?.is_dir() {
                continue;
            }
            let prefix = fan.file_name().to_string_lossy().to_string();
            for obj in fs::read_dir(fan.path()).ctx("listing fan-out")? {
                let obj = obj.ctx("listing fan-out")?;
                let rest = obj.file_name().to_string_lossy().to_string();
                if let Some(id) = Sha1::from_hex(&format!("{prefix}{rest}")) {
                    out.push(id);
                }
            }
        }
        Ok(out)
    }

    /// Total bytes of loose objects on disk.
    pub fn disk_size(&self) -> u64 {
        fn dir_size(path: &Path) -> u64 {
            let Ok(entries) = fs::read_dir(path) else {
                return 0;
            };
            entries
                .flatten()
                .map(|e| {
                    let p = e.path();
                    if p.is_dir() {
                        dir_size(&p)
                    } else {
                        e.metadata().map(|m| m.len()).unwrap_or(0)
                    }
                })
                .sum()
        }
        dir_size(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (tempfile::TempDir, ObjectStore) {
        let dir = tempfile::tempdir().unwrap();
        let s = ObjectStore::new(dir.path().join("objects")).unwrap();
        (dir, s)
    }

    #[test]
    fn blob_roundtrip() {
        let (_d, s) = store();
        let id = s.write(ObjKind::Blob, b"hello world").unwrap();
        let (kind, payload) = s.read(id).unwrap();
        assert_eq!(kind, ObjKind::Blob);
        assert_eq!(payload, b"hello world");
    }

    #[test]
    fn write_is_idempotent_and_content_addressed() {
        let (_d, s) = store();
        let a = s.write(ObjKind::Blob, b"same").unwrap();
        let b = s.write(ObjKind::Blob, b"same").unwrap();
        assert_eq!(a, b);
        assert_eq!(s.list().unwrap().len(), 1);
        let c = s.write(ObjKind::Blob, b"different").unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn kind_is_part_of_identity() {
        let (_d, s) = store();
        let blob = s.write(ObjKind::Blob, b"x").unwrap();
        let tree = s.write(ObjKind::Tree, b"x").unwrap();
        assert_ne!(blob, tree);
    }

    #[test]
    fn tree_roundtrip() {
        let (_d, s) = store();
        let b1 = s.write(ObjKind::Blob, b"one").unwrap();
        let b2 = s.write(ObjKind::Blob, b"two").unwrap();
        let tree = Tree {
            entries: vec![("a.csv".into(), b1), ("b.csv".into(), b2)],
        };
        let id = s.write(ObjKind::Tree, &tree.to_bytes()).unwrap();
        let (kind, payload) = s.read(id).unwrap();
        assert_eq!(kind, ObjKind::Tree);
        let back = Tree::from_bytes(&payload).unwrap();
        assert_eq!(back, tree);
        assert_eq!(back.get("a.csv"), Some(b1));
        assert_eq!(back.get("zzz"), None);
    }

    #[test]
    fn commit_roundtrip() {
        let (_d, s) = store();
        let tree_id = s.write(ObjKind::Tree, &Tree::default().to_bytes()).unwrap();
        let c = Commit {
            tree: tree_id,
            parents: vec![ObjectStore::hash(ObjKind::Blob, b"p1")],
            message: "load batch 1\nsecond line".to_string(),
        };
        let id = s.write(ObjKind::Commit, &c.to_bytes()).unwrap();
        let (kind, payload) = s.read(id).unwrap();
        assert_eq!(kind, ObjKind::Commit);
        assert_eq!(Commit::from_bytes(&payload).unwrap(), c);
    }

    #[test]
    fn missing_object_errors() {
        let (_d, s) = store();
        assert!(s.read(sha1::digest(b"missing")).is_err());
        assert!(!s.contains(sha1::digest(b"missing")));
    }

    #[test]
    fn list_and_remove() {
        let (_d, s) = store();
        let a = s.write(ObjKind::Blob, b"a").unwrap();
        let b = s.write(ObjKind::Blob, b"b").unwrap();
        let mut ids = s.list().unwrap();
        ids.sort();
        let mut expect = vec![a, b];
        expect.sort();
        assert_eq!(ids, expect);
        s.remove(a).unwrap();
        assert_eq!(s.list().unwrap(), vec![b]);
        assert!(s.disk_size() > 0);
    }
}
