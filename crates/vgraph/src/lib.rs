//! The version graph.
//!
//! "The version-level provenance ... is maintained as a directed acyclic
//! graph, called a version graph" (§2.2.2). Every storage engine "depend\[s\]
//! on a version graph recording the relationships between the versions
//! being available in memory in all approaches (this graph is updated and
//! persisted on disk as a part of each branch or commit operation)" (§3).
//!
//! The graph tracks:
//! * **commits** — immutable point-in-time versions, with one or two parent
//!   edges (two for merges);
//! * **branches** — named working copies; each active branch has a *head*
//!   commit, "the (chronologically) latest version in a branch" (§2.2.2);
//! * **depths** — longest-path-from-root lengths, precomputed so lowest
//!   common ancestor queries (the anchor of every merge and three-way diff)
//!   are a heap walk rather than a full traversal.

use std::path::Path;

use decibel_common::error::{DbError, IoResultExt, Result};
use decibel_common::hash::{FxHashMap, FxHashSet};
use decibel_common::ids::{BranchId, CommitId};
use decibel_common::varint;

/// Metadata of one commit (version).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitMeta {
    /// The commit's id (dense: also its index in the graph).
    pub id: CommitId,
    /// Parent commits: one for ordinary commits, two for merges (first
    /// parent = the branch the commit landed on).
    pub parents: Vec<CommitId>,
    /// The branch this commit was made on.
    pub branch: BranchId,
    /// Longest path from the init commit (for LCA).
    pub depth: u32,
}

/// Metadata of one branch (working copy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchMeta {
    /// The branch's id (dense: also its index in the graph).
    pub id: BranchId,
    /// Human-readable name, unique among branches.
    pub name: String,
    /// The branch's head commit.
    pub head: CommitId,
    /// The commit this branch was created from.
    pub forked_at: CommitId,
    /// False once the branch is retired (the science workload stops
    /// updating branches after a fixed lifetime, §4.1).
    pub active: bool,
}

/// The DAG of commits and branches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionGraph {
    commits: Vec<CommitMeta>,
    branches: Vec<BranchMeta>,
    by_name: FxHashMap<String, BranchId>,
}

impl VersionGraph {
    /// Creates a graph holding only the `init` transaction's commit on a
    /// `master` branch (§2.2.3 Init).
    pub fn init() -> VersionGraph {
        let mut g = VersionGraph::default();
        g.commits.push(CommitMeta {
            id: CommitId::INIT,
            parents: Vec::new(),
            branch: BranchId::MASTER,
            depth: 0,
        });
        g.branches.push(BranchMeta {
            id: BranchId::MASTER,
            name: "master".to_string(),
            head: CommitId::INIT,
            forked_at: CommitId::INIT,
            active: true,
        });
        g.by_name.insert("master".to_string(), BranchId::MASTER);
        g
    }

    /// Number of commits.
    pub fn num_commits(&self) -> u64 {
        self.commits.len() as u64
    }

    /// Number of branches (active and retired).
    pub fn num_branches(&self) -> usize {
        self.branches.len()
    }

    /// Looks up a commit.
    pub fn commit(&self, id: CommitId) -> Result<&CommitMeta> {
        self.commits
            .get(id.index())
            .ok_or(DbError::UnknownCommit(id.raw()))
    }

    /// Looks up a branch by id.
    pub fn branch(&self, id: BranchId) -> Result<&BranchMeta> {
        self.branches
            .get(id.index())
            .ok_or_else(|| DbError::UnknownBranch(id.to_string()))
    }

    /// Looks up a branch by name.
    pub fn branch_by_name(&self, name: &str) -> Result<&BranchMeta> {
        let id = self
            .by_name
            .get(name)
            .ok_or_else(|| DbError::UnknownBranch(name.to_string()))?;
        self.branch(*id)
    }

    /// The head commit of `branch`.
    pub fn head(&self, branch: BranchId) -> Result<CommitId> {
        Ok(self.branch(branch)?.head)
    }

    /// True if `commit` is the head of the branch it belongs to — the
    /// benchmark's `HEAD()` predicate (Table 1, Query 4).
    pub fn is_head(&self, commit: CommitId) -> bool {
        self.commit(commit)
            .ok()
            .and_then(|c| self.branches.get(c.branch.index()))
            .is_some_and(|b| b.head == commit)
    }

    /// All `(branch, head commit)` pairs, optionally restricted to active
    /// branches.
    pub fn heads(&self, active_only: bool) -> Vec<(BranchId, CommitId)> {
        self.branches
            .iter()
            .filter(|b| !active_only || b.active)
            .map(|b| (b.id, b.head))
            .collect()
    }

    /// Iterates branch metadata.
    pub fn iter_branches(&self) -> impl Iterator<Item = &BranchMeta> {
        self.branches.iter()
    }

    /// Records a new commit on `branch` (which must exist); `extra_parents`
    /// adds merge edges. Returns the commit id and advances the head.
    pub fn add_commit(&mut self, branch: BranchId, extra_parents: &[CommitId]) -> Result<CommitId> {
        let head = self.head(branch)?;
        let mut parents = Vec::with_capacity(1 + extra_parents.len());
        parents.push(head);
        parents.extend_from_slice(extra_parents);
        for p in &parents {
            self.commit(*p)?;
        }
        let depth = parents
            .iter()
            .map(|p| self.commits[p.index()].depth)
            .max()
            .unwrap_or(0)
            + 1;
        let id = CommitId(self.commits.len() as u64);
        self.commits.push(CommitMeta {
            id,
            parents,
            branch,
            depth,
        });
        self.branches[branch.index()].head = id;
        Ok(id)
    }

    /// Fails if `name` is already taken. Engines call this before their
    /// first mutation, so a duplicate-name `create_branch` fails before the
    /// implicit parent commit — not after, which would leave a dangling
    /// commit behind the error.
    pub fn check_name_free(&self, name: &str) -> Result<()> {
        if self.by_name.contains_key(name) {
            return Err(DbError::Invalid(format!(
                "branch name {name:?} already exists"
            )));
        }
        Ok(())
    }

    /// Creates a branch named `name` rooted at `from` ("a new branch can be
    /// made from any commit", §2.2.3). The new branch's head is the fork
    /// commit itself until its first commit.
    pub fn create_branch(&mut self, name: &str, from: CommitId) -> Result<BranchId> {
        self.commit(from)?;
        self.check_name_free(name)?;
        let id = BranchId(self.branches.len() as u32);
        self.branches.push(BranchMeta {
            id,
            name: name.to_string(),
            head: from,
            forked_at: from,
            active: true,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Marks a branch inactive (no further updates expected).
    pub fn retire_branch(&mut self, branch: BranchId) -> Result<()> {
        self.branches
            .get_mut(branch.index())
            .ok_or_else(|| DbError::UnknownBranch(branch.to_string()))?
            .active = false;
        Ok(())
    }

    /// The set of commits reachable from `from` (inclusive).
    pub fn ancestors(&self, from: CommitId) -> FxHashSet<CommitId> {
        let mut seen = FxHashSet::default();
        let mut stack = vec![from];
        while let Some(c) = stack.pop() {
            if seen.insert(c) {
                stack.extend(self.commits[c.index()].parents.iter().copied());
            }
        }
        seen
    }

    /// The lowest common ancestor of two commits: the deepest commit
    /// reachable from both. Merges anchor their three-way conflict
    /// detection here ("the lca commit is restored", §3.2).
    pub fn lca(&self, a: CommitId, b: CommitId) -> Result<CommitId> {
        self.commit(a)?;
        self.commit(b)?;
        let ancestors_a = self.ancestors(a);
        // Walk from b in decreasing depth; the first commit in A's ancestor
        // set is the deepest common ancestor.
        let mut heap = std::collections::BinaryHeap::new();
        let mut pushed = FxHashSet::default();
        heap.push((self.commits[b.index()].depth, b));
        pushed.insert(b);
        while let Some((_, c)) = heap.pop() {
            if ancestors_a.contains(&c) {
                return Ok(c);
            }
            for &p in &self.commits[c.index()].parents {
                if pushed.insert(p) {
                    heap.push((self.commits[p.index()].depth, p));
                }
            }
        }
        // Unreachable in a graph with a single init root.
        Err(DbError::corrupt("commits share no common ancestor"))
    }

    /// The linear history of commits from `from` back to the init commit,
    /// following first parents only (a branch's "lineage or ancestry",
    /// §2.2.3), most recent first.
    pub fn first_parent_chain(&self, from: CommitId) -> Vec<CommitId> {
        let mut chain = vec![from];
        let mut cur = from;
        while let Some(&p) = self.commits[cur.index()].parents.first() {
            chain.push(p);
            cur = p;
        }
        chain
    }

    /// Topological order over all commits (parents before children).
    /// Commit ids are assigned in creation order, so the identity order is
    /// already topological; this is kept explicit for readers and tests.
    pub fn topo_order(&self) -> Vec<CommitId> {
        self.commits.iter().map(|c| c.id).collect()
    }

    // ------------------------------------------------------------------
    // Persistence ("this graph is updated and persisted on disk as a part
    // of each branch or commit operation", §3).
    // ------------------------------------------------------------------

    /// Serializes the graph to a byte buffer (varint-based binary format).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"DVG1");
        varint::write_u64(&mut out, self.commits.len() as u64);
        for c in &self.commits {
            varint::write_u64(&mut out, c.branch.raw() as u64);
            varint::write_u64(&mut out, c.depth as u64);
            varint::write_u64(&mut out, c.parents.len() as u64);
            for p in &c.parents {
                varint::write_u64(&mut out, p.raw());
            }
        }
        varint::write_u64(&mut out, self.branches.len() as u64);
        for b in &self.branches {
            varint::write_u64(&mut out, b.name.len() as u64);
            out.extend_from_slice(b.name.as_bytes());
            varint::write_u64(&mut out, b.head.raw());
            varint::write_u64(&mut out, b.forked_at.raw());
            out.push(b.active as u8);
        }
        out
    }

    /// Deserializes a graph produced by [`VersionGraph::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<VersionGraph> {
        if bytes.len() < 4 || &bytes[..4] != b"DVG1" {
            return Err(DbError::corrupt("bad version graph magic"));
        }
        let mut pos = 4usize;
        let n_commits = varint::read_u64(bytes, &mut pos)? as usize;
        let mut commits = Vec::with_capacity(n_commits);
        for i in 0..n_commits {
            let branch = BranchId(varint::read_u64(bytes, &mut pos)? as u32);
            let depth = varint::read_u64(bytes, &mut pos)? as u32;
            let n_parents = varint::read_u64(bytes, &mut pos)? as usize;
            let mut parents = Vec::with_capacity(n_parents);
            for _ in 0..n_parents {
                parents.push(CommitId(varint::read_u64(bytes, &mut pos)?));
            }
            commits.push(CommitMeta {
                id: CommitId(i as u64),
                parents,
                branch,
                depth,
            });
        }
        let n_branches = varint::read_u64(bytes, &mut pos)? as usize;
        let mut branches = Vec::with_capacity(n_branches);
        let mut by_name = FxHashMap::default();
        for i in 0..n_branches {
            let name_len = varint::read_u64(bytes, &mut pos)? as usize;
            if pos + name_len > bytes.len() {
                return Err(DbError::corrupt("version graph truncated in branch name"));
            }
            let name = String::from_utf8(bytes[pos..pos + name_len].to_vec())
                .map_err(|_| DbError::corrupt("branch name is not UTF-8"))?;
            pos += name_len;
            let head = CommitId(varint::read_u64(bytes, &mut pos)?);
            let forked_at = CommitId(varint::read_u64(bytes, &mut pos)?);
            let active = *bytes
                .get(pos)
                .ok_or_else(|| DbError::corrupt("version graph truncated"))?
                != 0;
            pos += 1;
            by_name.insert(name.clone(), BranchId(i as u32));
            branches.push(BranchMeta {
                id: BranchId(i as u32),
                name,
                head,
                forked_at,
                active,
            });
        }
        Ok(VersionGraph {
            commits,
            branches,
            by_name,
        })
    }

    /// Persists the graph to `path` (atomic: write temp file then rename).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        self.save_with(path, false)
    }

    /// Persists the graph, optionally fsyncing the file before the rename
    /// and the directory after it — the durable variant checkpoints use
    /// (an atomic rename is only crash-safe once both are synced).
    pub fn save_with(&self, path: impl AsRef<Path>, fsync: bool) -> Result<()> {
        self.save_in(&decibel_common::env::StdEnv, path, fsync)
    }

    /// [`VersionGraph::save_with`] through an explicit
    /// [`DiskEnv`](decibel_common::env::DiskEnv), so fault injection can
    /// interpose on the temp-write/fsync/rename sequence.
    pub fn save_in(
        &self,
        env: &dyn decibel_common::env::DiskEnv,
        path: impl AsRef<Path>,
        fsync: bool,
    ) -> Result<()> {
        decibel_common::fsio::write_file_durably_in(env, path.as_ref(), &self.to_bytes(), fsync)
    }

    /// Loads a graph persisted by [`VersionGraph::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<VersionGraph> {
        Self::load_in(&decibel_common::env::StdEnv, path)
    }

    /// [`VersionGraph::load`] through an explicit
    /// [`DiskEnv`](decibel_common::env::DiskEnv).
    pub fn load_in(
        env: &dyn decibel_common::env::DiskEnv,
        path: impl AsRef<Path>,
    ) -> Result<VersionGraph> {
        let bytes = env.read(path.as_ref()).ctx("reading version graph")?;
        VersionGraph::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Figure 1(b) shape:
    /// master: A - B - D;  branch2 forks at A: C - E;  F merges D and E.
    fn figure_1b() -> (VersionGraph, [CommitId; 6], BranchId) {
        let mut g = VersionGraph::init();
        let a = CommitId::INIT;
        let b = g.add_commit(BranchId::MASTER, &[]).unwrap();
        let br2 = g.create_branch("branch2", a).unwrap();
        let c = g.add_commit(br2, &[]).unwrap();
        let d = g.add_commit(BranchId::MASTER, &[]).unwrap();
        let e = g.add_commit(br2, &[]).unwrap();
        let f = g.add_commit(BranchId::MASTER, &[e]).unwrap(); // merge into master
        (g, [a, b, c, d, e, f], br2)
    }

    #[test]
    fn init_graph_shape() {
        let g = VersionGraph::init();
        assert_eq!(g.num_commits(), 1);
        assert_eq!(g.num_branches(), 1);
        assert_eq!(g.head(BranchId::MASTER).unwrap(), CommitId::INIT);
        assert!(g.is_head(CommitId::INIT));
        assert_eq!(g.branch_by_name("master").unwrap().id, BranchId::MASTER);
    }

    #[test]
    fn commits_advance_heads() {
        let mut g = VersionGraph::init();
        let c1 = g.add_commit(BranchId::MASTER, &[]).unwrap();
        assert_eq!(g.head(BranchId::MASTER).unwrap(), c1);
        assert!(g.is_head(c1));
        assert!(!g.is_head(CommitId::INIT));
    }

    #[test]
    fn branch_from_historical_commit() {
        let mut g = VersionGraph::init();
        let c1 = g.add_commit(BranchId::MASTER, &[]).unwrap();
        let _c2 = g.add_commit(BranchId::MASTER, &[]).unwrap();
        let b = g.create_branch("old", c1).unwrap();
        assert_eq!(g.head(b).unwrap(), c1);
        let c3 = g.add_commit(b, &[]).unwrap();
        assert_eq!(g.commit(c3).unwrap().parents, vec![c1]);
    }

    #[test]
    fn duplicate_branch_name_rejected() {
        let mut g = VersionGraph::init();
        g.create_branch("dev", CommitId::INIT).unwrap();
        assert!(g.create_branch("dev", CommitId::INIT).is_err());
    }

    #[test]
    fn merge_commit_has_two_parents() {
        let (g, [_, _, _, d, e, f], _) = figure_1b();
        let meta = g.commit(f).unwrap();
        assert_eq!(meta.parents, vec![d, e]);
        assert!(g.is_head(f));
    }

    #[test]
    fn lca_linear_chain() {
        let mut g = VersionGraph::init();
        let c1 = g.add_commit(BranchId::MASTER, &[]).unwrap();
        let c2 = g.add_commit(BranchId::MASTER, &[]).unwrap();
        assert_eq!(g.lca(c1, c2).unwrap(), c1);
        assert_eq!(g.lca(c2, c1).unwrap(), c1);
        assert_eq!(g.lca(c2, c2).unwrap(), c2);
    }

    #[test]
    fn lca_across_fork() {
        let (g, [a, b, c, d, e, _], _) = figure_1b();
        assert_eq!(g.lca(d, e).unwrap(), a, "D and E fork at A");
        assert_eq!(g.lca(b, c).unwrap(), a);
    }

    #[test]
    fn lca_after_merge_is_merged_commit() {
        let (mut g, [_, _, _, _, e, f], br2) = figure_1b();
        // New work on both branches after the merge: LCA must be E (the
        // deepest common ancestor via the merge edge), not A.
        let e2 = g.add_commit(br2, &[]).unwrap();
        let f2 = g.add_commit(BranchId::MASTER, &[]).unwrap();
        let _ = f;
        assert_eq!(g.lca(f2, e2).unwrap(), e);
    }

    #[test]
    fn ancestors_include_merge_parents() {
        let (g, [a, b, c, d, e, f], _) = figure_1b();
        let anc = g.ancestors(f);
        for c_ in [a, b, c, d, e, f] {
            assert!(anc.contains(&c_));
        }
    }

    #[test]
    fn first_parent_chain_stays_on_branch() {
        let (g, [a, b, d0, _, _, f], _) = figure_1b();
        // chain from F: F, D, B, A following first parents.
        let chain = g.first_parent_chain(f);
        let _ = d0;
        assert_eq!(chain.first(), Some(&f));
        assert_eq!(chain.last(), Some(&a));
        assert!(chain.contains(&b));
        assert_eq!(chain.len(), 4);
    }

    #[test]
    fn heads_listing_and_retire() {
        let (mut g, _, br2) = figure_1b();
        assert_eq!(g.heads(true).len(), 2);
        g.retire_branch(br2).unwrap();
        assert_eq!(g.heads(true).len(), 1);
        assert_eq!(g.heads(false).len(), 2);
    }

    #[test]
    fn unknown_lookups_error() {
        let g = VersionGraph::init();
        assert!(g.commit(CommitId(99)).is_err());
        assert!(g.branch(BranchId(99)).is_err());
        assert!(g.branch_by_name("nope").is_err());
    }

    #[test]
    fn persistence_roundtrip() {
        let (g, _, _) = figure_1b();
        let bytes = g.to_bytes();
        let back = VersionGraph::from_bytes(&bytes).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn save_load_roundtrip() {
        let (g, _, _) = figure_1b();
        let dir = tempfile::tempdir().unwrap();
        let p = dir.path().join("graph");
        g.save(&p).unwrap();
        assert_eq!(VersionGraph::load(&p).unwrap(), g);
    }

    #[test]
    fn corrupt_bytes_rejected() {
        assert!(VersionGraph::from_bytes(b"nope").is_err());
        let (g, _, _) = figure_1b();
        let mut bytes = g.to_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(VersionGraph::from_bytes(&bytes).is_err());
    }

    #[test]
    fn topo_order_parents_first() {
        let (g, _, _) = figure_1b();
        let order = g.topo_order();
        let pos: FxHashMap<CommitId, usize> =
            order.iter().enumerate().map(|(i, c)| (*c, i)).collect();
        for c in order {
            for p in &g.commit(c).unwrap().parents {
                assert!(pos[p] < pos[&c]);
            }
        }
    }
}
