//! Zero-dependency metrics for the Decibel reproduction: lock-free
//! counters, gauges, and log₂-bucketed latency histograms behind a
//! [`Registry`] handle, with cheap [`Span`] timers and a structured,
//! serializable, diffable [`Snapshot`] API.
//!
//! Decibel's evaluation (§6 of the paper) hinges on understanding *where*
//! time and space go per versioning strategy — page fetches, commit
//! fsyncs, scan selectivity. This crate is the measurement substrate:
//! every hot layer registers its instruments once at construction and
//! updates them with relaxed atomic operations (one `fetch_add` per
//! event; never a lock, never an allocation), so instrumentation stays in
//! the noise even on microsecond-scale paths.
//!
//! # Design
//!
//! * **No globals.** A [`Registry`] is a cheap cloneable handle
//!   (`Arc`-backed); the database owns one, the server owns a second.
//!   Components receive a registry (usually via their config) and
//!   register instruments under a `(family, name)` key. Registering the
//!   same key twice rebinds to the *same* underlying cell, so
//!   independently constructed components (e.g. four engine heaps over
//!   one buffer pool) share one metric.
//! * **Detached instruments.** Every instrument type has a
//!   [`Counter::detached`]-style constructor producing a cell bound to no
//!   registry — components can always hold a real instrument and update
//!   it unconditionally, with no `Option` in the hot path. Construction
//!   chooses whether the numbers are observable.
//! * **Histograms are log₂-bucketed.** Bucket *i* counts values whose bit
//!   length is *i* (bucket 0 holds zeros), so 64 fixed buckets cover the
//!   full `u64` range with ≤ 2× relative error, three `fetch_add`s per
//!   observation, and no configuration. Values are conventionally
//!   microseconds.
//! * **Snapshots are torn-read-safe.** [`Registry::snapshot`] reads every
//!   cell with relaxed loads while writers keep writing: it never blocks
//!   a hot path and never panics; each value is a plausible recent value
//!   of its cell (cross-metric invariants like `hits + misses ==
//!   lookups` hold exactly only when the system is quiescent).
//!
//! # Example
//!
//! ```
//! use decibel_obs::{family, Registry};
//!
//! let registry = Registry::new();
//! let hits = registry.counter(family::POOL, "hits");
//! let latency = registry.histogram(family::COMMIT, "commit_us");
//!
//! hits.inc();
//! let span = latency.start();
//! // ... critical section ...
//! span.finish();
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter(family::POOL, "hits"), 1);
//! let bytes = snap.encode();
//! let back = decibel_obs::Snapshot::decode(&bytes).unwrap();
//! assert_eq!(back, snap);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The canonical metric families. Every instrument in the workspace
/// registers under one of these so a [`Snapshot`] partitions cleanly by
/// subsystem.
pub mod family {
    /// Buffer pool and heap-file page IO (pagestore).
    pub const POOL: &str = "pool";
    /// Write-ahead log: group commit, fsyncs, poison events.
    pub const WAL: &str = "wal";
    /// The commit path: latency, lock waits, concurrency.
    pub const COMMIT: &str = "commit";
    /// The scan/query path: rows, plans, selectivity.
    pub const SCAN: &str = "scan";
    /// Checkpoint and recovery.
    pub const CHECKPOINT: &str = "checkpoint";
    /// The network server event loop.
    pub const SERVER: &str = "server";

    /// All six families, in snapshot order.
    pub const ALL: [&str; 6] = [CHECKPOINT, COMMIT, POOL, SCAN, SERVER, WAL];
}

// ---------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------

/// A monotonically increasing event count. Cloning shares the cell.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter bound to no registry: updates are real (shared across
    /// clones) but invisible to any snapshot.
    pub fn detached() -> Counter {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct GaugeCell {
    current: AtomicU64,
    max: AtomicU64,
}

/// A current-level instrument (queue depth, in-flight operations) that
/// also tracks its high-water mark. Cloning shares the cell.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<GaugeCell>,
}

impl Gauge {
    /// A gauge bound to no registry.
    pub fn detached() -> Gauge {
        Gauge {
            cell: Arc::new(GaugeCell {
                current: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Raises the level by one, updating the high-water mark. Returns the
    /// new level.
    #[inline]
    pub fn inc(&self) -> u64 {
        let v = self.cell.current.fetch_add(1, Ordering::Relaxed) + 1;
        self.cell.max.fetch_max(v, Ordering::Relaxed);
        v
    }

    /// Lowers the level by one (saturating: a spurious extra `dec` clamps
    /// at zero instead of wrapping).
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .cell
            .current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Sets the level outright, updating the high-water mark.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.current.store(v, Ordering::Relaxed);
        self.cell.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records `v` into the high-water mark without touching the level
    /// (for sampled maxima like per-pump queue depth).
    #[inline]
    pub fn observe_max(&self, v: u64) {
        self.cell.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The current level.
    pub fn value(&self) -> u64 {
        self.cell.current.load(Ordering::Relaxed)
    }

    /// The high-water mark.
    pub fn max(&self) -> u64 {
        self.cell.max.load(Ordering::Relaxed)
    }

    /// RAII level: `inc` now, `dec` when the guard drops.
    pub fn enter(&self) -> GaugeGuard {
        self.inc();
        GaugeGuard {
            gauge: self.clone(),
        }
    }
}

/// Guard returned by [`Gauge::enter`]; lowers the gauge on drop.
pub struct GaugeGuard {
    gauge: Gauge,
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge.dec();
    }
}

/// Number of histogram buckets: bucket `i` counts values of bit length
/// `i`, so 64 buckets (+ the zero bucket) cover all of `u64`.
pub const HIST_BUCKETS: usize = 65;

struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log₂-bucketed histogram (values conventionally microseconds).
/// Cloning shares the cell.
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistCell>,
}

/// The bucket a value lands in: its bit length (0 for 0).
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold (its inclusive upper bound).
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A histogram bound to no registry.
    pub fn detached() -> Histogram {
        Histogram {
            cell: Arc::new(HistCell {
                buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.cell.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.cell.count.fetch_add(1, Ordering::Relaxed);
        self.cell.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Starts a [`Span`] that records its elapsed microseconds into this
    /// histogram when finished (or dropped).
    #[inline]
    pub fn start(&self) -> Span {
        Span {
            hist: self.clone(),
            start: Instant::now(),
            armed: true,
        }
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }
}

/// A cheap RAII timer over a [`Histogram`]: one `Instant::now()` at each
/// end, three relaxed `fetch_add`s to record.
pub struct Span {
    hist: Histogram,
    start: Instant,
    armed: bool,
}

impl Span {
    /// Time elapsed since the span started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span now, recording and returning its duration.
    pub fn finish(mut self) -> Duration {
        self.armed = false;
        let d = self.start.elapsed();
        self.hist.record_duration(d);
        d
    }

    /// Ends the span without recording (for cancelled operations).
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record_duration(self.start.elapsed());
        }
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A handle to a set of registered instruments. Cloning shares the set;
/// there are no global registries — the database owns one, the server
/// owns another, and tests make their own.
///
/// Registration takes a lock (it happens once, at component
/// construction); instrument updates never do.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<(String, String), Slot>>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.inner.lock().unwrap().len())
            .finish()
    }
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or rebinds to) the counter `family/name`.
    ///
    /// # Panics
    ///
    /// If the key is already registered as a different instrument kind.
    pub fn counter(&self, family: &str, name: &str) -> Counter {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry((family.to_string(), name.to_string()))
            .or_insert_with(|| Slot::Counter(Counter::detached()))
        {
            Slot::Counter(c) => c.clone(),
            _ => panic!("metric {family}/{name} already registered as a non-counter"),
        }
    }

    /// Registers (or rebinds to) the gauge `family/name`.
    ///
    /// # Panics
    ///
    /// If the key is already registered as a different instrument kind.
    pub fn gauge(&self, family: &str, name: &str) -> Gauge {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry((family.to_string(), name.to_string()))
            .or_insert_with(|| Slot::Gauge(Gauge::detached()))
        {
            Slot::Gauge(g) => g.clone(),
            _ => panic!("metric {family}/{name} already registered as a non-gauge"),
        }
    }

    /// Registers (or rebinds to) the histogram `family/name`.
    ///
    /// # Panics
    ///
    /// If the key is already registered as a different instrument kind.
    pub fn histogram(&self, family: &str, name: &str) -> Histogram {
        let mut map = self.inner.lock().unwrap();
        match map
            .entry((family.to_string(), name.to_string()))
            .or_insert_with(|| Slot::Histogram(Histogram::detached()))
        {
            Slot::Histogram(h) => h.clone(),
            _ => panic!("metric {family}/{name} already registered as a non-histogram"),
        }
    }

    /// A point-in-time reading of every registered instrument, sorted by
    /// `(family, name)`. Never blocks instrument updates; see the crate
    /// docs for the torn-read contract.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.lock().unwrap();
        let entries = map
            .iter()
            .map(|((family, name), slot)| Entry {
                family: family.clone(),
                name: name.clone(),
                value: match slot {
                    Slot::Counter(c) => Value::Counter(c.value()),
                    Slot::Gauge(g) => Value::Gauge {
                        current: g.value(),
                        max: g.max(),
                    },
                    Slot::Histogram(h) => {
                        let mut buckets = Vec::new();
                        for (i, b) in h.cell.buckets.iter().enumerate() {
                            let n = b.load(Ordering::Relaxed);
                            if n != 0 {
                                buckets.push((i as u8, n));
                            }
                        }
                        Value::Histogram(HistogramSummary {
                            count: h.cell.count.load(Ordering::Relaxed),
                            sum: h.cell.sum.load(Ordering::Relaxed),
                            buckets,
                        })
                    }
                },
            })
            .collect();
        Snapshot { entries }
    }
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

/// A histogram's state inside a [`Snapshot`]: total count, value sum, and
/// the non-empty log₂ buckets as `(bucket index, count)` pairs.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values (µs for latency histograms).
    pub sum: u64,
    /// Sparse non-empty buckets, ascending by index. Bucket `i` counts
    /// values of bit length `i` (upper bound `2^i - 1`; bucket 0 is
    /// zeros).
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSummary {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`): the inclusive
    /// upper bound of the bucket the quantile falls in.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_bound(i as usize);
            }
        }
        bucket_bound(self.buckets.last().map_or(0, |&(i, _)| i as usize))
    }
}

/// One metric's value inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// A monotone event count.
    Counter(u64),
    /// A level plus its high-water mark.
    Gauge {
        /// Level at snapshot time.
        current: u64,
        /// High-water mark since construction.
        max: u64,
    },
    /// A latency/size distribution.
    Histogram(HistogramSummary),
}

impl Value {
    /// Short kind name ("counter" / "gauge" / "histogram"), used by the
    /// schema artifact and JSON output.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge { .. } => "gauge",
            Value::Histogram(_) => "histogram",
        }
    }
}

/// One `(family, name, value)` row of a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// The metric family (one of [`family::ALL`] in this workspace).
    pub family: String,
    /// The metric name, unique within its family.
    pub name: String,
    /// The observed value.
    pub value: Value,
}

/// Decoding a snapshot from bytes failed (truncated or corrupt input, or
/// a future format version).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Snapshot binary format version (leading byte of [`Snapshot::encode`]).
const SNAPSHOT_VERSION: u8 = 1;

/// A point-in-time reading of a [`Registry`]: an ordered list of
/// [`Entry`] rows. Serializable (own compact binary codec + JSON),
/// diffable, and mergeable — the units benches and the wire protocol
/// traffic in.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Snapshot {
    entries: Vec<Entry>,
}

impl Snapshot {
    /// A snapshot with no entries.
    pub fn empty() -> Snapshot {
        Snapshot::default()
    }

    /// The entries, sorted by `(family, name)`.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Looks up one metric's value.
    pub fn get(&self, family: &str, name: &str) -> Option<&Value> {
        self.entries
            .binary_search_by(|e| (e.family.as_str(), e.name.as_str()).cmp(&(family, name)))
            .ok()
            .map(|i| &self.entries[i].value)
    }

    /// A counter's value (0 when absent or not a counter).
    pub fn counter(&self, family: &str, name: &str) -> u64 {
        match self.get(family, name) {
            Some(Value::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// A gauge's `(current, max)` (zeros when absent or not a gauge).
    pub fn gauge(&self, family: &str, name: &str) -> (u64, u64) {
        match self.get(family, name) {
            Some(Value::Gauge { current, max }) => (*current, *max),
            _ => (0, 0),
        }
    }

    /// A histogram's summary, if present.
    pub fn histogram(&self, family: &str, name: &str) -> Option<&HistogramSummary> {
        match self.get(family, name) {
            Some(Value::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// The distinct families present, in order.
    pub fn families(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for e in &self.entries {
            if out.last() != Some(&e.family.as_str()) {
                out.push(&e.family);
            }
        }
        out
    }

    /// What happened between `baseline` and `self`: counters and
    /// histograms subtract (saturating — a metric reset mid-flight clamps
    /// at zero rather than wrapping); gauges keep `self`'s reading (a
    /// level is not a rate). Entries absent from `baseline` pass through;
    /// entries only in `baseline` are dropped.
    pub fn diff(&self, baseline: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let value = match (&e.value, baseline.get(&e.family, &e.name)) {
                    (Value::Counter(now), Some(Value::Counter(then))) => {
                        Value::Counter(now.saturating_sub(*then))
                    }
                    (Value::Histogram(now), Some(Value::Histogram(then))) => {
                        let mut buckets = Vec::with_capacity(now.buckets.len());
                        for &(i, n) in &now.buckets {
                            let prior = then
                                .buckets
                                .iter()
                                .find(|&&(j, _)| j == i)
                                .map_or(0, |&(_, m)| m);
                            let d = n.saturating_sub(prior);
                            if d != 0 {
                                buckets.push((i, d));
                            }
                        }
                        Value::Histogram(HistogramSummary {
                            count: now.count.saturating_sub(then.count),
                            sum: now.sum.saturating_sub(then.sum),
                            buckets,
                        })
                    }
                    (v, _) => v.clone(),
                };
                Entry {
                    family: e.family.clone(),
                    name: e.name.clone(),
                    value,
                }
            })
            .collect();
        Snapshot { entries }
    }

    /// The union of two snapshots (e.g. a database's and a server's).
    /// On a key collision, counters and histograms add and gauges take
    /// the larger level/mark; in this workspace the two registries use
    /// disjoint families, so collisions are the degenerate case.
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut merged: BTreeMap<(String, String), Value> = BTreeMap::new();
        for e in self.entries.iter().chain(&other.entries) {
            merged
                .entry((e.family.clone(), e.name.clone()))
                .and_modify(|v| *v = combine(v, &e.value))
                .or_insert_with(|| e.value.clone());
        }
        Snapshot {
            entries: merged
                .into_iter()
                .map(|((family, name), value)| Entry {
                    family,
                    name,
                    value,
                })
                .collect(),
        }
    }

    /// Encodes the snapshot into the compact binary form
    /// [`Snapshot::decode`] reads (version byte, then varint-framed
    /// entries). This is what rides inside a wire `OP_STATS` reply.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.entries.len() * 16);
        out.push(SNAPSHOT_VERSION);
        write_varint(&mut out, self.entries.len() as u64);
        for e in &self.entries {
            write_str(&mut out, &e.family);
            write_str(&mut out, &e.name);
            match &e.value {
                Value::Counter(v) => {
                    out.push(0);
                    write_varint(&mut out, *v);
                }
                Value::Gauge { current, max } => {
                    out.push(1);
                    write_varint(&mut out, *current);
                    write_varint(&mut out, *max);
                }
                Value::Histogram(h) => {
                    out.push(2);
                    write_varint(&mut out, h.count);
                    write_varint(&mut out, h.sum);
                    write_varint(&mut out, h.buckets.len() as u64);
                    for &(i, n) in &h.buckets {
                        out.push(i);
                        write_varint(&mut out, n);
                    }
                }
            }
        }
        out
    }

    /// Decodes bytes written by [`Snapshot::encode`].
    pub fn decode(buf: &[u8]) -> Result<Snapshot, DecodeError> {
        let mut pos = 0usize;
        let version = read_byte(buf, &mut pos)?;
        if version != SNAPSHOT_VERSION {
            return Err(DecodeError(format!(
                "unsupported snapshot version {version} (want {SNAPSHOT_VERSION})"
            )));
        }
        let n = read_varint(buf, &mut pos)? as usize;
        if n > buf.len() {
            // Each entry costs several bytes; a count beyond the payload
            // length is corruption, not a big snapshot.
            return Err(DecodeError("entry count exceeds payload".into()));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let family = read_str(buf, &mut pos)?;
            let name = read_str(buf, &mut pos)?;
            let value = match read_byte(buf, &mut pos)? {
                0 => Value::Counter(read_varint(buf, &mut pos)?),
                1 => Value::Gauge {
                    current: read_varint(buf, &mut pos)?,
                    max: read_varint(buf, &mut pos)?,
                },
                2 => {
                    let count = read_varint(buf, &mut pos)?;
                    let sum = read_varint(buf, &mut pos)?;
                    let nb = read_varint(buf, &mut pos)? as usize;
                    if nb > HIST_BUCKETS {
                        return Err(DecodeError("histogram bucket count out of range".into()));
                    }
                    let mut buckets = Vec::with_capacity(nb);
                    for _ in 0..nb {
                        let i = read_byte(buf, &mut pos)?;
                        if i as usize >= HIST_BUCKETS {
                            return Err(DecodeError("histogram bucket index out of range".into()));
                        }
                        buckets.push((i, read_varint(buf, &mut pos)?));
                    }
                    Value::Histogram(HistogramSummary {
                        count,
                        sum,
                        buckets,
                    })
                }
                t => return Err(DecodeError(format!("unknown value tag {t}"))),
            };
            entries.push(Entry {
                family,
                name,
                value,
            });
        }
        // Re-sort: the wire is untrusted and `get` relies on the order.
        entries.sort_by(|a, b| (&a.family, &a.name).cmp(&(&b.family, &b.name)));
        Ok(Snapshot { entries })
    }

    /// Renders the snapshot as a JSON object keyed by family, then
    /// metric name. Counters render as numbers, gauges as
    /// `{"current":..,"max":..}`, histograms as
    /// `{"count":..,"sum_us":..,"p50_us":..,"p99_us":..}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first_family = true;
        let mut i = 0;
        while i < self.entries.len() {
            let fam = &self.entries[i].family;
            if !first_family {
                out.push(',');
            }
            first_family = false;
            out.push_str(&format!("{:?}:{{", fam));
            let mut first = true;
            while i < self.entries.len() && self.entries[i].family == *fam {
                let e = &self.entries[i];
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("{:?}:", e.name));
                match &e.value {
                    Value::Counter(v) => out.push_str(&v.to_string()),
                    Value::Gauge { current, max } => {
                        out.push_str(&format!("{{\"current\":{current},\"max\":{max}}}"))
                    }
                    Value::Histogram(h) => out.push_str(&format!(
                        "{{\"count\":{},\"sum_us\":{},\"p50_us\":{},\"p99_us\":{}}}",
                        h.count,
                        h.sum,
                        h.quantile(0.5),
                        h.quantile(0.99)
                    )),
                }
                i += 1;
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// The snapshot's schema: sorted `(family, name, kind)` triples. The
    /// CI golden-file check asserts this list only ever grows.
    pub fn schema(&self) -> Vec<(String, String, &'static str)> {
        self.entries
            .iter()
            .map(|e| (e.family.clone(), e.name.clone(), e.value.kind()))
            .collect()
    }
}

fn combine(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Counter(x), Value::Counter(y)) => Value::Counter(x.saturating_add(*y)),
        (
            Value::Gauge { current, max },
            Value::Gauge {
                current: c2,
                max: m2,
            },
        ) => Value::Gauge {
            current: (*current).max(*c2),
            max: (*max).max(*m2),
        },
        (Value::Histogram(x), Value::Histogram(y)) => {
            let mut buckets: BTreeMap<u8, u64> = x.buckets.iter().copied().collect();
            for &(i, n) in &y.buckets {
                *buckets.entry(i).or_insert(0) += n;
            }
            Value::Histogram(HistogramSummary {
                count: x.count + y.count,
                sum: x.sum.saturating_add(y.sum),
                buckets: buckets.into_iter().collect(),
            })
        }
        // Mismatched kinds under one key only happen across foreign
        // snapshots; keep the left operand rather than inventing data.
        (a, _) => a.clone(),
    }
}

// ---------------------------------------------------------------------
// Varint codec (LEB128) — the crate is dependency-free by design, so it
// carries its own five lines of varint rather than importing one.
// ---------------------------------------------------------------------

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = read_byte(buf, pos)?;
        if shift >= 64 {
            return Err(DecodeError("varint overflows u64".into()));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn read_byte(buf: &[u8], pos: &mut usize) -> Result<u8, DecodeError> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| DecodeError("truncated input".into()))?;
    *pos += 1;
    Ok(b)
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(buf: &[u8], pos: &mut usize) -> Result<String, DecodeError> {
    let len = read_varint(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| DecodeError("truncated string".into()))?;
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| DecodeError("string is not UTF-8".into()))?
        .to_string();
    *pos = end;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_count() {
        let r = Registry::new();
        let c = r.counter(family::POOL, "hits");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        // Re-registration rebinds to the same cell.
        assert_eq!(r.counter(family::POOL, "hits").value(), 5);

        let g = r.gauge(family::SERVER, "conns_live");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.value(), 1);
        assert_eq!(g.max(), 2);
        {
            let _in = g.enter();
            assert_eq!(g.value(), 2);
        }
        assert_eq!(g.value(), 1);
        // A spurious extra dec saturates at zero instead of wrapping.
        g.dec();
        g.dec();
        assert_eq!(g.value(), 0);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::detached();
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1000), 10);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(10), 1023);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn span_records_on_finish_and_drop() {
        let r = Registry::new();
        let h = r.histogram(family::COMMIT, "commit_us");
        h.start().finish();
        {
            let _span = h.start(); // recorded on drop
        }
        h.start().cancel(); // not recorded
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn snapshot_lookup_diff_and_quantiles() {
        let r = Registry::new();
        let c = r.counter(family::WAL, "fsyncs");
        let h = r.histogram(family::WAL, "flush_us");
        c.add(10);
        for v in [3u64, 5, 100, 900] {
            h.record(v);
        }
        let base = r.snapshot();
        c.add(7);
        h.record(70);
        let now = r.snapshot();
        let d = now.diff(&base);
        assert_eq!(d.counter(family::WAL, "fsyncs"), 7);
        let hist = d.histogram(family::WAL, "flush_us").unwrap();
        assert_eq!(hist.count, 1);
        assert_eq!(hist.sum, 70);
        assert_eq!(hist.quantile(0.5), 127); // bucket of 70 = [64, 127]
        let full = now.histogram(family::WAL, "flush_us").unwrap();
        assert_eq!(full.quantile(1.0), 1023);
        assert!(full.mean() > 0.0);
    }

    #[test]
    fn snapshot_encode_decode_round_trips() {
        let r = Registry::new();
        r.counter(family::POOL, "hits").add(123456789);
        r.gauge(family::SERVER, "conns_live").set(42);
        let h = r.histogram(family::SCAN, "query_us");
        for v in 0..100u64 {
            h.record(v * v);
        }
        let snap = r.snapshot();
        let bytes = snap.encode();
        assert_eq!(Snapshot::decode(&bytes).unwrap(), snap);
        // Truncations never panic, always error.
        for cut in 0..bytes.len() {
            assert!(Snapshot::decode(&bytes[..cut]).is_err());
        }
        // Future version byte is rejected.
        let mut future = bytes.clone();
        future[0] = SNAPSHOT_VERSION + 1;
        assert!(Snapshot::decode(&future).is_err());
    }

    #[test]
    fn merge_unions_disjoint_families() {
        let a = Registry::new();
        a.counter(family::POOL, "hits").add(3);
        let b = Registry::new();
        b.gauge(family::SERVER, "conns_live").set(2);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.counter(family::POOL, "hits"), 3);
        assert_eq!(m.gauge(family::SERVER, "conns_live"), (2, 2));
        assert_eq!(m.families(), vec![family::POOL, family::SERVER]);
    }

    #[test]
    fn json_is_family_keyed() {
        let r = Registry::new();
        r.counter(family::POOL, "hits").add(3);
        r.histogram(family::COMMIT, "commit_us").record(5);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"pool\":{\"hits\":3}"));
        assert!(json.contains("\"commit\":{\"commit_us\":{\"count\":1"));
    }

    #[test]
    fn snapshot_under_concurrent_writers_is_sane() {
        let r = Registry::new();
        let c = r.counter(family::COMMIT, "txns");
        let h = r.histogram(family::COMMIT, "commit_us");
        let stop = Arc::new(AtomicU64::new(0));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let (c, h, stop) = (c.clone(), h.clone(), Arc::clone(&stop));
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        c.inc();
                        h.record(n % 1000);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        // Counters only move forward between snapshots, and decode of an
        // in-flight encode is always well-formed.
        let mut last = 0u64;
        for _ in 0..50 {
            let snap = r.snapshot();
            let now = snap.counter(family::COMMIT, "txns");
            assert!(now >= last);
            last = now;
            assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
        }
        stop.store(1, Ordering::Relaxed);
        let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        let snap = r.snapshot();
        assert_eq!(snap.counter(family::COMMIT, "txns"), total);
        assert_eq!(
            snap.histogram(family::COMMIT, "commit_us").unwrap().count,
            total
        );
    }
}
