//! CRC-32 (IEEE 802.3) — the one checksum every on-disk format here uses:
//! WAL entries, checkpoint files, heap pages, and commit-store entries.
//!
//! Slicing-by-8: eight 256-entry tables, built at compile time, let the
//! hot loop fold eight input bytes per iteration with no data-dependent
//! branches. Recovery verifies every heap page, commit-store entry, and
//! the whole checkpoint/graph files through this function, so it *is* a
//! startup hot path — the earlier bitwise version dominated checkpointed
//! reopen time once page checksums landed.

const POLY: u32 = 0xEDB8_8320;

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Computes the CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference bitwise implementation the sliced version must match.
    fn crc32_bitwise(bytes: &[u8]) -> u32 {
        let mut crc: u32 = 0xFFFF_FFFF;
        for &b in bytes {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (POLY & mask);
            }
        }
        !crc
    }

    #[test]
    fn known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn matches_bitwise_at_every_length() {
        // Cover all remainder lengths around the 8-byte slicing boundary.
        let data: Vec<u8> = (0..100u32)
            .map(|i| (i.wrapping_mul(193) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bitwise(&data[..len]),
                "len={len}"
            );
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = crc32(b"decibel");
        let mut flipped = *b"decibel";
        flipped[3] ^= 0x10;
        assert_ne!(crc32(&flipped), base);
    }
}
