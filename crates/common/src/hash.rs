//! Fast non-cryptographic hashing for integer keys.
//!
//! Primary-key indexes and merge hash-joins hash `u64` primary keys on every
//! insert/update and on every joined record, so SipHash (std's default) is
//! measurably wasteful. This module provides an FxHash-style multiplicative
//! hasher and `HashMap`/`HashSet` aliases built on it. (See the Rust
//! Performance Book's hashing chapter for the rationale; FxHash is the
//! rustc-internal algorithm.)

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash's 64-bit multiplier (golden-ratio derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiplicative hasher for small keys (FxHash algorithm).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// `HashMap` keyed with [`FxHasher`] — use for all hot integer-keyed maps.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&7], 14);
    }

    #[test]
    fn hash_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(12345);
        b.write_u64(12345);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_keys_usually_differ() {
        let h = |k: u64| {
            let mut hh = FxHasher::default();
            hh.write_u64(k);
            hh.finish()
        };
        let mut set: HashSet<u64> = HashSet::new();
        for i in 0..10_000 {
            set.insert(h(i));
        }
        assert_eq!(set.len(), 10_000, "no collisions on sequential keys");
    }

    #[test]
    fn byte_writes_cover_remainder_path() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert_ne!(a.finish(), b.finish());
    }
}
