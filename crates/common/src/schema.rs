//! Relation schemas.
//!
//! Decibel's data model (§2.2.1) is a dataset of relations whose records are
//! tracked by an immutable integer primary key. The paper's benchmark (§4.2)
//! generates relations of randomly generated integer columns with a single
//! integer primary key, fixing the record size at 1 KB (250 four-byte
//! columns). We reproduce exactly that shape: a schema is a primary key plus
//! `n` fixed-width integer columns, which makes records fixed-width and
//! heap-file slot arithmetic trivial.

use crate::error::{DbError, Result};

/// Width of an integer column.
///
/// The paper evaluates 4-byte columns and reports that 8-byte columns showed
/// no differences (§4.2); we support both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// A 32-bit unsigned integer column.
    U32,
    /// A 64-bit unsigned integer column.
    U64,
}

impl ColumnType {
    /// Byte width of one value of this type.
    #[inline]
    pub fn width(self) -> usize {
        match self {
            ColumnType::U32 => 4,
            ColumnType::U64 => 8,
        }
    }
}

/// Schema of a versioned relation: an 8-byte primary key followed by
/// `num_columns` data columns of uniform [`ColumnType`].
///
/// Records under a schema serialize to a fixed width
/// ([`Schema::record_size`]), which every storage engine exploits for direct
/// slot addressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    num_columns: usize,
    column_type: ColumnType,
}

/// Byte width of the record header (flag byte; bit 0 = tombstone).
pub const RECORD_HEADER_BYTES: usize = 1;
/// Byte width of the primary key.
pub const KEY_BYTES: usize = 8;

impl Schema {
    /// Creates a schema with `num_columns` data columns of type `column_type`.
    pub fn new(num_columns: usize, column_type: ColumnType) -> Self {
        Schema {
            num_columns,
            column_type,
        }
    }

    /// The paper's benchmark geometry: 250 four-byte integer columns plus an
    /// integer primary key, i.e. ~1 KB records (§4.2).
    pub fn paper_default() -> Self {
        Schema::new(250, ColumnType::U32)
    }

    /// Number of data columns (excluding the primary key).
    #[inline]
    pub fn num_columns(&self) -> usize {
        self.num_columns
    }

    /// The uniform type of the data columns.
    #[inline]
    pub fn column_type(&self) -> ColumnType {
        self.column_type
    }

    /// Serialized size in bytes of one record under this schema:
    /// header + key + columns.
    #[inline]
    pub fn record_size(&self) -> usize {
        RECORD_HEADER_BYTES + KEY_BYTES + self.num_columns * self.column_type.width()
    }

    /// Byte offset of data column `col` inside a serialized record slot.
    /// Fixed-width columns make this pure arithmetic, which is what lets
    /// scans read a single column's bytes straight off a pinned page
    /// without decoding the record around it.
    #[inline]
    pub fn col_offset(&self, col: usize) -> usize {
        debug_assert!(col < self.num_columns);
        RECORD_HEADER_BYTES + KEY_BYTES + col * self.column_type.width()
    }

    /// Validates that a value vector matches this schema.
    pub fn check_arity(&self, num_fields: usize) -> Result<()> {
        if num_fields != self.num_columns {
            return Err(DbError::SchemaMismatch {
                expected: self.num_columns,
                actual: num_fields,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_one_kilobyte_ish() {
        let s = Schema::paper_default();
        // 1 header + 8 key + 250 * 4 = 1009 bytes: the paper's "1KB records".
        assert_eq!(s.record_size(), 1009);
    }

    #[test]
    fn record_size_tracks_column_type() {
        assert_eq!(Schema::new(10, ColumnType::U32).record_size(), 1 + 8 + 40);
        assert_eq!(Schema::new(10, ColumnType::U64).record_size(), 1 + 8 + 80);
    }

    #[test]
    fn col_offsets_tile_the_record() {
        for ct in [ColumnType::U32, ColumnType::U64] {
            let s = Schema::new(5, ct);
            assert_eq!(s.col_offset(0), RECORD_HEADER_BYTES + KEY_BYTES);
            for c in 0..4 {
                assert_eq!(s.col_offset(c + 1) - s.col_offset(c), ct.width());
            }
            assert_eq!(s.col_offset(4) + ct.width(), s.record_size());
        }
    }

    #[test]
    fn arity_check() {
        let s = Schema::new(3, ColumnType::U32);
        assert!(s.check_arity(3).is_ok());
        let err = s.check_arity(2).unwrap_err();
        assert!(matches!(
            err,
            DbError::SchemaMismatch {
                expected: 3,
                actual: 2
            }
        ));
    }
}
