//! Fault-injectable disk IO environment.
//!
//! Every durability-bearing path in the system (WAL, heap files, commit
//! stores, version graph, checkpoint) performs its file IO through a
//! [`DiskEnv`] — a small trait over open/read/write/fsync/rename/truncate/
//! dir-sync — instead of calling `std::fs` directly. Production code runs
//! on [`StdEnv`], a zero-cost passthrough to the OS. Tests run on
//! [`FaultEnv`], which wraps the real filesystem but can inject the crash
//! shapes that matter for a storage engine:
//!
//! * **crash after the k-th IO op** — op `k` optionally lands a torn
//!   prefix, then every subsequent operation fails, modelling process
//!   death at an arbitrary point in the IO stream (the SQLite test-VFS
//!   technique). Run a workload once to count ops, then re-run it once
//!   per `k` and assert recovery invariants after reopening.
//! * **fsync failures** — the n-th `sync_data`/`sync_all`/`sync_dir`
//!   call returns an error, exercising the journal-poison contract.
//! * **short / torn writes** — a write lands only a prefix of its buffer
//!   and reports failure.
//! * **ENOSPC** — writes beyond a budget fail, as on a full disk.
//! * **read bit-flips** — a chosen read returns its buffer with one bit
//!   flipped, exercising checksum detection paths.
//!
//! The environment is threaded through `StoreConfig`, so a whole
//! `Database` (all four engines, WAL, checkpoints) can be pointed at a
//! `FaultEnv` without any test-only code in the engines themselves.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// How a file should be opened by [`DiskEnv::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Read-only; the file must exist.
    Read,
    /// Read + write; created if missing, existing contents preserved.
    ReadWrite,
    /// Read + write; created if missing, truncated to zero if present.
    Truncate,
}

/// An open file handle behind a [`DiskEnv`].
///
/// All access is positional (`read_exact_at` / `write_all_at`) so a handle
/// can be shared between threads without a seek cursor race; callers that
/// append track their own offset.
// `len` returns `io::Result<u64>`, so clippy's `is_empty` pairing
// (which expects a plain `bool`) does not apply.
#[allow(clippy::len_without_is_empty)]
pub trait DiskFile: Send + Sync {
    /// Reads exactly `buf.len()` bytes at `offset`, erroring on EOF.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()>;
    /// Writes the whole buffer at `offset`.
    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()>;
    /// Flushes file data (and as little metadata as possible) to disk.
    fn sync_data(&self) -> io::Result<()>;
    /// Flushes file data and metadata to disk.
    fn sync_all(&self) -> io::Result<()>;
    /// Truncates or extends the file to `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;
    /// Current file length in bytes.
    fn len(&self) -> io::Result<u64>;
}

/// A filesystem as seen by the storage layer.
///
/// [`StdEnv`] passes every call straight to the OS; [`FaultEnv`] interposes
/// fault injection. Paths are interpreted exactly as `std::fs` would.
pub trait DiskEnv: Send + Sync {
    /// Opens (or creates, per `mode`) the file at `path`.
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Arc<dyn DiskFile>>;
    /// Renames `from` to `to` (atomic replacement on POSIX).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs the directory at `path`, making renames/removals durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Creates `path` and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Recursively removes the directory at `path`.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
    /// Length of the file at `path` in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;

    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let file = self.open(path, OpenMode::Read)?;
        let len = file.len()?;
        let mut buf = vec![0u8; len as usize];
        if !buf.is_empty() {
            file.read_exact_at(&mut buf, 0)?;
        }
        Ok(buf)
    }

    /// Writes (create + truncate) the whole file at `path`. Not durable on
    /// its own — pair with `sync_data`/`sync_dir` where durability matters.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let file = self.open(path, OpenMode::Truncate)?;
        if !bytes.is_empty() {
            file.write_all_at(bytes, 0)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// StdEnv — zero-cost passthrough
// ---------------------------------------------------------------------------

/// The real filesystem: every [`DiskEnv`] call maps 1:1 to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdEnv;

/// Convenience: a fresh `Arc<dyn DiskEnv>` over the real filesystem.
pub fn std_env() -> Arc<dyn DiskEnv> {
    Arc::new(StdEnv)
}

impl DiskFile for File {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        FileExt::read_exact_at(self, buf, offset)
    }
    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        FileExt::write_all_at(self, buf, offset)
    }
    fn sync_data(&self) -> io::Result<()> {
        File::sync_data(self)
    }
    fn sync_all(&self) -> io::Result<()> {
        File::sync_all(self)
    }
    fn set_len(&self, len: u64) -> io::Result<()> {
        File::set_len(self, len)
    }
    fn len(&self) -> io::Result<u64> {
        Ok(self.metadata()?.len())
    }
}

fn std_open(path: &Path, mode: OpenMode) -> io::Result<File> {
    match mode {
        OpenMode::Read => OpenOptions::new().read(true).open(path),
        OpenMode::ReadWrite => OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path),
        OpenMode::Truncate => OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path),
    }
}

impl DiskEnv for StdEnv {
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Arc<dyn DiskFile>> {
        Ok(Arc::new(std_open(path, mode)?))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_dir_all(path)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }
}

// ---------------------------------------------------------------------------
// FaultEnv — fault injection over the real filesystem
// ---------------------------------------------------------------------------

/// Counters and fault triggers shared by all files of a [`FaultEnv`].
#[derive(Debug, Default)]
struct FaultState {
    /// Mutating IO ops performed so far (writes, fsyncs, set_len, rename,
    /// remove, dir-sync). Reads and opens are not counted: a crash "after a
    /// read" is indistinguishable on disk from a crash after the previous
    /// mutating op.
    ops: u64,
    /// Crash fires when the op counter reaches this index (0-based).
    crash_at: Option<u64>,
    /// Once set, every IO call (including reads/opens) fails: the process
    /// is dead as far as this environment is concerned.
    crashed: bool,
    /// If the crashing op is a write, land `len/2` bytes before failing.
    torn_crash: bool,
    /// 0-based index (into the fsync sub-counter) of a one-shot injected
    /// fsync failure. Covers `sync_data`, `sync_all`, and `sync_dir`.
    fail_fsync_at: Option<u64>,
    fsyncs: u64,
    /// Writes with sub-index >= this fail with a simulated ENOSPC.
    enospc_after_writes: Option<u64>,
    writes: u64,
    /// `(nth_read, bit)`: the nth `read_exact_at` (0-based) has `bit`
    /// (numbered from the start of the returned buffer) flipped.
    flip_read: Option<(u64, u64)>,
    reads: u64,
}

enum Gate {
    Proceed,
    /// Write a prefix of this many bytes, then fail with a crash error.
    Torn(usize),
}

fn crash_error() -> io::Error {
    io::Error::other("simulated crash: IO op past crash point")
}

impl FaultState {
    /// Accounts one mutating op; decides whether it proceeds, tears, or fails.
    fn gate(&mut self, is_write: bool, write_len: usize) -> io::Result<Gate> {
        if self.crashed {
            return Err(crash_error());
        }
        let idx = self.ops;
        self.ops += 1;
        if self.crash_at == Some(idx) {
            self.crashed = true;
            if is_write && self.torn_crash && write_len > 1 {
                return Ok(Gate::Torn(write_len / 2));
            }
            return Err(crash_error());
        }
        if is_write {
            let w = self.writes;
            self.writes += 1;
            if let Some(limit) = self.enospc_after_writes {
                if w >= limit {
                    return Err(io::Error::other("injected ENOSPC: no space left on device"));
                }
            }
        }
        Ok(Gate::Proceed)
    }

    /// Accounts one fsync (also a mutating op for crash purposes).
    fn gate_fsync(&mut self) -> io::Result<()> {
        match self.gate(false, 0)? {
            Gate::Proceed => {}
            Gate::Torn(_) => unreachable!("fsync is not a write"),
        }
        let idx = self.fsyncs;
        self.fsyncs += 1;
        if self.fail_fsync_at == Some(idx) {
            return Err(io::Error::other("injected fsync failure"));
        }
        Ok(())
    }

    fn gate_read(&mut self) -> io::Result<Option<u64>> {
        if self.crashed {
            return Err(crash_error());
        }
        let idx = self.reads;
        self.reads += 1;
        match self.flip_read {
            Some((n, bit)) if n == idx => Ok(Some(bit)),
            _ => Ok(None),
        }
    }

    fn gate_passive(&self) -> io::Result<()> {
        if self.crashed {
            return Err(crash_error());
        }
        Ok(())
    }
}

/// A [`DiskEnv`] over the real filesystem with injectable faults.
///
/// Cloneable handles share one fault state: keep an `Arc<FaultEnv>` in the
/// test, hand it to `StoreConfig.env`, and drive the knobs / read the
/// counters from outside while the database runs on it. See the module
/// docs for the fault catalogue and [`FaultEnv::crash_after`] for the
/// crash-point enumeration workflow.
#[derive(Clone, Default)]
pub struct FaultEnv {
    state: Arc<Mutex<FaultState>>,
}

impl fmt::Debug for FaultEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.lock().unwrap();
        f.debug_struct("FaultEnv")
            .field("ops", &s.ops)
            .field("crash_at", &s.crash_at)
            .field("crashed", &s.crashed)
            .finish()
    }
}

impl FaultEnv {
    /// A fresh environment with no faults armed — counts ops only.
    pub fn new() -> Self {
        Self::default()
    }

    fn state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        // Fault state is plain data; a poisoned mutex only happens if an
        // assertion failed mid-update in this module, which cannot occur.
        self.state.lock().unwrap()
    }

    /// Mutating IO ops performed so far. Run the workload once on an
    /// unarmed env to learn `N`, then once per `k in 0..N` with
    /// [`crash_after`](Self::crash_after) armed.
    pub fn ops(&self) -> u64 {
        self.state().ops
    }

    /// Whether the armed crash point has fired.
    pub fn crashed(&self) -> bool {
        self.state().crashed
    }

    /// Arms a crash at mutating op `k` (0-based): op `k` fails (landing a
    /// torn half-write first if `torn` and it is a write), and every IO
    /// call after it fails too.
    pub fn crash_after(&self, k: u64, torn: bool) {
        let mut s = self.state();
        s.crash_at = Some(k);
        s.torn_crash = torn;
    }

    /// Makes the `n`-th fsync (0-based; data/all/dir syncs all count)
    /// return an injected error once.
    pub fn fail_nth_fsync(&self, n: u64) {
        self.state().fail_fsync_at = Some(n);
    }

    /// Makes every write after the first `n` fail with a simulated ENOSPC.
    pub fn enospc_after_writes(&self, n: u64) {
        self.state().enospc_after_writes = Some(n);
    }

    /// Flips bit `bit` of the buffer returned by the `n`-th read (0-based).
    pub fn flip_bit_in_read(&self, n: u64, bit: u64) {
        self.state().flip_read = Some((n, bit));
    }

    /// Clears all armed faults (counters keep running).
    pub fn disarm(&self) {
        let mut s = self.state();
        s.crash_at = None;
        s.torn_crash = false;
        s.crashed = false;
        s.fail_fsync_at = None;
        s.enospc_after_writes = None;
        s.flip_read = None;
    }
}

struct FaultFile {
    inner: File,
    state: Arc<Mutex<FaultState>>,
}

impl FaultFile {
    fn state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap()
    }
}

impl DiskFile for FaultFile {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        let flip = self.state().gate_read()?;
        FileExt::read_exact_at(&self.inner, buf, offset)?;
        if let Some(bit) = flip {
            let byte = (bit / 8) as usize;
            if byte < buf.len() {
                buf[byte] ^= 1 << (bit % 8);
            }
        }
        Ok(())
    }

    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        match self.state().gate(true, buf.len())? {
            Gate::Proceed => FileExt::write_all_at(&self.inner, buf, offset),
            Gate::Torn(prefix) => {
                FileExt::write_all_at(&self.inner, &buf[..prefix], offset)?;
                Err(crash_error())
            }
        }
    }

    fn sync_data(&self) -> io::Result<()> {
        self.state().gate_fsync()?;
        self.inner.sync_data()
    }

    fn sync_all(&self) -> io::Result<()> {
        self.state().gate_fsync()?;
        self.inner.sync_all()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        match self.state().gate(false, 0)? {
            Gate::Proceed => self.inner.set_len(len),
            Gate::Torn(_) => unreachable!("set_len is not a write"),
        }
    }

    fn len(&self) -> io::Result<u64> {
        self.state().gate_passive()?;
        Ok(self.inner.metadata()?.len())
    }
}

impl DiskEnv for FaultEnv {
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Arc<dyn DiskFile>> {
        // Opening with truncate destroys data, so it is gated as a mutating
        // op; plain opens are passive.
        match mode {
            OpenMode::Truncate => match self.state().gate(false, 0)? {
                Gate::Proceed => {}
                Gate::Torn(_) => unreachable!(),
            },
            _ => self.state().gate_passive()?,
        }
        let inner = std_open(path, mode)?;
        Ok(Arc::new(FaultFile {
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.state().gate(false, 0)? {
            Gate::Proceed => std::fs::rename(from, to),
            Gate::Torn(_) => unreachable!(),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.state().gate(false, 0)? {
            Gate::Proceed => std::fs::remove_file(path),
            Gate::Torn(_) => unreachable!(),
        }
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.state().gate_fsync()?;
        File::open(path)?.sync_all()
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.state().gate_passive()?;
        std::fs::create_dir_all(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.state().gate(false, 0)? {
            Gate::Proceed => std::fs::remove_dir_all(path),
            Gate::Torn(_) => unreachable!(),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        !self.state().crashed && path.exists()
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.state().gate_passive()?;
        Ok(std::fs::metadata(path)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(env: &dyn DiskEnv, path: &Path) -> Arc<dyn DiskFile> {
        env.open(path, OpenMode::ReadWrite).unwrap()
    }

    #[test]
    fn std_env_round_trips() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("f");
        let env = StdEnv;
        let f = file(&env, &path);
        f.write_all_at(b"hello", 0).unwrap();
        f.sync_data().unwrap();
        assert_eq!(f.len().unwrap(), 5);
        let mut buf = [0u8; 5];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(env.read(&path).unwrap(), b"hello");
        env.rename(&path, &dir.path().join("g")).unwrap();
        assert!(env.exists(&dir.path().join("g")));
        env.sync_dir(dir.path()).unwrap();
    }

    #[test]
    fn crash_after_k_fails_everything_past_k() {
        let dir = tempfile::tempdir().unwrap();
        let env = FaultEnv::new();
        env.crash_after(2, false);
        let f = file(&env, &dir.path().join("f"));
        f.write_all_at(b"a", 0).unwrap(); // op 0
        f.write_all_at(b"b", 1).unwrap(); // op 1
        assert!(f.write_all_at(b"c", 2).is_err()); // op 2: crash fires
        assert!(f.write_all_at(b"d", 3).is_err()); // dead forever after
        assert!(f.sync_data().is_err());
        let mut buf = [0u8; 1];
        assert!(f.read_exact_at(&mut buf, 0).is_err());
        assert!(env.crashed());
        // Only the pre-crash bytes landed.
        assert_eq!(std::fs::read(dir.path().join("f")).unwrap(), b"ab");
    }

    #[test]
    fn torn_crash_lands_half_the_buffer() {
        let dir = tempfile::tempdir().unwrap();
        let env = FaultEnv::new();
        env.crash_after(0, true);
        let f = file(&env, &dir.path().join("f"));
        assert!(f.write_all_at(b"abcdefgh", 0).is_err());
        assert_eq!(std::fs::read(dir.path().join("f")).unwrap(), b"abcd");
    }

    #[test]
    fn nth_fsync_fails_once() {
        let dir = tempfile::tempdir().unwrap();
        let env = FaultEnv::new();
        env.fail_nth_fsync(1);
        let f = file(&env, &dir.path().join("f"));
        f.sync_data().unwrap();
        assert!(f.sync_data().is_err());
        f.sync_data().unwrap(); // one-shot
    }

    #[test]
    fn enospc_after_write_budget() {
        let dir = tempfile::tempdir().unwrap();
        let env = FaultEnv::new();
        env.enospc_after_writes(1);
        let f = file(&env, &dir.path().join("f"));
        f.write_all_at(b"ok", 0).unwrap();
        let err = f.write_all_at(b"no", 2).unwrap_err();
        assert!(err.to_string().contains("ENOSPC"));
    }

    #[test]
    fn read_bit_flip_corrupts_exactly_one_bit() {
        let dir = tempfile::tempdir().unwrap();
        let env = FaultEnv::new();
        let f = file(&env, &dir.path().join("f"));
        f.write_all_at(&[0u8; 4], 0).unwrap();
        env.flip_bit_in_read(0, 17); // byte 2, bit 1
        let mut buf = [0u8; 4];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [0, 0, 2, 0]);
        f.read_exact_at(&mut buf, 0).unwrap(); // next read is clean
        assert_eq!(buf, [0, 0, 0, 0]);
    }

    #[test]
    fn ops_counts_mutations_not_reads() {
        let dir = tempfile::tempdir().unwrap();
        let env = FaultEnv::new();
        let f = file(&env, &dir.path().join("f"));
        assert_eq!(env.ops(), 0);
        f.write_all_at(b"x", 0).unwrap();
        f.sync_data().unwrap();
        let mut buf = [0u8; 1];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(env.ops(), 2);
    }
}
