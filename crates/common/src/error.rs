//! Crate-wide error and result types.

use std::fmt;
use std::io;

/// The error type shared by every crate in the workspace.
///
/// Storage engines are I/O-heavy, so most variants wrap [`io::Error`] with a
/// context string; the remaining variants capture violations of the Decibel
/// versioning model (unknown branches, commits to non-head versions, merge
/// conflicts surfaced to the caller, ...).
#[derive(Debug)]
pub enum DbError {
    /// An operating-system I/O failure, annotated with what we were doing.
    Io {
        /// Human-readable description of the failed operation.
        context: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A branch name or id that is not present in the version graph.
    UnknownBranch(String),
    /// A commit id that is not present in the version graph.
    UnknownCommit(u64),
    /// The requested operation is only legal on the head of a branch
    /// (e.g. the paper forbids commits to non-head versions, §2.2.3).
    NotBranchHead {
        /// The branch whose head was required.
        branch: String,
    },
    /// An insert used a primary key that is already live in the branch.
    DuplicateKey {
        /// The offending primary key.
        key: u64,
    },
    /// An update or delete referenced a primary key not live in the branch.
    KeyNotFound {
        /// The missing primary key.
        key: u64,
    },
    /// A record did not match the relation's schema.
    SchemaMismatch {
        /// Expected number of values (including the primary key).
        expected: usize,
        /// Number of values actually supplied.
        actual: usize,
    },
    /// A merge found conflicting field updates and the chosen resolution
    /// policy asked for conflicts to be surfaced rather than auto-resolved.
    MergeConflicts {
        /// How many conflicting records were found.
        count: usize,
    },
    /// Corrupt or truncated on-disk state.
    Corrupt {
        /// Description of the inconsistency.
        detail: String,
    },
    /// A session attempted an operation that its isolation level forbids,
    /// e.g. writing a branch another session holds exclusively.
    LockContention {
        /// Description of the contended resource.
        what: String,
    },
    /// Any other invariant violation.
    Invalid(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io { context, source } => write!(f, "I/O error while {context}: {source}"),
            DbError::UnknownBranch(name) => write!(f, "unknown branch: {name}"),
            DbError::UnknownCommit(id) => write!(f, "unknown commit: {id}"),
            DbError::NotBranchHead { branch } => {
                write!(f, "operation requires the head of branch {branch}")
            }
            DbError::DuplicateKey { key } => write!(f, "duplicate primary key {key}"),
            DbError::KeyNotFound { key } => write!(f, "primary key {key} not found"),
            DbError::SchemaMismatch { expected, actual } => {
                write!(
                    f,
                    "schema mismatch: expected {expected} values, got {actual}"
                )
            }
            DbError::MergeConflicts { count } => {
                write!(f, "merge produced {count} unresolved conflicts")
            }
            DbError::Corrupt { detail } => write!(f, "corrupt storage: {detail}"),
            DbError::LockContention { what } => write!(f, "lock contention on {what}"),
            DbError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl DbError {
    /// Wraps an [`io::Error`] with a description of the failed operation.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        DbError::Io {
            context: context.into(),
            source,
        }
    }

    /// Builds a [`DbError::Corrupt`] from a format-friendly detail string.
    pub fn corrupt(detail: impl Into<String>) -> Self {
        DbError::Corrupt {
            detail: detail.into(),
        }
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, DbError>;

/// Extension trait for attaching context to raw [`io::Result`]s.
pub trait IoResultExt<T> {
    /// Converts an [`io::Result`] into a [`Result`], attaching `context`.
    fn ctx(self, context: &str) -> Result<T>;
}

impl<T> IoResultExt<T> for io::Result<T> {
    fn ctx(self, context: &str) -> Result<T> {
        self.map_err(|e| DbError::io(context, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = DbError::io("reading segment", io::Error::other("boom"));
        let s = e.to_string();
        assert!(s.contains("reading segment"));
        assert!(s.contains("boom"));
    }

    #[test]
    fn io_source_is_exposed() {
        let e = DbError::io("x", io::Error::other("inner"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&DbError::UnknownBranch("b".into())).is_none());
    }

    #[test]
    fn ctx_converts_io_results() {
        let r: io::Result<()> = Err(io::Error::new(io::ErrorKind::NotFound, "gone"));
        let err = r.ctx("opening heap").unwrap_err();
        assert!(matches!(err, DbError::Io { .. }));
        assert!(err.to_string().contains("opening heap"));
    }
}
