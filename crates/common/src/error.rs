//! Crate-wide error and result types.

use std::fmt;
use std::io;

/// The error type shared by every crate in the workspace.
///
/// Storage engines are I/O-heavy, so most variants wrap [`io::Error`] with a
/// context string; the remaining variants capture violations of the Decibel
/// versioning model (unknown branches, commits to non-head versions, merge
/// conflicts surfaced to the caller, ...).
#[derive(Debug)]
pub enum DbError {
    /// An operating-system I/O failure, annotated with what we were doing.
    Io {
        /// Human-readable description of the failed operation.
        context: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A branch name or id that is not present in the version graph.
    UnknownBranch(String),
    /// A commit id that is not present in the version graph.
    UnknownCommit(u64),
    /// The requested operation is only legal on the head of a branch
    /// (e.g. the paper forbids commits to non-head versions, §2.2.3).
    NotBranchHead {
        /// The branch whose head was required.
        branch: String,
    },
    /// An insert used a primary key that is already live in the branch.
    DuplicateKey {
        /// The offending primary key.
        key: u64,
    },
    /// An update or delete referenced a primary key not live in the branch.
    KeyNotFound {
        /// The missing primary key.
        key: u64,
    },
    /// A record did not match the relation's schema.
    SchemaMismatch {
        /// Expected number of values (including the primary key).
        expected: usize,
        /// Number of values actually supplied.
        actual: usize,
    },
    /// A merge found conflicting field updates and the chosen resolution
    /// policy asked for conflicts to be surfaced rather than auto-resolved.
    MergeConflicts {
        /// How many conflicting records were found.
        count: usize,
    },
    /// Corrupt or truncated on-disk state.
    Corrupt {
        /// Description of the inconsistency.
        detail: String,
    },
    /// A session attempted an operation that its isolation level forbids,
    /// e.g. writing a branch another session holds exclusively.
    LockContention {
        /// Description of the contended resource.
        what: String,
    },
    /// The session has an open transaction and the requested operation
    /// (checkout, branch, ...) is only legal between transactions.
    TxnOpen {
        /// The operation that was refused.
        what: String,
    },
    /// A write was issued while the session is checked out at an immutable
    /// commit (commits are read-only positions, §2.2.2).
    ReadOnlyCheckout {
        /// The commit the session is parked on.
        commit: u64,
    },
    /// The store diverged from the journal (a commit marker failed to
    /// persist, or a transaction failed mid-apply); journaled writes are
    /// refused until the database directory is reopened.
    JournalDiverged,
    /// A malformed or unexpected wire-protocol message.
    Protocol {
        /// Description of the protocol violation.
        detail: String,
    },
    /// Any other invariant violation.
    Invalid(String),
    /// An operation exceeded its deadline — e.g. a server connection idle
    /// past its read timeout. Any open transaction is rolled back before
    /// this error is surfaced.
    Timeout {
        /// What timed out.
        what: String,
    },
    /// A connection failed the server's shared-secret authentication
    /// (missing, wrong, or late token). The server sends this as a typed
    /// error frame and closes the connection without serving any request.
    AuthFailed,
}

/// Stable error-kind discriminants, one per [`DbError`] variant.
///
/// The values are part of the wire protocol (error frames carry them so
/// remote clients can match on error kind instead of message text) and of
/// any future on-disk format that records errors — never renumber them,
/// only append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// [`DbError::Io`].
    Io = 1,
    /// [`DbError::UnknownBranch`].
    UnknownBranch = 2,
    /// [`DbError::UnknownCommit`].
    UnknownCommit = 3,
    /// [`DbError::NotBranchHead`].
    NotBranchHead = 4,
    /// [`DbError::DuplicateKey`].
    DuplicateKey = 5,
    /// [`DbError::KeyNotFound`].
    KeyNotFound = 6,
    /// [`DbError::SchemaMismatch`].
    SchemaMismatch = 7,
    /// [`DbError::MergeConflicts`].
    MergeConflicts = 8,
    /// [`DbError::Corrupt`].
    Corrupt = 9,
    /// [`DbError::LockContention`].
    LockContention = 10,
    /// [`DbError::Invalid`].
    Invalid = 11,
    /// [`DbError::TxnOpen`].
    TxnOpen = 12,
    /// [`DbError::ReadOnlyCheckout`].
    ReadOnlyCheckout = 13,
    /// [`DbError::JournalDiverged`].
    JournalDiverged = 14,
    /// [`DbError::Protocol`].
    Protocol = 15,
    /// [`DbError::Timeout`].
    Timeout = 16,
    /// [`DbError::AuthFailed`].
    AuthFailed = 17,
}

impl ErrorCode {
    /// All codes, in discriminant order.
    pub const ALL: [ErrorCode; 17] = [
        ErrorCode::Io,
        ErrorCode::UnknownBranch,
        ErrorCode::UnknownCommit,
        ErrorCode::NotBranchHead,
        ErrorCode::DuplicateKey,
        ErrorCode::KeyNotFound,
        ErrorCode::SchemaMismatch,
        ErrorCode::MergeConflicts,
        ErrorCode::Corrupt,
        ErrorCode::LockContention,
        ErrorCode::Invalid,
        ErrorCode::TxnOpen,
        ErrorCode::ReadOnlyCheckout,
        ErrorCode::JournalDiverged,
        ErrorCode::Protocol,
        ErrorCode::Timeout,
        ErrorCode::AuthFailed,
    ];

    /// The wire representation.
    #[inline]
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decodes a wire discriminant (`None` for unknown codes, which a
    /// client should surface as [`ErrorCode::Protocol`]).
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.as_u16() == v)
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io { context, source } => write!(f, "I/O error while {context}: {source}"),
            DbError::UnknownBranch(name) => write!(f, "unknown branch: {name}"),
            DbError::UnknownCommit(id) => write!(f, "unknown commit: {id}"),
            DbError::NotBranchHead { branch } => {
                write!(f, "operation requires the head of branch {branch}")
            }
            DbError::DuplicateKey { key } => write!(f, "duplicate primary key {key}"),
            DbError::KeyNotFound { key } => write!(f, "primary key {key} not found"),
            DbError::SchemaMismatch { expected, actual } => {
                write!(
                    f,
                    "schema mismatch: expected {expected} values, got {actual}"
                )
            }
            DbError::MergeConflicts { count } => {
                write!(f, "merge produced {count} unresolved conflicts")
            }
            DbError::Corrupt { detail } => write!(f, "corrupt storage: {detail}"),
            DbError::LockContention { what } => write!(f, "lock contention on {what}"),
            DbError::TxnOpen { what } => {
                write!(
                    f,
                    "cannot {what} with an open transaction; commit or rollback first"
                )
            }
            DbError::ReadOnlyCheckout { commit } => {
                write!(
                    f,
                    "session is at commit {commit}; writes require a branch checkout \
                     (commits are immutable, §2.2.2)"
                )
            }
            DbError::JournalDiverged => {
                write!(
                    f,
                    "journal diverged from the store (a commit marker failed to \
                     persist, or a transaction failed mid-apply); journaled \
                     writes are disabled — reopen the database directory to \
                     recover the journaled state"
                )
            }
            DbError::Protocol { detail } => write!(f, "wire protocol violation: {detail}"),
            DbError::Invalid(msg) => write!(f, "{msg}"),
            DbError::Timeout { what } => write!(f, "timed out: {what}"),
            DbError::AuthFailed => {
                write!(
                    f,
                    "authentication failed: bad or missing shared-secret token"
                )
            }
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl DbError {
    /// Wraps an [`io::Error`] with a description of the failed operation.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        DbError::Io {
            context: context.into(),
            source,
        }
    }

    /// Builds a [`DbError::Corrupt`] from a format-friendly detail string.
    pub fn corrupt(detail: impl Into<String>) -> Self {
        DbError::Corrupt {
            detail: detail.into(),
        }
    }

    /// Builds a [`DbError::Protocol`] from a format-friendly detail string.
    pub fn protocol(detail: impl Into<String>) -> Self {
        DbError::Protocol {
            detail: detail.into(),
        }
    }

    /// Builds a [`DbError::Timeout`] from a format-friendly description.
    pub fn timeout(what: impl Into<String>) -> Self {
        DbError::Timeout { what: what.into() }
    }

    /// The variant's stable [`ErrorCode`] — what the wire protocol's error
    /// frame carries, so clients can match on error kind without parsing
    /// message text.
    pub fn code(&self) -> ErrorCode {
        match self {
            DbError::Io { .. } => ErrorCode::Io,
            DbError::UnknownBranch(_) => ErrorCode::UnknownBranch,
            DbError::UnknownCommit(_) => ErrorCode::UnknownCommit,
            DbError::NotBranchHead { .. } => ErrorCode::NotBranchHead,
            DbError::DuplicateKey { .. } => ErrorCode::DuplicateKey,
            DbError::KeyNotFound { .. } => ErrorCode::KeyNotFound,
            DbError::SchemaMismatch { .. } => ErrorCode::SchemaMismatch,
            DbError::MergeConflicts { .. } => ErrorCode::MergeConflicts,
            DbError::Corrupt { .. } => ErrorCode::Corrupt,
            DbError::LockContention { .. } => ErrorCode::LockContention,
            DbError::TxnOpen { .. } => ErrorCode::TxnOpen,
            DbError::ReadOnlyCheckout { .. } => ErrorCode::ReadOnlyCheckout,
            DbError::JournalDiverged => ErrorCode::JournalDiverged,
            DbError::Protocol { .. } => ErrorCode::Protocol,
            DbError::Invalid(_) => ErrorCode::Invalid,
            DbError::Timeout { .. } => ErrorCode::Timeout,
            DbError::AuthFailed => ErrorCode::AuthFailed,
        }
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, DbError>;

/// Extension trait for attaching context to raw [`io::Result`]s.
pub trait IoResultExt<T> {
    /// Converts an [`io::Result`] into a [`Result`], attaching `context`.
    fn ctx(self, context: &str) -> Result<T>;
}

impl<T> IoResultExt<T> for io::Result<T> {
    fn ctx(self, context: &str) -> Result<T> {
        self.map_err(|e| DbError::io(context, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = DbError::io("reading segment", io::Error::other("boom"));
        let s = e.to_string();
        assert!(s.contains("reading segment"));
        assert!(s.contains("boom"));
    }

    #[test]
    fn io_source_is_exposed() {
        let e = DbError::io("x", io::Error::other("inner"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&DbError::UnknownBranch("b".into())).is_none());
    }

    #[test]
    fn error_codes_are_stable_and_round_trip() {
        // The discriminants are a wire/storage contract: spell them out so
        // an accidental renumbering fails loudly.
        let expected: [(ErrorCode, u16); 17] = [
            (ErrorCode::Io, 1),
            (ErrorCode::UnknownBranch, 2),
            (ErrorCode::UnknownCommit, 3),
            (ErrorCode::NotBranchHead, 4),
            (ErrorCode::DuplicateKey, 5),
            (ErrorCode::KeyNotFound, 6),
            (ErrorCode::SchemaMismatch, 7),
            (ErrorCode::MergeConflicts, 8),
            (ErrorCode::Corrupt, 9),
            (ErrorCode::LockContention, 10),
            (ErrorCode::Invalid, 11),
            (ErrorCode::TxnOpen, 12),
            (ErrorCode::ReadOnlyCheckout, 13),
            (ErrorCode::JournalDiverged, 14),
            (ErrorCode::Protocol, 15),
            (ErrorCode::Timeout, 16),
            (ErrorCode::AuthFailed, 17),
        ];
        for (code, raw) in expected {
            assert_eq!(code.as_u16(), raw);
            assert_eq!(ErrorCode::from_u16(raw), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(999), None);
    }

    #[test]
    fn every_variant_maps_to_its_code() {
        let cases: Vec<(DbError, ErrorCode)> = vec![
            (DbError::io("x", io::Error::other("y")), ErrorCode::Io),
            (DbError::UnknownBranch("b".into()), ErrorCode::UnknownBranch),
            (DbError::UnknownCommit(7), ErrorCode::UnknownCommit),
            (
                DbError::NotBranchHead { branch: "b".into() },
                ErrorCode::NotBranchHead,
            ),
            (DbError::DuplicateKey { key: 1 }, ErrorCode::DuplicateKey),
            (DbError::KeyNotFound { key: 1 }, ErrorCode::KeyNotFound),
            (
                DbError::SchemaMismatch {
                    expected: 1,
                    actual: 2,
                },
                ErrorCode::SchemaMismatch,
            ),
            (
                DbError::MergeConflicts { count: 3 },
                ErrorCode::MergeConflicts,
            ),
            (DbError::corrupt("c"), ErrorCode::Corrupt),
            (
                DbError::LockContention { what: "w".into() },
                ErrorCode::LockContention,
            ),
            (DbError::TxnOpen { what: "w".into() }, ErrorCode::TxnOpen),
            (
                DbError::ReadOnlyCheckout { commit: 9 },
                ErrorCode::ReadOnlyCheckout,
            ),
            (DbError::JournalDiverged, ErrorCode::JournalDiverged),
            (DbError::protocol("p"), ErrorCode::Protocol),
            (DbError::Invalid("i".into()), ErrorCode::Invalid),
            (DbError::timeout("t"), ErrorCode::Timeout),
            (DbError::AuthFailed, ErrorCode::AuthFailed),
        ];
        assert_eq!(cases.len(), ErrorCode::ALL.len());
        for (err, code) in cases {
            assert_eq!(err.code(), code, "{err}");
        }
    }

    #[test]
    fn journal_diverged_points_at_reopen() {
        // Operators (and a db.rs test) key off this word.
        assert!(DbError::JournalDiverged.to_string().contains("reopen"));
    }

    #[test]
    fn ctx_converts_io_results() {
        let r: io::Result<()> = Err(io::Error::new(io::ErrorKind::NotFound, "gone"));
        let err = r.ctx("opening heap").unwrap_err();
        assert!(matches!(err, DbError::Io { .. }));
        assert!(err.to_string().contains("opening heap"));
    }
}
