//! Crash-safe filesystem primitives shared by every layer that persists
//! state (WAL, version graph, checkpoint file).
//!
//! There is exactly one correct sequence for durably replacing a file on a
//! POSIX filesystem — write a sibling temp file, fsync it, rename it into
//! place, fsync the parent directory (the rename is only durable once its
//! directory entry is) — and it lives here once rather than per call site.

use std::path::Path;

use crate::env::{DiskEnv, OpenMode, StdEnv};
use crate::error::{DbError, IoResultExt, Result};

/// Fsyncs the directory containing `path`, making renames/removals of
/// entries in it durable. No-op if the path has no parent component.
pub fn sync_parent_dir(path: &Path) -> Result<()> {
    sync_parent_dir_in(&StdEnv, path)
}

/// [`sync_parent_dir`] through an explicit [`DiskEnv`].
pub fn sync_parent_dir_in(env: &dyn DiskEnv, path: &Path) -> Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    env.sync_dir(parent).ctx("fsyncing parent directory")
}

/// Atomically (and, when `fsync` is set, durably) replaces the file at
/// `path` with `bytes`: temp-file write → fsync → rename → parent-dir
/// fsync. A crash at any point leaves either the old file or the new one,
/// never a torn mixture.
pub fn write_file_durably(path: &Path, bytes: &[u8], fsync: bool) -> Result<()> {
    write_file_durably_in(&StdEnv, path, bytes, fsync)
}

/// [`write_file_durably`] through an explicit [`DiskEnv`].
pub fn write_file_durably_in(
    env: &dyn DiskEnv,
    path: &Path,
    bytes: &[u8],
    fsync: bool,
) -> Result<()> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| DbError::Invalid("durable write target has no file name".into()))?;
    let tmp = path.with_file_name(format!("{name}.tmp"));
    {
        let file = env
            .open(&tmp, OpenMode::Truncate)
            .ctx("creating temp file")?;
        file.write_all_at(bytes, 0).ctx("writing temp file")?;
        if fsync {
            file.sync_data().ctx("fsyncing temp file")?;
        }
    }
    env.rename(&tmp, path).ctx("installing file")?;
    if fsync {
        sync_parent_dir_in(env, path)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaces_content_atomically() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("f");
        write_file_durably(&path, b"one", false).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        write_file_durably(&path, b"two", true).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        // No temp residue.
        assert!(!path.with_file_name("f.tmp").exists());
    }

    #[test]
    fn sync_parent_of_root_relative_path_is_ok() {
        // A bare file name has no parent component; "." is synced instead.
        sync_parent_dir(Path::new("some-file")).unwrap();
    }
}
