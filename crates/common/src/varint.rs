//! LEB128-style variable-length integer encoding.
//!
//! Used by the RLE-compressed commit history files (§3.2: run lengths are
//! small most of the time but unbounded) and by the git-like baseline's
//! object and packfile formats.

use crate::error::{DbError, Result};

/// Appends `v` to `out` as an unsigned LEB128 varint (1–10 bytes).
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a varint from `buf[*pos..]`, advancing `*pos`.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| DbError::corrupt("varint truncated"))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(DbError::corrupt("varint overflows u64"));
        }
        result |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
        if shift > 63 {
            return Err(DbError::corrupt("varint too long"));
        }
    }
}

/// Encoded length of `v` in bytes without materializing the encoding.
pub fn encoded_len(v: u64) -> usize {
    if v == 0 {
        return 1;
    }
    (64 - v.leading_zeros() as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        assert_eq!(buf.len(), encoded_len(v), "encoded_len mismatch for {v}");
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn roundtrips_edge_values() {
        for v in [
            0,
            1,
            127,
            128,
            255,
            256,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            roundtrip(v);
        }
    }

    #[test]
    fn sequential_decode() {
        let mut buf = Vec::new();
        for v in 0..100u64 {
            write_u64(&mut buf, v * 7919);
        }
        let mut pos = 0;
        for v in 0..100u64 {
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v * 7919);
        }
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn overlong_input_errors() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }
}
