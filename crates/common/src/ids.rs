//! Strongly-typed identifiers for the versioning model.
//!
//! The Decibel paper (§2.2.2) identifies *versions* (commits) by id,
//! maintains *branches* as named working copies whose heads are commits, and
//! (in the version-first / hybrid schemes, §3.3–3.4) stores data in
//! *segments*. Records within a heap file are addressed by their slot index.
//! Newtypes keep these id spaces from being confused at compile time.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $repr:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub fn raw(self) -> $repr {
                self.0
            }

            /// Returns the id as a `usize`, for indexing into vectors.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(v: $repr) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies a branch (a live working copy of the dataset).
    ///
    /// Branch ids are dense: the `n`-th branch created gets id `n`, so every
    /// engine can use them to index bitmap columns and per-branch tables.
    /// Branch 0 is always `master` (the paper's authoritative branch of
    /// record, §2.2.2).
    BranchId, u32
);

id_type!(
    /// Identifies a committed version (a point-in-time snapshot, §2.2.2).
    ///
    /// Commit ids are dense and monotonically increasing in creation order;
    /// the version graph records the parent edges.
    CommitId, u64
);

id_type!(
    /// Identifies a segment file in the version-first and hybrid schemes.
    SegmentId, u32
);

id_type!(
    /// The slot index of a record inside a heap file (records are fixed
    /// width, so the index determines the byte offset).
    RecordIdx, u64
);

impl BranchId {
    /// The id of the initial `master` branch.
    pub const MASTER: BranchId = BranchId(0);
}

impl CommitId {
    /// The id of the `init` commit that creates the dataset (§2.2.3).
    pub const INIT: CommitId = CommitId(0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types_with_raw_access() {
        let b = BranchId(3);
        let c = CommitId(3);
        assert_eq!(b.raw(), 3u32);
        assert_eq!(c.raw(), 3u64);
        assert_eq!(b.index(), c.index());
    }

    #[test]
    fn display_names_the_type() {
        assert_eq!(BranchId(7).to_string(), "BranchId(7)");
        assert_eq!(SegmentId(1).to_string(), "SegmentId(1)");
    }

    #[test]
    fn ids_hash_and_order() {
        let mut set = HashSet::new();
        set.insert(RecordIdx(1));
        set.insert(RecordIdx(1));
        set.insert(RecordIdx(2));
        assert_eq!(set.len(), 2);
        assert!(CommitId(1) < CommitId(2));
    }

    #[test]
    fn master_and_init_constants() {
        assert_eq!(BranchId::MASTER, BranchId(0));
        assert_eq!(CommitId::INIT, CommitId(0));
    }
}
