//! Records and their fixed-width serialization.
//!
//! A [`Record`] is one tuple of a versioned relation: a primary key plus the
//! data columns declared by the relation's [`Schema`].
//! Every storage engine in Decibel copies complete records on update
//! (no-overwrite storage, §5.5) and the version-first scheme needs delete
//! *tombstones* — "a special record with a deleted header bit to indicate the
//! key of the record that was deleted" (§3.3) — so the serialized form
//! carries a one-byte header whose bit 0 marks tombstones.

use crate::error::{DbError, Result};
use crate::projection::Projection;
use crate::schema::{ColumnType, Schema, KEY_BYTES, RECORD_HEADER_BYTES};

/// Header flag bit marking a delete tombstone.
const FLAG_TOMBSTONE: u8 = 0b0000_0001;

/// One tuple: an immutable primary key plus fixed-width integer fields.
///
/// Field values are held as `u64` regardless of the schema's column width;
/// serialization narrows them to the declared [`ColumnType`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    key: u64,
    fields: Vec<u64>,
    tombstone: bool,
}

impl Record {
    /// Creates a live record with the given key and field values.
    pub fn new(key: u64, fields: Vec<u64>) -> Self {
        Record {
            key,
            fields,
            tombstone: false,
        }
    }

    /// Creates a delete tombstone for `key` under `schema` (tombstones carry
    /// zeroed fields so records stay fixed-width, as in the paper's
    /// version-first segment files).
    pub fn tombstone(key: u64, schema: &Schema) -> Self {
        Record {
            key,
            fields: vec![0; schema.num_columns()],
            tombstone: true,
        }
    }

    /// The immutable primary key that tracks this record across versions.
    #[inline]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The data fields (empty semantics for tombstones).
    #[inline]
    pub fn fields(&self) -> &[u64] {
        &self.fields
    }

    /// Returns the value of data column `i`.
    #[inline]
    pub fn field(&self, i: usize) -> u64 {
        self.fields[i]
    }

    /// Mutably updates data column `i` (used by workload generators; engines
    /// never mutate stored records in place).
    pub fn set_field(&mut self, i: usize, v: u64) {
        self.fields[i] = v;
    }

    /// Mutable access to the data fields (projection support).
    #[inline]
    pub(crate) fn fields_mut(&mut self) -> &mut [u64] {
        &mut self.fields
    }

    /// Whether this record is a delete tombstone.
    #[inline]
    pub fn is_tombstone(&self) -> bool {
        self.tombstone
    }

    /// Serializes into `buf` (which must be exactly `schema.record_size()`
    /// bytes). Values wider than the column type are truncated, mirroring a
    /// fixed-width relational layout.
    pub fn write_to(&self, schema: &Schema, buf: &mut [u8]) -> Result<()> {
        schema.check_arity(self.fields.len())?;
        debug_assert_eq!(buf.len(), schema.record_size());
        buf[0] = if self.tombstone { FLAG_TOMBSTONE } else { 0 };
        buf[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + KEY_BYTES]
            .copy_from_slice(&self.key.to_le_bytes());
        let mut off = RECORD_HEADER_BYTES + KEY_BYTES;
        match schema.column_type() {
            ColumnType::U32 => {
                for &v in &self.fields {
                    buf[off..off + 4].copy_from_slice(&(v as u32).to_le_bytes());
                    off += 4;
                }
            }
            ColumnType::U64 => {
                for &v in &self.fields {
                    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
                    off += 8;
                }
            }
        }
        Ok(())
    }

    /// Serializes into a fresh buffer of `schema.record_size()` bytes.
    pub fn to_bytes(&self, schema: &Schema) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; schema.record_size()];
        self.write_to(schema, &mut buf)?;
        Ok(buf)
    }

    /// Deserializes a record from a fixed-width slot.
    pub fn read_from(schema: &Schema, buf: &[u8]) -> Result<Record> {
        if buf.len() != schema.record_size() {
            return Err(DbError::corrupt(format!(
                "record slot is {} bytes, schema says {}",
                buf.len(),
                schema.record_size()
            )));
        }
        let tombstone = buf[0] & FLAG_TOMBSTONE != 0;
        let key = u64::from_le_bytes(
            buf[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + KEY_BYTES]
                .try_into()
                .unwrap(),
        );
        let mut fields = Vec::with_capacity(schema.num_columns());
        let body = &buf[RECORD_HEADER_BYTES + KEY_BYTES..];
        // `chunks_exact` lets the compiler hoist the bounds checks out of
        // the per-field loop — this decode is the inner loop of every scan.
        match schema.column_type() {
            ColumnType::U32 => {
                fields.extend(
                    body.chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap()) as u64),
                );
            }
            ColumnType::U64 => {
                fields.extend(
                    body.chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().unwrap())),
                );
            }
        }
        debug_assert_eq!(fields.len(), schema.num_columns());
        Ok(Record {
            key,
            fields,
            tombstone,
        })
    }

    /// Deserializes only the projected columns from a full-width slot;
    /// non-projected fields read as `0`. Equivalent to
    /// [`Record::read_from`] + [`Record::project`] without decoding the
    /// skipped columns — the inner loop of a projected scan.
    pub fn read_projected(schema: &Schema, buf: &[u8], projection: &Projection) -> Result<Record> {
        let Projection::Columns(cols) = projection else {
            return Record::read_from(schema, buf);
        };
        if buf.len() != schema.record_size() {
            return Err(DbError::corrupt(format!(
                "record slot is {} bytes, schema says {}",
                buf.len(),
                schema.record_size()
            )));
        }
        let (key, tombstone) = Record::peek_key(buf);
        let mut fields = vec![0u64; schema.num_columns()];
        for &c in cols {
            fields[c] = Record::read_raw_field(schema, buf, c);
        }
        Ok(Record {
            key,
            fields,
            tombstone,
        })
    }

    /// Reads data column `col` straight from a full-width slot without
    /// decoding anything else. The caller guarantees `col` is in range and
    /// `buf` is a whole slot ([`Schema::record_size`] bytes).
    #[inline]
    pub fn read_raw_field(schema: &Schema, buf: &[u8], col: usize) -> u64 {
        let off = schema.col_offset(col);
        match schema.column_type() {
            ColumnType::U32 => u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as u64,
            ColumnType::U64 => u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()),
        }
    }

    /// Serializes the projected image — header + key + projected column
    /// bytes in ascending column order ([`Projection::image_size`] bytes)
    /// — appending to `out`. This is what scan batches ship on the wire:
    /// a 2-of-12-column query moves 2 columns, not 12.
    pub fn write_projected_image(
        &self,
        schema: &Schema,
        projection: &Projection,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let Projection::Columns(cols) = projection else {
            let start = out.len();
            out.resize(start + schema.record_size(), 0);
            return self.write_to(schema, &mut out[start..]);
        };
        schema.check_arity(self.fields.len())?;
        out.push(if self.tombstone { FLAG_TOMBSTONE } else { 0 });
        out.extend_from_slice(&self.key.to_le_bytes());
        for &c in cols {
            let v = self.fields[c];
            match schema.column_type() {
                ColumnType::U32 => out.extend_from_slice(&(v as u32).to_le_bytes()),
                ColumnType::U64 => out.extend_from_slice(&v.to_le_bytes()),
            }
        }
        Ok(())
    }

    /// Deserializes a projected image written by
    /// [`Record::write_projected_image`]; non-projected fields read as
    /// `0`. `buf` must be exactly [`Projection::image_size`] bytes.
    pub fn read_projected_image(
        schema: &Schema,
        buf: &[u8],
        projection: &Projection,
    ) -> Result<Record> {
        let Projection::Columns(cols) = projection else {
            return Record::read_from(schema, buf);
        };
        if buf.len() != projection.image_size(schema) {
            return Err(DbError::corrupt(format!(
                "projected record image is {} bytes, projection says {}",
                buf.len(),
                projection.image_size(schema)
            )));
        }
        let (key, tombstone) = Record::peek_key(buf);
        let mut fields = vec![0u64; schema.num_columns()];
        let mut off = RECORD_HEADER_BYTES + KEY_BYTES;
        let width = schema.column_type().width();
        for &c in cols {
            fields[c] = match schema.column_type() {
                ColumnType::U32 => u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as u64,
                ColumnType::U64 => u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()),
            };
            off += width;
        }
        Ok(Record {
            key,
            fields,
            tombstone,
        })
    }

    /// Reads only the header and key of a serialized record — used by scans
    /// that filter before paying full deserialization.
    pub fn peek_key(buf: &[u8]) -> (u64, bool) {
        let tombstone = buf[0] & FLAG_TOMBSTONE != 0;
        let key = u64::from_le_bytes(
            buf[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + KEY_BYTES]
                .try_into()
                .unwrap(),
        );
        (key, tombstone)
    }

    /// Returns the indexes of data columns whose values differ between
    /// `self` and `other`. Used by three-way merges to find field-level
    /// conflicts (§2.2.3: "two records ... conflict if they (a) have the same
    /// primary key and (b) different field values").
    pub fn changed_fields(&self, other: &Record) -> Vec<usize> {
        debug_assert_eq!(self.fields.len(), other.fields.len());
        (0..self.fields.len())
            .filter(|&i| self.fields[i] != other.fields[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};

    fn schema3() -> Schema {
        Schema::new(3, ColumnType::U32)
    }

    #[test]
    fn roundtrip_u32() {
        let s = schema3();
        let r = Record::new(42, vec![1, 2, 3]);
        let bytes = r.to_bytes(&s).unwrap();
        assert_eq!(bytes.len(), s.record_size());
        let back = Record::read_from(&s, &bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn roundtrip_u64() {
        let s = Schema::new(2, ColumnType::U64);
        let r = Record::new(u64::MAX, vec![u64::MAX, 7]);
        let back = Record::read_from(&s, &r.to_bytes(&s).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn u32_columns_truncate_wide_values() {
        let s = schema3();
        let r = Record::new(1, vec![u64::MAX, 0, 0]);
        let back = Record::read_from(&s, &r.to_bytes(&s).unwrap()).unwrap();
        assert_eq!(back.field(0), u32::MAX as u64);
    }

    #[test]
    fn tombstone_roundtrip() {
        let s = schema3();
        let t = Record::tombstone(9, &s);
        assert!(t.is_tombstone());
        let back = Record::read_from(&s, &t.to_bytes(&s).unwrap()).unwrap();
        assert!(back.is_tombstone());
        assert_eq!(back.key(), 9);
    }

    #[test]
    fn peek_key_reads_header_only() {
        let s = schema3();
        let bytes = Record::new(77, vec![0, 0, 0]).to_bytes(&s).unwrap();
        assert_eq!(Record::peek_key(&bytes), (77, false));
        let t = Record::tombstone(78, &s).to_bytes(&s).unwrap();
        assert_eq!(Record::peek_key(&t), (78, true));
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let s = schema3();
        let r = Record::new(1, vec![1, 2]);
        assert!(r.to_bytes(&s).is_err());
    }

    #[test]
    fn wrong_slot_size_is_corrupt() {
        let s = schema3();
        let err = Record::read_from(&s, &[0u8; 4]).unwrap_err();
        assert!(matches!(err, crate::error::DbError::Corrupt { .. }));
    }

    #[test]
    fn projected_decode_matches_decode_then_project() {
        for ct in [ColumnType::U32, ColumnType::U64] {
            let s = Schema::new(4, ct);
            let r = Record::new(9, vec![11, 22, 33, 44]);
            let slot = r.to_bytes(&s).unwrap();
            for proj in [
                Projection::all(),
                Projection::of(&[]),
                Projection::of(&[0]),
                Projection::of(&[1, 3]),
                Projection::of(&[0, 1, 2, 3]),
            ] {
                let fast = Record::read_projected(&s, &slot, &proj).unwrap();
                let mut reference = Record::read_from(&s, &slot).unwrap();
                reference.project(&proj);
                assert_eq!(fast, reference, "{proj:?}");
            }
            assert_eq!(Record::read_raw_field(&s, &slot, 2), 33);
        }
    }

    #[test]
    fn projected_image_round_trips() {
        let s = Schema::new(4, ColumnType::U32);
        let r = Record::new(77, vec![1, 2, 3, 4]);
        let proj = Projection::of(&[1, 3]);
        let mut img = Vec::new();
        r.write_projected_image(&s, &proj, &mut img).unwrap();
        assert_eq!(img.len(), proj.image_size(&s));
        let back = Record::read_projected_image(&s, &img, &proj).unwrap();
        assert_eq!(back.key(), 77);
        assert_eq!(back.fields(), &[0, 2, 0, 4]);
        // The All projection is byte-identical to the full image.
        let mut full = Vec::new();
        r.write_projected_image(&s, &Projection::All, &mut full)
            .unwrap();
        assert_eq!(full, r.to_bytes(&s).unwrap());
        // Tombstone flag survives the projected form.
        let t = Record::tombstone(5, &s);
        let mut img = Vec::new();
        t.write_projected_image(&s, &proj, &mut img).unwrap();
        assert!(Record::read_projected_image(&s, &img, &proj)
            .unwrap()
            .is_tombstone());
        // A truncated image is corrupt, not a short record.
        assert!(Record::read_projected_image(&s, &img[..img.len() - 1], &proj).is_err());
    }

    #[test]
    fn changed_fields_reports_diffs() {
        let a = Record::new(1, vec![1, 2, 3]);
        let mut b = a.clone();
        b.set_field(1, 99);
        assert_eq!(a.changed_fields(&b), vec![1]);
        assert!(a.changed_fields(&a.clone()).is_empty());
    }
}
