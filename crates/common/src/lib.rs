//! Shared foundations for the Decibel reproduction.
//!
//! This crate holds everything the storage engines, the version graph, the
//! git-like baseline, and the benchmark harness agree on:
//!
//! * the logical data model ([`schema::Schema`], [`record::Record`]) — a
//!   relation of fixed-width integer columns with an immutable integer
//!   primary key, exactly the shape the Decibel paper generates in §4.2;
//! * strongly-typed identifiers ([`ids`]) for branches, commits, segments
//!   and record slots;
//! * the crate-wide error type ([`error::DbError`]);
//! * a deterministic random number generator ([`rng::DetRng`]) — the paper's
//!   benchmark requires deterministically seeded data generation (§5.6), so
//!   we implement SplitMix64/xoshiro256** from scratch rather than depend on
//!   an external RNG whose stream might change between versions;
//! * small codec helpers ([`varint`]) and a fast non-cryptographic hash
//!   ([`hash`]) used for primary-key indexes and merge hash-joins;
//! * the disk IO environment ([`env::DiskEnv`]) every durability-bearing
//!   path writes through — [`env::StdEnv`] in production, [`env::FaultEnv`]
//!   under fault injection — plus the shared CRC-32 ([`crc`]) and the
//!   durable-replace primitives ([`fsio`]).

pub mod crc;
pub mod env;
pub mod error;
pub mod fsio;
pub mod hash;
pub mod ids;
pub mod projection;
pub mod record;
pub mod rng;
pub mod schema;
pub mod varint;

pub use env::{std_env, DiskEnv, DiskFile, FaultEnv, OpenMode, StdEnv};
pub use error::{DbError, ErrorCode, Result};
pub use ids::{BranchId, CommitId, RecordIdx, SegmentId};
pub use projection::Projection;
pub use record::Record;
pub use rng::DetRng;
pub use schema::{ColumnType, Schema};
