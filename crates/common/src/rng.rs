//! Deterministic random number generation.
//!
//! The Decibel benchmark deterministically seeds its random number generator
//! "to ensure each scheme performs the same set of operations in the same
//! order" (§5.6). To guarantee that property across library versions we
//! implement the generator ourselves: a SplitMix64 seeder feeding
//! xoshiro256\*\* (Blackman & Vigna), both public-domain algorithms with
//! well-known reference outputs.

/// A deterministic xoshiro256\*\* generator seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed. Equal seeds produce equal
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection
    /// method (unbiased). Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Fast path for powers of two.
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli draw: true with probability `num/denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Chooses a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below_usize(items.len())]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Forks a child generator whose stream is independent of (but fully
    /// determined by) this one — handy for giving each benchmark phase its
    /// own stream.
    pub fn fork(&mut self) -> DetRng {
        DetRng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1000 draws");
    }

    #[test]
    fn below_power_of_two() {
        let mut rng = DetRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(rng.below(64) < 64);
        }
    }

    #[test]
    fn range_bounds() {
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = DetRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.chance(1, 5)).count();
        // 20% +/- generous slack.
        assert!((1500..2500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = DetRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = DetRng::seed_from_u64(100);
        let mut b = DetRng::seed_from_u64(100);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
    }
}
