//! Column projections: the set of data columns a scan materializes.
//!
//! Records are fixed-width ([`Schema::record_size`]), so every column of
//! every slot sits at a statically known byte offset
//! ([`Schema::col_offset`]). A [`Projection`] names the column subset a
//! query actually needs; the scan pipeline uses it to decode only those
//! columns ([`Record::read_projected`]) and the wire protocol uses it to
//! ship only those bytes ([`Record::write_projected_image`]).
//!
//! # Semantics
//!
//! A projected [`Record`] keeps the schema's full arity: non-projected
//! fields read as `0`. This keeps one record type (and one fixed arity
//! invariant) flowing through the whole system — equality between a
//! projected scan and a full scan is checked by projecting the full rows
//! with [`Record::project`], which zeroes the same fields.

use crate::error::{DbError, Result};
use crate::record::Record;
use crate::schema::{Schema, KEY_BYTES, RECORD_HEADER_BYTES};

/// The column subset a scan decodes and returns.
///
/// Construct with [`Projection::all`] (every column — the default) or
/// [`Projection::of`] (an explicit subset; order and duplicates are
/// normalized away). Validate against a schema with
/// [`Projection::validate`] before use on untrusted input (the wire
/// protocol does this server-side and reports unknown columns as typed
/// [`DbError::Invalid`] errors).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub enum Projection {
    /// Decode every data column (whole-record scans).
    #[default]
    All,
    /// Decode exactly these data columns (sorted, deduplicated).
    /// Non-projected fields of the resulting records read as `0`.
    Columns(Vec<usize>),
}

impl Projection {
    /// The whole-record projection.
    pub fn all() -> Projection {
        Projection::All
    }

    /// A projection of exactly `cols` (sorted and deduplicated).
    pub fn of(cols: &[usize]) -> Projection {
        let mut cols = cols.to_vec();
        cols.sort_unstable();
        cols.dedup();
        Projection::Columns(cols)
    }

    /// Whether this projection decodes every column.
    #[inline]
    pub fn is_all(&self) -> bool {
        matches!(self, Projection::All)
    }

    /// Whether data column `col` is materialized.
    #[inline]
    pub fn contains(&self, col: usize) -> bool {
        match self {
            Projection::All => true,
            Projection::Columns(cols) => cols.binary_search(&col).is_ok(),
        }
    }

    /// The explicit column list, or `None` for [`Projection::All`].
    pub fn columns(&self) -> Option<&[usize]> {
        match self {
            Projection::All => None,
            Projection::Columns(cols) => Some(cols),
        }
    }

    /// Number of columns shipped under `schema`.
    pub fn num_columns(&self, schema: &Schema) -> usize {
        match self {
            Projection::All => schema.num_columns(),
            Projection::Columns(cols) => cols.len(),
        }
    }

    /// Rejects columns outside `schema` with a typed [`DbError::Invalid`]
    /// (the error a remote `.select(&[..])` with an unknown column gets
    /// back across the wire).
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if let Projection::Columns(cols) = self {
            for &c in cols {
                if c >= schema.num_columns() {
                    return Err(DbError::Invalid(format!(
                        "projection column {c} out of range (schema has {} columns)",
                        schema.num_columns()
                    )));
                }
            }
        }
        Ok(())
    }

    /// The smallest projection containing both `self` and `other` — the
    /// planner's "required column set" combinator (projected columns ∪
    /// predicate columns when a predicate cannot be pushed to page level).
    pub fn union(&self, other: &Projection) -> Projection {
        match (self, other) {
            (Projection::All, _) | (_, Projection::All) => Projection::All,
            (Projection::Columns(a), Projection::Columns(b)) => {
                let mut cols = a.clone();
                cols.extend_from_slice(b);
                Projection::of(&cols)
            }
        }
    }

    /// Builder-style accumulation for `.select(&cols)` chains: the first
    /// select on [`Projection::All`] narrows to exactly `cols`; selecting
    /// again *adds* columns (selections union).
    pub fn narrow(&self, cols: &[usize]) -> Projection {
        match self {
            Projection::All => Projection::of(cols),
            Projection::Columns(_) => self.union(&Projection::of(cols)),
        }
    }

    /// Serialized size of one projected record image under `schema`:
    /// header + key + projected columns. Equals [`Schema::record_size`]
    /// for [`Projection::All`].
    pub fn image_size(&self, schema: &Schema) -> usize {
        RECORD_HEADER_BYTES + KEY_BYTES + self.num_columns(schema) * schema.column_type().width()
    }
}

impl Record {
    /// Zeroes every non-projected field in place — the reference
    /// definition of projection the projected decode paths must match.
    pub fn project(&mut self, projection: &Projection) {
        if let Projection::Columns(cols) = projection {
            let mut keep = cols.iter().copied().peekable();
            for (i, f) in self.fields_mut().iter_mut().enumerate() {
                if keep.peek() == Some(&i) {
                    keep.next();
                } else {
                    *f = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    #[test]
    fn of_normalizes() {
        assert_eq!(
            Projection::of(&[3, 1, 3, 0]),
            Projection::Columns(vec![0, 1, 3])
        );
        assert!(Projection::of(&[2]).contains(2));
        assert!(!Projection::of(&[2]).contains(1));
        assert!(Projection::all().contains(99));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let s = Schema::new(4, ColumnType::U32);
        assert!(Projection::of(&[0, 3]).validate(&s).is_ok());
        assert!(Projection::all().validate(&s).is_ok());
        let err = Projection::of(&[4]).validate(&s).unwrap_err();
        assert!(matches!(err, DbError::Invalid(_)), "{err}");
    }

    #[test]
    fn union_is_set_union() {
        let a = Projection::of(&[0, 2]);
        let b = Projection::of(&[2, 3]);
        assert_eq!(a.union(&b), Projection::of(&[0, 2, 3]));
        assert_eq!(a.union(&Projection::All), Projection::All);
    }

    #[test]
    fn narrow_accumulates_selections() {
        assert_eq!(Projection::All.narrow(&[2, 0]), Projection::of(&[0, 2]));
        assert_eq!(
            Projection::of(&[0]).narrow(&[3]),
            Projection::of(&[0, 3]),
            "second select adds columns"
        );
    }

    #[test]
    fn image_size_tracks_subset() {
        let s = Schema::new(12, ColumnType::U32);
        assert_eq!(Projection::all().image_size(&s), s.record_size());
        assert_eq!(Projection::of(&[1, 7]).image_size(&s), 1 + 8 + 2 * 4);
    }

    #[test]
    fn project_zeroes_the_complement() {
        let mut r = Record::new(5, vec![10, 20, 30, 40]);
        r.project(&Projection::of(&[1, 3]));
        assert_eq!(r.fields(), &[0, 20, 0, 40]);
        let mut r = Record::new(5, vec![10, 20]);
        r.project(&Projection::All);
        assert_eq!(r.fields(), &[10, 20]);
    }
}
