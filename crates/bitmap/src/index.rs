//! The version-index abstraction shared by both bitmap orientations.

use decibel_common::ids::BranchId;

use crate::bitmap::Bitmap;

/// A bitmap index mapping (branch, record row) → liveness.
///
/// The tuple-first engine is generic over this trait so the paper's two
/// physical orientations (§3.1) — branch-oriented and tuple-oriented — can
/// be compared without forking engine code. Hybrid reuses the
/// branch-oriented implementation for its per-segment local indexes.
pub trait VersionIndex: Send + Sync {
    /// Number of record rows tracked (rows are dense `0..num_rows`).
    fn num_rows(&self) -> u64;

    /// Number of branches registered.
    fn num_branches(&self) -> usize;

    /// Whether `b` has been registered.
    fn has_branch(&self, b: BranchId) -> bool;

    /// Registers branch `b`. When `parent` is given, the new branch starts
    /// as a copy of the parent's liveness column — the paper's branch
    /// operation "clones the state of the parent branch's bitmap" (§3.2).
    fn add_branch(&mut self, b: BranchId, parent: Option<BranchId>);

    /// Extends the row space to at least `rows` (new rows dead everywhere).
    fn ensure_rows(&mut self, rows: u64);

    /// Sets the liveness bit of `row` in branch `b`.
    fn set(&mut self, b: BranchId, row: u64, v: bool);

    /// Reads the liveness bit of `row` in branch `b`.
    fn get(&self, b: BranchId, row: u64) -> bool;

    /// Materializes branch `b`'s liveness column as a [`Bitmap`].
    ///
    /// Branch-oriented indexes return a clone of the stored column;
    /// tuple-oriented indexes must walk every row — the cost asymmetry the
    /// paper calls out ("in the latter case the entire bitmap must be
    /// scanned", §3.2).
    fn branch_bitmap(&self, b: BranchId) -> Bitmap;

    /// Zero-copy access to branch `b`'s column when the orientation stores
    /// one (branch-oriented only).
    fn branch_ref(&self, b: BranchId) -> Option<&Bitmap> {
        let _ = b;
        None
    }

    /// Overwrites branch `b`'s column (used when checking out a historical
    /// commit snapshot into a session).
    fn restore_branch(&mut self, b: BranchId, bm: &Bitmap);

    /// Approximate in-memory footprint in bytes.
    fn byte_size(&self) -> usize;
}

/// Materializes the union of several branches' columns.
pub fn union_of(index: &dyn VersionIndex, branches: &[BranchId]) -> Bitmap {
    let mut acc = Bitmap::zeros(index.num_rows());
    for &b in branches {
        match index.branch_ref(b) {
            Some(col) => acc = acc.or(col),
            None => acc = acc.or(&index.branch_bitmap(b)),
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_index::BranchBitmapIndex;
    use crate::tuple_index::TupleBitmapIndex;

    /// Generic conformance suite run against both orientations.
    fn conformance(index: &mut dyn VersionIndex) {
        let a = BranchId(0);
        let b = BranchId(1);
        index.add_branch(a, None);
        assert!(index.has_branch(a));
        assert!(!index.has_branch(b));

        index.ensure_rows(10);
        index.set(a, 0, true);
        index.set(a, 7, true);
        assert!(index.get(a, 0));
        assert!(!index.get(a, 1));

        // Branching clones the parent column.
        index.add_branch(b, Some(a));
        assert!(index.get(b, 0));
        assert!(index.get(b, 7));

        // Divergence after the branch point.
        index.set(a, 0, false);
        index.ensure_rows(11);
        index.set(b, 10, true);
        assert!(!index.get(a, 0));
        assert!(index.get(b, 0));
        assert!(!index.get(a, 10));

        let col_a = index.branch_bitmap(a);
        let col_b = index.branch_bitmap(b);
        assert_eq!(col_a.iter_ones().collect::<Vec<_>>(), vec![7]);
        assert_eq!(col_b.iter_ones().collect::<Vec<_>>(), vec![0, 7, 10]);

        // Restore rolls a column back to a snapshot.
        index.restore_branch(a, &col_b);
        assert!(index.get(a, 10));

        assert!(index.byte_size() > 0);
        assert_eq!(index.num_branches(), 2);
        assert!(index.num_rows() >= 11);
    }

    #[test]
    fn branch_oriented_conforms() {
        let mut idx = BranchBitmapIndex::new();
        conformance(&mut idx);
    }

    #[test]
    fn tuple_oriented_conforms() {
        let mut idx = TupleBitmapIndex::new();
        conformance(&mut idx);
    }

    #[test]
    fn union_of_merges_columns() {
        for oriented in [true, false] {
            let mut bo = BranchBitmapIndex::new();
            let mut to = TupleBitmapIndex::new();
            let index: &mut dyn VersionIndex = if oriented { &mut bo } else { &mut to };
            index.add_branch(BranchId(0), None);
            index.add_branch(BranchId(1), None);
            index.ensure_rows(5);
            index.set(BranchId(0), 1, true);
            index.set(BranchId(1), 3, true);
            let u = union_of(index, &[BranchId(0), BranchId(1)]);
            assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 3]);
        }
    }
}
