//! A growable bitset with word-level bulk operations.

/// A dynamically sized bitset backed by `u64` words.
///
/// Used for branch liveness columns, commit snapshots, and diff results.
/// Bulk operations (`or`, `xor`, `and_not`, ...) work a word at a time —
/// the property that makes multi-branch queries cheap in the tuple-first
/// and hybrid schemes ("Bitmaps are space-efficient and can be quickly
/// intersected for multi-branch operations", §3.1).
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    /// Logical length in bits (bits at or past `len` are zero).
    len: u64,
}

impl PartialEq for Bitmap {
    /// Logical equality: same length, same bits. (The backing word vector
    /// may carry different amounts of zero padding from growth doubling.)
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let n = self.len.div_ceil(64) as usize;
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for Bitmap {}

impl Bitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Creates a bitmap of `len` zero bits.
    pub fn zeros(len: u64) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64) as usize],
            len,
        }
    }

    /// Logical length in bits.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grows the logical length to at least `len` bits (zero-filled).
    pub fn grow(&mut self, len: u64) {
        if len > self.len {
            self.len = len;
            let need = len.div_ceil(64) as usize;
            if need > self.words.len() {
                // Amortized doubling, as §3.2 prescribes for branch clones.
                let target = need.max(self.words.len() * 2);
                self.words.resize(target, 0);
            }
        }
    }

    /// Sets bit `i` to `v`, growing the bitmap if needed. Clearing a bit at
    /// or past the end is a no-op (bits there already read as false), so it
    /// never grows or reallocates.
    #[inline]
    pub fn set(&mut self, i: u64, v: bool) {
        if !v && i >= self.len {
            return;
        }
        self.grow(i + 1);
        let word = (i / 64) as usize;
        let mask = 1u64 << (i % 64);
        if v {
            self.words[word] |= mask;
        } else {
            self.words[word] &= !mask;
        }
    }

    /// Returns bit `i` (bits past the end read as false).
    #[inline]
    pub fn get(&self, i: u64) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Returns the index of the first set bit at or after `from`, skipping
    /// zero words — the primitive owned (self-contained) scan cursors use.
    pub fn next_one(&self, from: u64) -> Option<u64> {
        if from >= self.len {
            return None;
        }
        let mut word_idx = (from / 64) as usize;
        let mut word = self.words[word_idx] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                let idx = word_idx as u64 * 64 + word.trailing_zeros() as u64;
                return if idx < self.len { Some(idx) } else { None };
            }
            word_idx += 1;
            if word_idx >= self.words.len() {
                return None;
            }
            word = self.words[word_idx];
        }
    }

    /// Iterates the indexes of set bits in ascending order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            len: self.len,
        }
    }

    fn binary_op(&self, other: &Bitmap, f: impl Fn(u64, u64) -> u64) -> Bitmap {
        let len = self.len.max(other.len);
        let nwords = len.div_ceil(64) as usize;
        let mut words = Vec::with_capacity(nwords);
        for i in 0..nwords {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            words.push(f(a, b));
        }
        Bitmap { words, len }
    }

    /// Bitwise OR (union of live sets).
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        self.binary_op(other, |a, b| a | b)
    }

    /// Bitwise AND (records live in both branches).
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        self.binary_op(other, |a, b| a & b)
    }

    /// Bitwise XOR — the paper's diff primitive ("we simply XOR bitmaps
    /// together", §3.2) and its commit-delta encoding.
    pub fn xor(&self, other: &Bitmap) -> Bitmap {
        self.binary_op(other, |a, b| a ^ b)
    }

    /// Bitwise AND-NOT: records live in `self` but not `other` (positive
    /// diff).
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        self.binary_op(other, |a, b| a & !b)
    }

    /// In-place XOR, used when replaying commit delta chains.
    pub fn xor_assign(&mut self, other: &Bitmap) {
        let len = self.len.max(other.len);
        self.grow(len);
        for (i, &w) in other.words.iter().enumerate() {
            if w != 0 {
                self.words[i] ^= w;
            }
        }
    }

    /// In-place OR: `self |= other`. Equivalent to [`Bitmap::or`] without
    /// allocating a result vector — the primitive multi-branch scan
    /// planning uses to build union liveness bitmaps.
    pub fn or_assign(&mut self, other: &Bitmap) {
        self.grow(other.len);
        for (i, &w) in other.words.iter().enumerate() {
            if w != 0 {
                self.words[i] |= w;
            }
        }
    }

    /// In-place AND: `self &= other`. Matches [`Bitmap::and`] (the result
    /// length is the max of the two, with every bit past the shorter
    /// operand cleared).
    pub fn and_assign(&mut self, other: &Bitmap) {
        self.grow(other.len);
        let n = self.len.div_ceil(64) as usize;
        for i in 0..n {
            let w = other.words.get(i).copied().unwrap_or(0);
            self.words[i] &= w;
        }
    }

    /// In-place AND-NOT: `self &= !other`. Matches [`Bitmap::and_not`].
    pub fn and_not_assign(&mut self, other: &Bitmap) {
        self.grow(other.len);
        let n = (self.len.div_ceil(64) as usize).min(other.words.len());
        for i in 0..n {
            let w = other.words[i];
            if w != 0 {
                self.words[i] &= !w;
            }
        }
    }

    /// Overwrites `self` with a copy of `src`, reusing `self`'s word
    /// allocation — the scratch-buffer primitive for loops that derive one
    /// bitmap per iteration (`scratch.copy_from(a); scratch.and_not_assign(b)`
    /// computes `a \ b` with zero steady-state allocation).
    pub fn copy_from(&mut self, src: &Bitmap) {
        self.words.clear();
        self.words.extend_from_slice(&src.words);
        self.len = src.len;
    }

    /// Clears every bit, keeping length and allocation.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Access to the backing words (for codecs). Trailing words may be zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of words covering the logical length.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.len.div_ceil(64) as usize
    }

    /// Word `wi` of the backing storage (64 liveness bits starting at bit
    /// `wi * 64`). Words past the end read as zero, so word-batched loops
    /// need no per-column bounds handling. Bits at or past `len` are zero
    /// by invariant.
    #[inline]
    pub fn word(&self, wi: usize) -> u64 {
        self.words.get(wi).copied().unwrap_or(0)
    }

    /// Iterates the nonzero word chunks as `(base_bit, word)` pairs —
    /// callers consume 64 liveness bits per step instead of probing
    /// `get(i)` per row, and all-dead chunks are skipped outright.
    pub fn iter_words(&self) -> WordChunks<'_> {
        WordChunks {
            words: &self.words[..self.num_words().min(self.words.len())],
            next: 0,
        }
    }

    /// Refines the bitmap in place by ANDing each nonzero word with the
    /// mask `f(base_bit, word)` returns — the fusion point between
    /// page-level predicate evaluation and liveness: the evaluator builds a
    /// 64-slot match word from pinned page bytes and this folds it straight
    /// into the liveness word, so filtering stays branch-free and
    /// word-batched. `f` sees only the currently set bits (its result is
    /// intersected, never unioned) and its first error aborts the walk.
    pub fn try_retain_words<E>(
        &mut self,
        mut f: impl FnMut(u64, u64) -> std::result::Result<u64, E>,
    ) -> std::result::Result<(), E> {
        let n = self.num_words().min(self.words.len());
        for wi in 0..n {
            let w = self.words[wi];
            if w != 0 {
                self.words[wi] = w & f(wi as u64 * 64, w)?;
            }
        }
        Ok(())
    }

    /// Rebuilds from raw words and a logical length. Bits at or past `len`
    /// are cleared to maintain the invariant word-batched readers rely on.
    pub fn from_words(words: Vec<u64>, len: u64) -> Bitmap {
        let mut b = Bitmap { words, len };
        let need = len.div_ceil(64) as usize;
        b.words.resize(need.max(b.words.len()), 0);
        for w in &mut b.words[need..] {
            *w = 0;
        }
        let tail_bits = len % 64;
        if tail_bits != 0 {
            if let Some(last) = b.words.get_mut(need - 1) {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
        b
    }

    /// Approximate heap footprint in bytes (for the paper's index-size
    /// accounting).
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }
}

/// Iterator over nonzero 64-bit word chunks: yields `(base_bit, word)`.
pub struct WordChunks<'a> {
    words: &'a [u64],
    next: usize,
}

impl Iterator for WordChunks<'_> {
    type Item = (u64, u64);

    #[inline]
    fn next(&mut self) -> Option<(u64, u64)> {
        while self.next < self.words.len() {
            let wi = self.next;
            self.next += 1;
            let w = self.words[wi];
            if w != 0 {
                return Some((wi as u64 * 64, w));
            }
        }
        None
    }
}

/// Iterator over set-bit indexes, ascending.
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    len: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as u64;
                self.current &= self.current - 1;
                let idx = self.word_idx as u64 * 64 + bit;
                if idx >= self.len {
                    return None;
                }
                return Some(idx);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_grow() {
        let mut b = Bitmap::new();
        assert!(!b.get(100));
        b.set(100, true);
        assert!(b.get(100));
        assert_eq!(b.len(), 101);
        b.set(100, false);
        assert!(!b.get(100));
        assert_eq!(b.len(), 101);
    }

    #[test]
    fn count_and_iter() {
        let mut b = Bitmap::new();
        for i in [0u64, 63, 64, 65, 1000] {
            b.set(i, true);
        }
        assert_eq!(b.count_ones(), 5);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 65, 1000]);
    }

    #[test]
    fn iter_empty() {
        assert_eq!(Bitmap::new().iter_ones().count(), 0);
        assert_eq!(Bitmap::zeros(200).iter_ones().count(), 0);
    }

    #[test]
    fn binary_ops_on_unequal_lengths() {
        let mut a = Bitmap::new();
        a.set(1, true);
        a.set(200, true);
        let mut b = Bitmap::new();
        b.set(1, true);
        b.set(2, true);
        assert_eq!(a.or(&b).iter_ones().collect::<Vec<_>>(), vec![1, 2, 200]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![1]);
        assert_eq!(a.xor(&b).iter_ones().collect::<Vec<_>>(), vec![2, 200]);
        assert_eq!(a.and_not(&b).iter_ones().collect::<Vec<_>>(), vec![200]);
        assert_eq!(b.and_not(&a).iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn xor_assign_matches_xor() {
        let mut a = Bitmap::new();
        a.set(5, true);
        a.set(70, true);
        let mut b = Bitmap::new();
        b.set(70, true);
        b.set(128, true);
        let expect = a.xor(&b);
        a.xor_assign(&b);
        assert_eq!(
            a.iter_ones().collect::<Vec<_>>(),
            expect.iter_ones().collect::<Vec<_>>()
        );
    }

    #[test]
    fn xor_is_involutive() {
        let mut a = Bitmap::new();
        let mut b = Bitmap::new();
        for i in 0..500 {
            if i % 3 == 0 {
                a.set(i, true);
            }
            if i % 5 == 0 {
                b.set(i, true);
            }
        }
        let mut c = a.clone();
        c.xor_assign(&b);
        c.xor_assign(&b);
        for i in 0..500 {
            assert_eq!(c.get(i), a.get(i));
        }
    }

    #[test]
    fn from_words_roundtrip() {
        let mut a = Bitmap::new();
        a.set(3, true);
        a.set(90, true);
        let b = Bitmap::from_words(a.words().to_vec(), a.len());
        assert_eq!(a, b);
    }

    #[test]
    fn next_one_matches_iter() {
        let mut b = Bitmap::new();
        for i in [0u64, 3, 64, 65, 190, 191] {
            b.set(i, true);
        }
        let mut collected = Vec::new();
        let mut pos = 0;
        while let Some(i) = b.next_one(pos) {
            collected.push(i);
            pos = i + 1;
        }
        assert_eq!(collected, b.iter_ones().collect::<Vec<_>>());
        assert_eq!(b.next_one(192), None);
        assert_eq!(b.next_one(66), Some(190));
    }

    #[test]
    fn grow_is_monotonic() {
        let mut b = Bitmap::new();
        b.grow(10);
        b.grow(5);
        assert_eq!(b.len(), 10);
    }

    #[test]
    fn clearing_past_end_is_a_noop() {
        let mut b = Bitmap::zeros(10);
        b.set(1000, false);
        assert_eq!(b.len(), 10);
        assert_eq!(b.words().len(), 1);
        let mut empty = Bitmap::new();
        empty.set(0, false);
        assert!(empty.is_empty());
        assert_eq!(empty.words().len(), 0);
    }

    fn ragged_pair() -> (Bitmap, Bitmap) {
        let mut a = Bitmap::new();
        let mut b = Bitmap::new();
        for i in [0u64, 5, 63, 64, 130, 300] {
            a.set(i, true);
        }
        for i in [5u64, 64, 65, 500] {
            b.set(i, true);
        }
        (a, b)
    }

    #[test]
    fn in_place_ops_match_allocating() {
        for swap in [false, true] {
            let (mut a, mut b) = ragged_pair();
            if swap {
                std::mem::swap(&mut a, &mut b);
            }
            let mut v = a.clone();
            v.or_assign(&b);
            assert_eq!(v, a.or(&b));
            let mut v = a.clone();
            v.and_assign(&b);
            assert_eq!(v, a.and(&b));
            let mut v = a.clone();
            v.and_not_assign(&b);
            assert_eq!(v, a.and_not(&b));
        }
    }

    #[test]
    fn copy_from_reuses_allocation() {
        let (a, b) = ragged_pair();
        let mut scratch = a.clone();
        let cap = scratch.words().len();
        scratch.copy_from(&b);
        assert_eq!(scratch, b);
        scratch.copy_from(&a);
        scratch.and_not_assign(&b);
        assert_eq!(scratch, a.and_not(&b));
        assert!(scratch.words().len() >= cap.min(scratch.num_words()));
        scratch.clear_all();
        assert_eq!(scratch.count_ones(), 0);
    }

    #[test]
    fn word_chunks_cover_all_ones() {
        let (a, _) = ragged_pair();
        let mut from_words = Vec::new();
        for (base, mut w) in a.iter_words() {
            while w != 0 {
                from_words.push(base + w.trailing_zeros() as u64);
                w &= w - 1;
            }
        }
        assert_eq!(from_words, a.iter_ones().collect::<Vec<_>>());
        // Zero chunks are skipped: only words 0, 1, 2, 4 hold bits.
        assert_eq!(a.iter_words().count(), 4);
        assert_eq!(Bitmap::zeros(640).iter_words().count(), 0);
    }

    #[test]
    fn word_accessor_is_total() {
        let mut b = Bitmap::new();
        b.set(70, true);
        assert_eq!(b.word(1), 1u64 << 6);
        assert_eq!(b.word(0), 0);
        assert_eq!(b.word(99), 0);
        assert_eq!(b.num_words(), 2);
    }

    #[test]
    fn try_retain_words_intersects_and_skips_zero_words() {
        let (a, _) = ragged_pair(); // bits 0,5,63,64,130,300
        let mut b = a.clone();
        let mut seen = Vec::new();
        b.try_retain_words::<()>(|base, w| {
            seen.push((base, w));
            // Keep only even bit positions.
            Ok(0x5555_5555_5555_5555)
        })
        .unwrap();
        let evens: Vec<u64> = a.iter_ones().filter(|i| i % 2 == 0).collect();
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), evens);
        // Zero words (word 3) are never visited.
        assert_eq!(
            seen.iter().map(|&(base, _)| base).collect::<Vec<_>>(),
            vec![0, 64, 128, 256]
        );
        // Errors abort and surface.
        let mut c = a.clone();
        assert_eq!(c.try_retain_words(|_, _| Err("boom")), Err("boom"));
    }

    #[test]
    fn from_words_masks_stray_tail_bits() {
        let b = Bitmap::from_words(vec![u64::MAX], 10);
        assert_eq!(b.count_ones(), 10);
        assert_eq!(b.iter_ones().max(), Some(9));
        assert_eq!(b.iter_words().map(|(_, w)| w).next(), Some(0x3ff));
    }
}
