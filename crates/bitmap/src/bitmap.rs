//! A growable bitset with word-level bulk operations.

/// A dynamically sized bitset backed by `u64` words.
///
/// Used for branch liveness columns, commit snapshots, and diff results.
/// Bulk operations (`or`, `xor`, `and_not`, ...) work a word at a time —
/// the property that makes multi-branch queries cheap in the tuple-first
/// and hybrid schemes ("Bitmaps are space-efficient and can be quickly
/// intersected for multi-branch operations", §3.1).
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    /// Logical length in bits (bits at or past `len` are zero).
    len: u64,
}

impl PartialEq for Bitmap {
    /// Logical equality: same length, same bits. (The backing word vector
    /// may carry different amounts of zero padding from growth doubling.)
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let n = self.len.div_ceil(64) as usize;
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for Bitmap {}

impl Bitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Creates a bitmap of `len` zero bits.
    pub fn zeros(len: u64) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64) as usize],
            len,
        }
    }

    /// Logical length in bits.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grows the logical length to at least `len` bits (zero-filled).
    pub fn grow(&mut self, len: u64) {
        if len > self.len {
            self.len = len;
            let need = len.div_ceil(64) as usize;
            if need > self.words.len() {
                // Amortized doubling, as §3.2 prescribes for branch clones.
                let target = need.max(self.words.len() * 2);
                self.words.resize(target, 0);
            }
        }
    }

    /// Sets bit `i` to `v`, growing the bitmap if needed.
    #[inline]
    pub fn set(&mut self, i: u64, v: bool) {
        self.grow(i + 1);
        let word = (i / 64) as usize;
        let mask = 1u64 << (i % 64);
        if v {
            self.words[word] |= mask;
        } else {
            self.words[word] &= !mask;
        }
    }

    /// Returns bit `i` (bits past the end read as false).
    #[inline]
    pub fn get(&self, i: u64) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Returns the index of the first set bit at or after `from`, skipping
    /// zero words — the primitive owned (self-contained) scan cursors use.
    pub fn next_one(&self, from: u64) -> Option<u64> {
        if from >= self.len {
            return None;
        }
        let mut word_idx = (from / 64) as usize;
        let mut word = self.words[word_idx] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                let idx = word_idx as u64 * 64 + word.trailing_zeros() as u64;
                return if idx < self.len { Some(idx) } else { None };
            }
            word_idx += 1;
            if word_idx >= self.words.len() {
                return None;
            }
            word = self.words[word_idx];
        }
    }

    /// Iterates the indexes of set bits in ascending order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            len: self.len,
        }
    }

    fn binary_op(&self, other: &Bitmap, f: impl Fn(u64, u64) -> u64) -> Bitmap {
        let len = self.len.max(other.len);
        let nwords = len.div_ceil(64) as usize;
        let mut words = Vec::with_capacity(nwords);
        for i in 0..nwords {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            words.push(f(a, b));
        }
        Bitmap { words, len }
    }

    /// Bitwise OR (union of live sets).
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        self.binary_op(other, |a, b| a | b)
    }

    /// Bitwise AND (records live in both branches).
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        self.binary_op(other, |a, b| a & b)
    }

    /// Bitwise XOR — the paper's diff primitive ("we simply XOR bitmaps
    /// together", §3.2) and its commit-delta encoding.
    pub fn xor(&self, other: &Bitmap) -> Bitmap {
        self.binary_op(other, |a, b| a ^ b)
    }

    /// Bitwise AND-NOT: records live in `self` but not `other` (positive
    /// diff).
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        self.binary_op(other, |a, b| a & !b)
    }

    /// In-place XOR, used when replaying commit delta chains.
    pub fn xor_assign(&mut self, other: &Bitmap) {
        let len = self.len.max(other.len);
        self.grow(len);
        for (i, &w) in other.words.iter().enumerate() {
            if w != 0 {
                self.words[i] ^= w;
            }
        }
    }

    /// Access to the backing words (for codecs). Trailing words may be zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds from raw words and a logical length.
    pub fn from_words(words: Vec<u64>, len: u64) -> Bitmap {
        let mut b = Bitmap { words, len };
        let need = len.div_ceil(64) as usize;
        b.words.resize(need.max(b.words.len()), 0);
        b
    }

    /// Approximate heap footprint in bytes (for the paper's index-size
    /// accounting).
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }
}

/// Iterator over set-bit indexes, ascending.
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    len: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as u64;
                self.current &= self.current - 1;
                let idx = self.word_idx as u64 * 64 + bit;
                if idx >= self.len {
                    return None;
                }
                return Some(idx);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_grow() {
        let mut b = Bitmap::new();
        assert!(!b.get(100));
        b.set(100, true);
        assert!(b.get(100));
        assert_eq!(b.len(), 101);
        b.set(100, false);
        assert!(!b.get(100));
        assert_eq!(b.len(), 101);
    }

    #[test]
    fn count_and_iter() {
        let mut b = Bitmap::new();
        for i in [0u64, 63, 64, 65, 1000] {
            b.set(i, true);
        }
        assert_eq!(b.count_ones(), 5);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 65, 1000]);
    }

    #[test]
    fn iter_empty() {
        assert_eq!(Bitmap::new().iter_ones().count(), 0);
        assert_eq!(Bitmap::zeros(200).iter_ones().count(), 0);
    }

    #[test]
    fn binary_ops_on_unequal_lengths() {
        let mut a = Bitmap::new();
        a.set(1, true);
        a.set(200, true);
        let mut b = Bitmap::new();
        b.set(1, true);
        b.set(2, true);
        assert_eq!(a.or(&b).iter_ones().collect::<Vec<_>>(), vec![1, 2, 200]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![1]);
        assert_eq!(a.xor(&b).iter_ones().collect::<Vec<_>>(), vec![2, 200]);
        assert_eq!(a.and_not(&b).iter_ones().collect::<Vec<_>>(), vec![200]);
        assert_eq!(b.and_not(&a).iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn xor_assign_matches_xor() {
        let mut a = Bitmap::new();
        a.set(5, true);
        a.set(70, true);
        let mut b = Bitmap::new();
        b.set(70, true);
        b.set(128, true);
        let expect = a.xor(&b);
        a.xor_assign(&b);
        assert_eq!(
            a.iter_ones().collect::<Vec<_>>(),
            expect.iter_ones().collect::<Vec<_>>()
        );
    }

    #[test]
    fn xor_is_involutive() {
        let mut a = Bitmap::new();
        let mut b = Bitmap::new();
        for i in 0..500 {
            if i % 3 == 0 {
                a.set(i, true);
            }
            if i % 5 == 0 {
                b.set(i, true);
            }
        }
        let mut c = a.clone();
        c.xor_assign(&b);
        c.xor_assign(&b);
        for i in 0..500 {
            assert_eq!(c.get(i), a.get(i));
        }
    }

    #[test]
    fn from_words_roundtrip() {
        let mut a = Bitmap::new();
        a.set(3, true);
        a.set(90, true);
        let b = Bitmap::from_words(a.words().to_vec(), a.len());
        assert_eq!(a, b);
    }

    #[test]
    fn next_one_matches_iter() {
        let mut b = Bitmap::new();
        for i in [0u64, 3, 64, 65, 190, 191] {
            b.set(i, true);
        }
        let mut collected = Vec::new();
        let mut pos = 0;
        while let Some(i) = b.next_one(pos) {
            collected.push(i);
            pos = i + 1;
        }
        assert_eq!(collected, b.iter_ones().collect::<Vec<_>>());
        assert_eq!(b.next_one(192), None);
        assert_eq!(b.next_one(66), Some(190));
    }

    #[test]
    fn grow_is_monotonic() {
        let mut b = Bitmap::new();
        b.grow(10);
        b.grow(5);
        assert_eq!(b.len(), 10);
    }
}
