//! The tuple-oriented bitmap index.
//!
//! "In a tuple-oriented bitmap, we store T bitmaps, one per tuple, where
//! the i-th bit of bitmap Tj indicates whether tuple j is active in branch
//! i. Since we assume that the number of records in a branch will greatly
//! outnumber the number of branches, all rows (one for each tuple) in a
//! tuple-oriented bitmap are stored together in a single block of memory"
//! (§3.1). When the branch count outgrows the per-tuple row width, "the
//! entire bitmap may need to be expanded (and copied) ... via simple growth
//! doubling, amortizing the branching cost" (§3.2).

use decibel_common::hash::FxHashMap;
use decibel_common::ids::BranchId;

use crate::bitmap::Bitmap;
use crate::index::VersionIndex;

/// All tuples' branch-membership rows in one contiguous allocation.
#[derive(Debug, Clone)]
pub struct TupleBitmapIndex {
    /// Row-major bit matrix: `stride` words per tuple row.
    data: Vec<u64>,
    /// Words per tuple row (row holds `stride * 64` branch slots).
    stride: usize,
    rows: u64,
    /// Maps external branch ids to bit slots within a row.
    slots: FxHashMap<BranchId, usize>,
    next_slot: usize,
}

impl Default for TupleBitmapIndex {
    fn default() -> Self {
        TupleBitmapIndex::new()
    }
}

impl TupleBitmapIndex {
    /// Creates an empty index with room for 64 branches per row.
    pub fn new() -> Self {
        TupleBitmapIndex {
            data: Vec::new(),
            stride: 1,
            rows: 0,
            slots: FxHashMap::default(),
            next_slot: 0,
        }
    }

    /// Doubles the row width, copying every row — the whole-bitmap
    /// expansion §3.2 describes.
    fn grow_stride(&mut self) {
        let new_stride = self.stride * 2;
        let mut new_data = vec![0u64; self.rows as usize * new_stride];
        for row in 0..self.rows as usize {
            let src = row * self.stride;
            let dst = row * new_stride;
            new_data[dst..dst + self.stride].copy_from_slice(&self.data[src..src + self.stride]);
        }
        self.data = new_data;
        self.stride = new_stride;
    }

    #[inline]
    fn slot(&self, b: BranchId) -> Option<usize> {
        self.slots.get(&b).copied()
    }
}

impl VersionIndex for TupleBitmapIndex {
    fn num_rows(&self) -> u64 {
        self.rows
    }

    fn num_branches(&self) -> usize {
        self.slots.len()
    }

    fn has_branch(&self, b: BranchId) -> bool {
        self.slots.contains_key(&b)
    }

    fn add_branch(&mut self, b: BranchId, parent: Option<BranchId>) {
        if self.next_slot >= self.stride * 64 {
            self.grow_stride();
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        self.slots.insert(b, slot);
        if let Some(p) = parent {
            if let Some(pslot) = self.slot(p) {
                // Copy the parent's bit in every tuple row.
                for row in 0..self.rows as usize {
                    let base = row * self.stride;
                    let pv = self.data[base + pslot / 64] >> (pslot % 64) & 1;
                    if pv == 1 {
                        self.data[base + slot / 64] |= 1u64 << (slot % 64);
                    }
                }
            }
        }
    }

    fn ensure_rows(&mut self, rows: u64) {
        if rows > self.rows {
            self.rows = rows;
            self.data.resize(rows as usize * self.stride, 0);
        }
    }

    fn set(&mut self, b: BranchId, row: u64, v: bool) {
        debug_assert!(row < self.rows);
        let slot = self.slot(b).expect("set on unregistered branch");
        let word = row as usize * self.stride + slot / 64;
        let mask = 1u64 << (slot % 64);
        if v {
            self.data[word] |= mask;
        } else {
            self.data[word] &= !mask;
        }
    }

    fn get(&self, b: BranchId, row: u64) -> bool {
        if row >= self.rows {
            return false;
        }
        match self.slot(b) {
            Some(slot) => self.data[row as usize * self.stride + slot / 64] >> (slot % 64) & 1 == 1,
            None => false,
        }
    }

    fn branch_bitmap(&self, b: BranchId) -> Bitmap {
        // The paper's cost asymmetry: extracting one branch's column from a
        // tuple-oriented bitmap walks the entire matrix (§3.2).
        let mut out = Bitmap::zeros(self.rows);
        if let Some(slot) = self.slot(b) {
            let word_off = slot / 64;
            let bit = slot % 64;
            for row in 0..self.rows {
                if self.data[row as usize * self.stride + word_off] >> bit & 1 == 1 {
                    out.set(row, true);
                }
            }
        }
        out
    }

    fn restore_branch(&mut self, b: BranchId, bm: &Bitmap) {
        let slot = self.slot(b).expect("restore on unregistered branch");
        let word_off = slot / 64;
        let mask = 1u64 << (slot % 64);
        for row in 0..self.rows {
            let w = &mut self.data[row as usize * self.stride + word_off];
            if bm.get(row) {
                *w |= mask;
            } else {
                *w &= !mask;
            }
        }
    }

    fn byte_size(&self) -> usize {
        self.data.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_doubles_past_64_branches() {
        let mut idx = TupleBitmapIndex::new();
        idx.ensure_rows(10);
        for b in 0..65u32 {
            idx.add_branch(BranchId(b), None);
        }
        assert_eq!(idx.stride, 2);
        idx.set(BranchId(64), 5, true);
        assert!(idx.get(BranchId(64), 5));
        assert!(!idx.get(BranchId(63), 5));
    }

    #[test]
    fn expansion_preserves_existing_bits() {
        let mut idx = TupleBitmapIndex::new();
        idx.ensure_rows(100);
        for b in 0..64u32 {
            idx.add_branch(BranchId(b), None);
        }
        for row in 0..100u64 {
            idx.set(BranchId((row % 64) as u32), row, true);
        }
        idx.add_branch(BranchId(64), None); // triggers grow_stride
        for row in 0..100u64 {
            assert!(
                idx.get(BranchId((row % 64) as u32), row),
                "row {row} lost its bit"
            );
        }
    }

    #[test]
    fn parent_clone_copies_every_row() {
        let mut idx = TupleBitmapIndex::new();
        idx.add_branch(BranchId(0), None);
        idx.ensure_rows(1000);
        for row in (0..1000).step_by(7) {
            idx.set(BranchId(0), row, true);
        }
        idx.add_branch(BranchId(1), Some(BranchId(0)));
        for row in 0..1000 {
            assert_eq!(idx.get(BranchId(1), row), row % 7 == 0);
        }
    }

    #[test]
    fn rows_added_after_branches_start_dead() {
        let mut idx = TupleBitmapIndex::new();
        idx.add_branch(BranchId(0), None);
        idx.ensure_rows(5);
        idx.set(BranchId(0), 4, true);
        idx.ensure_rows(10);
        assert!(idx.get(BranchId(0), 4));
        for row in 5..10 {
            assert!(!idx.get(BranchId(0), row));
        }
    }

    #[test]
    fn branch_bitmap_matches_bits() {
        let mut idx = TupleBitmapIndex::new();
        idx.add_branch(BranchId(3), None);
        idx.ensure_rows(200);
        idx.set(BranchId(3), 0, true);
        idx.set(BranchId(3), 199, true);
        let bm = idx.branch_bitmap(BranchId(3));
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![0, 199]);
        assert_eq!(bm.len(), 200);
    }

    #[test]
    fn unknown_branch_reads_false() {
        let idx = TupleBitmapIndex::new();
        assert!(!idx.get(BranchId(9), 0));
        assert_eq!(idx.branch_bitmap(BranchId(9)).count_ones(), 0);
    }
}
