//! Bitmap machinery for the Decibel reproduction.
//!
//! Tuple-first "relies on a bitmap index with one bit per branch per tuple
//! to annotate the branches a tuple is active in" (§3.2), and hybrid applies
//! "local bitmap indexes for each of the fragmented heap files as well as a
//! single, global bitmap index" (§3.1). The paper describes two physical
//! orientations (§3.1):
//!
//! * **branch-oriented** ([`branch_index::BranchBitmapIndex`]) — one bitmap
//!   per branch, each in its own growable block of memory;
//! * **tuple-oriented** ([`tuple_index::TupleBitmapIndex`]) — one bit-row per
//!   tuple, all rows in a single block, doubled when the branch count
//!   overflows the row width.
//!
//! Both implement [`index::VersionIndex`], so the tuple-first engine is
//! generic over orientation and the paper's orientation trade-off (§5:
//! "resolving which tuples are live in a branch is much faster with a
//! branch-oriented bitmap") is an ablation, not a fork of the code.
//!
//! Commit snapshots are persisted by [`commit_store::CommitStore`] using the
//! paper's scheme (§3.2): XOR deltas between consecutive commit bitmaps,
//! run-length encoded ([`rle`]), chained linearly, with a second "layer" of
//! composite deltas to bound checkout chain length.

pub mod bitmap;
pub mod branch_index;
pub mod commit_store;
pub mod index;
pub mod rle;
pub mod tuple_index;

pub use bitmap::Bitmap;
pub use branch_index::BranchBitmapIndex;
pub use commit_store::CommitStore;
pub use index::VersionIndex;
pub use tuple_index::TupleBitmapIndex;
