//! Compressed commit histories.
//!
//! "Since we assume that operations on historical commits will be less
//! frequent than those on the head of a branch, we keep historical commit
//! data out of the bitmap index, instead storing this information in
//! separate, compressed commit history files for each branch. ... When a
//! commit is made, the delta from the prior commit (computed by doing an
//! XOR of the two bitmaps) is RLE compressed and written to the end of the
//! file. To checkout a commit (version), we deserialize all commit deltas
//! linearly up to the commit of interest, performing an XOR on each of them
//! in sequence to recreate the commit. To speed retrieval, we aggregate
//! runs of deltas together into a higher 'layer' of composite deltas so
//! that the total number of chained deltas is reduced, at the cost of some
//! extra space. ... our implementation uses only two \[layers\]" (§3.2).
//!
//! Tuple-first keeps one store per branch; hybrid keeps one per
//! (branch, segment) pair — which is why hybrid's aggregate "pack file"
//! sizes in Table 2 are smaller: each store's bitmaps cover one segment.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use decibel_common::error::{DbError, IoResultExt, Result};
use decibel_common::varint;

use crate::bitmap::Bitmap;
use crate::rle;

const KIND_BASE: u8 = 1;
const KIND_COMPOSITE: u8 = 2;

#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    offset: u64,
    len: u32,
}

/// An append-only file of RLE-compressed XOR deltas with a second
/// composite-delta layer every `layer_interval` commits.
///
/// File handles are opened per operation rather than held: hybrid keeps
/// one store per (branch, segment) pair, and a long-lived descriptor per
/// store would exhaust the process fd limit on branch-heavy workloads.
pub struct CommitStore {
    path: PathBuf,
    write_pos: u64,
    base: Vec<EntryMeta>,
    composite: Vec<EntryMeta>,
    /// Bitmap as of the latest commit (delta source for the next one).
    last: Bitmap,
    /// Bitmap as of the latest composite boundary.
    group_start: Bitmap,
    layer_interval: usize,
    /// Empty-delta headers owed to disk. Hybrid snapshots every live
    /// (branch, segment) pair at each commit, but most segments are
    /// untouched between commits; their empty deltas are buffered here
    /// and written together with the next real entry, so an unchanged
    /// segment costs no file I/O per commit.
    pending_empties: u32,
}

impl CommitStore {
    /// Default composite-layer interval.
    pub const DEFAULT_LAYER_INTERVAL: usize = 16;

    /// Creates an empty store at `path`. The file itself is created
    /// lazily on the first real delta write, so stores tracking only
    /// empty histories cost no file-system objects.
    pub fn create(path: impl AsRef<Path>, layer_interval: usize) -> Result<CommitStore> {
        assert!(layer_interval >= 1);
        let path = path.as_ref().to_path_buf();
        Ok(CommitStore {
            path,
            write_pos: 0,
            base: Vec::new(),
            composite: Vec::new(),
            last: Bitmap::new(),
            group_start: Bitmap::new(),
            layer_interval,
            pending_empties: 0,
        })
    }

    fn open_read(&self) -> Result<File> {
        OpenOptions::new()
            .read(true)
            .open(&self.path)
            .ctx("opening commit store for read")
    }

    /// Reopens an existing store, rebuilding entry metadata and the tail
    /// state by replaying the delta chain.
    pub fn open(path: impl AsRef<Path>, layer_interval: usize) -> Result<CommitStore> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .open(&path)
            .ctx("opening commit store")?;
        let len = file.metadata().ctx("stat commit store")?.len();
        let mut bytes = vec![0u8; len as usize];
        file.read_exact_at(&mut bytes, 0)
            .ctx("reading commit store")?;
        drop(file);
        let mut store = CommitStore {
            path,
            write_pos: len,
            base: Vec::new(),
            composite: Vec::new(),
            last: Bitmap::new(),
            group_start: Bitmap::new(),
            layer_interval,
            pending_empties: 0,
        };
        let mut pos = 0usize;
        while pos < bytes.len() {
            let kind = bytes[pos];
            let mut p = pos + 1;
            let payload_len = varint::read_u64(&bytes, &mut p)? as usize;
            if p + payload_len > bytes.len() {
                return Err(DbError::corrupt("commit store truncated"));
            }
            let meta = EntryMeta {
                offset: p as u64,
                len: payload_len as u32,
            };
            match kind {
                KIND_BASE => store.base.push(meta),
                KIND_COMPOSITE => store.composite.push(meta),
                other => return Err(DbError::corrupt(format!("bad commit entry kind {other}"))),
            }
            pos = p + payload_len;
        }
        if !store.base.is_empty() {
            store.last = store.checkout(store.base.len() as u64 - 1)?;
            let boundary = (store.base.len() / layer_interval) * layer_interval;
            store.group_start = if boundary == 0 {
                Bitmap::new()
            } else if boundary == store.base.len() {
                store.last.clone()
            } else {
                store.checkout(boundary as u64 - 1)?
            };
        }
        Ok(store)
    }

    fn write_entry(&mut self, kind: u8, payload: &[u8]) -> Result<EntryMeta> {
        // No truncate: positions are tracked by `write_pos`, and the file
        // must survive across handle reopens.
        #[allow(clippy::suspicious_open_options)]
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .open(&self.path)
            .ctx("opening commit store for write")?;
        // Owed empty-delta headers first, then this entry, in one write.
        let mut buf = Vec::with_capacity(payload.len() + 2 * self.pending_empties as usize + 10);
        for _ in 0..self.pending_empties {
            buf.push(KIND_BASE);
            varint::write_u64(&mut buf, 0);
        }
        self.pending_empties = 0;
        buf.push(kind);
        varint::write_u64(&mut buf, payload.len() as u64);
        let header_end = self.write_pos + buf.len() as u64;
        buf.extend_from_slice(payload);
        file.write_all_at(&buf, self.write_pos)
            .ctx("writing commit entry")?;
        self.write_pos += buf.len() as u64;
        Ok(EntryMeta {
            offset: header_end,
            len: payload.len() as u32,
        })
    }

    /// An empty delta: recorded in memory, headers owed to disk.
    fn note_empty(&mut self, kind_is_composite: bool) -> EntryMeta {
        debug_assert!(
            !kind_is_composite,
            "composites with empty deltas stay base-aligned"
        );
        self.pending_empties += 1;
        EntryMeta { offset: 0, len: 0 }
    }

    /// Records a commit whose branch bitmap is `bm`; returns the commit's
    /// ordinal within this store.
    pub fn append_commit(&mut self, bm: &Bitmap) -> Result<u64> {
        let delta = bm.xor(&self.last);
        if delta.count_ones() == 0 && delta.len() == self.last.len() {
            // Unchanged since the previous commit: no file I/O now.
            let meta = self.note_empty(false);
            self.base.push(meta);
        } else {
            let payload = rle::encode(&delta);
            let meta = self.write_entry(KIND_BASE, &payload)?;
            self.base.push(meta);
            self.last = bm.clone();
        }
        if self.base.len().is_multiple_of(self.layer_interval) {
            let comp = bm.xor(&self.group_start);
            let payload = rle::encode(&comp);
            let meta = self.write_entry(KIND_COMPOSITE, &payload)?;
            self.composite.push(meta);
            self.group_start = bm.clone();
        }
        Ok(self.base.len() as u64 - 1)
    }

    fn read_entry(&self, file: &mut Option<File>, meta: EntryMeta) -> Result<Bitmap> {
        if meta.len == 0 {
            return Ok(Bitmap::new());
        }
        if file.is_none() {
            *file = Some(self.open_read()?);
        }
        let mut buf = vec![0u8; meta.len as usize];
        file.as_ref()
            .unwrap()
            .read_exact_at(&mut buf, meta.offset)
            .ctx("reading commit entry")?;
        rle::decode(&buf)
    }

    /// Reconstructs the branch bitmap at commit `ordinal` by applying
    /// composite deltas for whole groups and base deltas for the remainder.
    pub fn checkout(&self, ordinal: u64) -> Result<Bitmap> {
        let ordinal = ordinal as usize;
        if ordinal >= self.base.len() {
            return Err(DbError::UnknownCommit(ordinal as u64));
        }
        let mut file = None;
        let mut state = Bitmap::new();
        let full_groups = (ordinal + 1) / self.layer_interval;
        for g in 0..full_groups {
            let d = self.read_entry(&mut file, self.composite[g])?;
            state.xor_assign(&d);
        }
        for i in full_groups * self.layer_interval..=ordinal {
            let d = self.read_entry(&mut file, self.base[i])?;
            state.xor_assign(&d);
        }
        Ok(state)
    }

    /// Reconstructs `ordinal` using only base deltas — the 1-layer scheme,
    /// kept for the checkout-cost ablation of §3.2's layering decision.
    pub fn checkout_unlayered(&self, ordinal: u64) -> Result<Bitmap> {
        let ordinal = ordinal as usize;
        if ordinal >= self.base.len() {
            return Err(DbError::UnknownCommit(ordinal as u64));
        }
        let mut file = None;
        let mut state = Bitmap::new();
        for i in 0..=ordinal {
            let d = self.read_entry(&mut file, self.base[i])?;
            state.xor_assign(&d);
        }
        Ok(state)
    }

    /// Number of commits stored.
    pub fn commit_count(&self) -> u64 {
        self.base.len() as u64
    }

    /// On-disk size in bytes — the paper's "aggregate pack file size"
    /// metric (Table 2).
    pub fn file_size(&self) -> u64 {
        self.write_pos + 2 * self.pending_empties as u64
    }

    /// Filesystem path of the store.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decibel_common::rng::DetRng;

    fn random_history(n: usize, seed: u64) -> Vec<Bitmap> {
        // Simulate a growing branch: each commit appends rows and flips a
        // few existing bits, like inserts + updates.
        let mut rng = DetRng::seed_from_u64(seed);
        let mut current = Bitmap::new();
        let mut out = Vec::new();
        let mut rows = 0u64;
        for _ in 0..n {
            for _ in 0..rng.range(1, 50) {
                current.set(rows, true);
                rows += 1;
            }
            for _ in 0..rng.below(10) {
                if rows > 0 {
                    let r = rng.below(rows);
                    current.set(r, !current.get(r));
                }
            }
            out.push(current.clone());
        }
        out
    }

    #[test]
    fn checkout_reconstructs_every_commit() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = CommitStore::create(dir.path().join("c"), 4).unwrap();
        let history = random_history(25, 7);
        for bm in &history {
            store.append_commit(bm).unwrap();
        }
        for (i, bm) in history.iter().enumerate() {
            let got = store.checkout(i as u64).unwrap();
            assert_eq!(
                got.iter_ones().collect::<Vec<_>>(),
                bm.iter_ones().collect::<Vec<_>>(),
                "commit {i}"
            );
        }
    }

    #[test]
    fn layered_equals_unlayered() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = CommitStore::create(dir.path().join("c"), 4).unwrap();
        let history = random_history(20, 13);
        for bm in &history {
            store.append_commit(bm).unwrap();
        }
        for i in 0..history.len() as u64 {
            assert_eq!(
                store.checkout(i).unwrap(),
                store.checkout_unlayered(i).unwrap(),
                "commit {i}"
            );
        }
    }

    #[test]
    fn reopen_preserves_history_and_appends() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("c");
        let history = random_history(10, 5);
        {
            let mut store = CommitStore::create(&path, 4).unwrap();
            for bm in &history[..7] {
                store.append_commit(bm).unwrap();
            }
        }
        let mut store = CommitStore::open(&path, 4).unwrap();
        assert_eq!(store.commit_count(), 7);
        for bm in &history[7..] {
            store.append_commit(bm).unwrap();
        }
        for (i, bm) in history.iter().enumerate() {
            assert_eq!(store.checkout(i as u64).unwrap(), *bm, "commit {i}");
        }
    }

    #[test]
    fn unknown_ordinal_errors() {
        let dir = tempfile::tempdir().unwrap();
        let store = CommitStore::create(dir.path().join("c"), 4).unwrap();
        assert!(store.checkout(0).is_err());
    }

    #[test]
    fn file_grows_with_commits() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = CommitStore::create(dir.path().join("c"), 16).unwrap();
        let mut bm = Bitmap::new();
        bm.set(0, true);
        store.append_commit(&bm).unwrap();
        let s1 = store.file_size();
        bm.set(1, true);
        store.append_commit(&bm).unwrap();
        assert!(store.file_size() > s1);
        assert_eq!(store.commit_count(), 2);
    }

    #[test]
    fn identical_consecutive_commits_are_cheap() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = CommitStore::create(dir.path().join("c"), 16).unwrap();
        let mut bm = Bitmap::zeros(1_000_000);
        for i in (0..1_000_000).step_by(3) {
            bm.set(i, true);
        }
        store.append_commit(&bm).unwrap();
        let s1 = store.file_size();
        store.append_commit(&bm).unwrap(); // empty delta
        assert!(
            store.file_size() - s1 < 32,
            "empty delta should be bytes, not KBs"
        );
        assert_eq!(store.checkout(1).unwrap().count_ones(), bm.count_ones());
    }

    #[test]
    fn layer_interval_one_means_all_composites() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = CommitStore::create(dir.path().join("c"), 1).unwrap();
        let history = random_history(5, 3);
        for bm in &history {
            store.append_commit(bm).unwrap();
        }
        for (i, bm) in history.iter().enumerate() {
            assert_eq!(store.checkout(i as u64).unwrap(), *bm);
        }
    }
}
