//! Compressed commit histories.
//!
//! "Since we assume that operations on historical commits will be less
//! frequent than those on the head of a branch, we keep historical commit
//! data out of the bitmap index, instead storing this information in
//! separate, compressed commit history files for each branch. ... When a
//! commit is made, the delta from the prior commit (computed by doing an
//! XOR of the two bitmaps) is RLE compressed and written to the end of the
//! file. To checkout a commit (version), we deserialize all commit deltas
//! linearly up to the commit of interest, performing an XOR on each of them
//! in sequence to recreate the commit. To speed retrieval, we aggregate
//! runs of deltas together into a higher 'layer' of composite deltas so
//! that the total number of chained deltas is reduced, at the cost of some
//! extra space. ... our implementation uses only two \[layers\]" (§3.2).
//!
//! Tuple-first keeps one store per branch; hybrid keeps one per
//! (branch, segment) pair — which is why hybrid's aggregate "pack file"
//! sizes in Table 2 are smaller: each store's bitmaps cover one segment.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use decibel_common::crc::crc32;
use decibel_common::env::{std_env, DiskEnv, DiskFile, OpenMode};
use decibel_common::error::{DbError, IoResultExt, Result};
use decibel_common::varint;

use crate::bitmap::Bitmap;
use crate::rle;

const KIND_BASE: u8 = 1;
const KIND_COMPOSITE: u8 = 2;

/// On-disk entry layout: `kind (1B) · varint payload_len · crc32 (4B LE) ·
/// payload`, except that *empty* entries (payload_len = 0, the buffered
/// empty-delta headers) omit the CRC — a flipped bit in their 2-byte header
/// is caught by the framing (bad kind or impossible length), and keeping
/// them at 2 bytes preserves the pending-empties size accounting.
const ENTRY_CRC_LEN: usize = 4;

#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    offset: u64,
    len: u32,
    /// CRC-32 of the RLE payload (0 for empty entries, which have none).
    crc: u32,
}

/// An append-only file of RLE-compressed XOR deltas with a second
/// composite-delta layer every `layer_interval` commits.
///
/// Writes go through a persistent handle, opened lazily on the first real
/// delta and held for the store's lifetime: reopening the file per entry
/// (the previous scheme) both cost a syscall per commit and left no handle
/// for the checkpoint to `fdatasync` — and once a checkpoint records this
/// file's length as trusted coverage, an unsynced delta is a correctness
/// bug, not a perf wart. Stores whose history is all empty deltas never
/// open a handle (or create a file) at all, so branch-heavy workloads with
/// many untouched (branch, segment) stores still hold no descriptors.
pub struct CommitStore {
    env: Arc<dyn DiskEnv>,
    path: PathBuf,
    write_pos: u64,
    /// Lazily opened persistent write handle (`None` until the first real
    /// delta hits disk; see the struct docs).
    write_file: Option<Arc<dyn DiskFile>>,
    base: Vec<EntryMeta>,
    composite: Vec<EntryMeta>,
    /// Bitmap as of the latest commit (delta source for the next one).
    last: Bitmap,
    /// Bitmap as of the latest composite boundary.
    group_start: Bitmap,
    layer_interval: usize,
    /// Empty-delta headers owed to disk. Hybrid snapshots every live
    /// (branch, segment) pair at each commit, but most segments are
    /// untouched between commits; their empty deltas are buffered here
    /// and written together with the next real entry, so an unchanged
    /// segment costs no file I/O per commit. Checkpoints record this count
    /// instead of forcing the headers out, preserving the optimization.
    pending_empties: u32,
}

impl CommitStore {
    /// Default composite-layer interval.
    pub const DEFAULT_LAYER_INTERVAL: usize = 16;

    /// Creates an empty store at `path`. The file itself is created
    /// lazily on the first real delta write, so stores tracking only
    /// empty histories cost no file-system objects.
    pub fn create(path: impl AsRef<Path>, layer_interval: usize) -> Result<CommitStore> {
        Self::create_in(std_env(), path, layer_interval)
    }

    /// [`CommitStore::create`] through an explicit [`DiskEnv`].
    pub fn create_in(
        env: Arc<dyn DiskEnv>,
        path: impl AsRef<Path>,
        layer_interval: usize,
    ) -> Result<CommitStore> {
        assert!(layer_interval >= 1);
        let path = path.as_ref().to_path_buf();
        Ok(CommitStore {
            env,
            path,
            write_pos: 0,
            write_file: None,
            base: Vec::new(),
            composite: Vec::new(),
            last: Bitmap::new(),
            group_start: Bitmap::new(),
            layer_interval,
            pending_empties: 0,
        })
    }

    fn open_read(&self) -> Result<Arc<dyn DiskFile>> {
        self.env
            .open(&self.path, OpenMode::Read)
            .ctx("opening commit store for read")
    }

    /// Reopens an existing store, rebuilding entry metadata and the tail
    /// state by replaying the delta chain.
    pub fn open(path: impl AsRef<Path>, layer_interval: usize) -> Result<CommitStore> {
        Self::open_in(std_env(), path, layer_interval)
    }

    /// [`CommitStore::open`] through an explicit [`DiskEnv`].
    pub fn open_in(
        env: Arc<dyn DiskEnv>,
        path: impl AsRef<Path>,
        layer_interval: usize,
    ) -> Result<CommitStore> {
        let path = path.as_ref().to_path_buf();
        let len = env.file_len(&path).ctx("stat commit store")?;
        Self::load(env, path, layer_interval, len, 0)
    }

    /// Reopens a store at a checkpoint-recorded coverage: exactly `covered`
    /// on-disk bytes (anything beyond — entries written after the
    /// checkpoint, crash garbage — is truncated away and regenerated by
    /// journal suffix replay) plus `pending` buffered empty-delta headers
    /// that the checkpoint recorded instead of forcing to disk.
    pub fn open_at(
        path: impl AsRef<Path>,
        layer_interval: usize,
        covered: u64,
        pending: u32,
    ) -> Result<CommitStore> {
        Self::open_at_in(std_env(), path, layer_interval, covered, pending)
    }

    /// [`CommitStore::open_at`] through an explicit [`DiskEnv`].
    pub fn open_at_in(
        env: Arc<dyn DiskEnv>,
        path: impl AsRef<Path>,
        layer_interval: usize,
        covered: u64,
        pending: u32,
    ) -> Result<CommitStore> {
        Self::load(
            env,
            path.as_ref().to_path_buf(),
            layer_interval,
            covered,
            pending,
        )
    }

    fn load(
        env: Arc<dyn DiskEnv>,
        path: PathBuf,
        layer_interval: usize,
        covered: u64,
        pending: u32,
    ) -> Result<CommitStore> {
        let mut bytes = vec![0u8; covered as usize];
        if covered > 0 {
            // Stores whose entire history was empty deltas never created a
            // file; a zero coverage therefore skips the filesystem wholly.
            let file = env
                .open(&path, OpenMode::Read)
                .ctx("opening commit store")?;
            let len = file.len().ctx("stat commit store")?;
            if len < covered {
                return Err(DbError::corrupt(format!(
                    "commit store {} shorter than its checkpoint coverage ({len} < {covered})",
                    path.display()
                )));
            }
            if len > covered {
                let rw = env
                    .open(&path, OpenMode::ReadWrite)
                    .ctx("opening commit store")?;
                rw.set_len(covered).ctx("truncating commit store")?;
            }
            file.read_exact_at(&mut bytes, 0)
                .ctx("reading commit store")?;
        }
        let mut store = CommitStore {
            env,
            path,
            write_pos: covered,
            write_file: None,
            base: Vec::new(),
            composite: Vec::new(),
            last: Bitmap::new(),
            group_start: Bitmap::new(),
            layer_interval,
            pending_empties: pending,
        };
        let mut pos = 0usize;
        while pos < bytes.len() {
            let kind = bytes[pos];
            let mut p = pos + 1;
            let payload_len = varint::read_u64(&bytes, &mut p)? as usize;
            let meta = if payload_len == 0 {
                EntryMeta {
                    offset: p as u64,
                    len: 0,
                    crc: 0,
                }
            } else {
                if p + ENTRY_CRC_LEN + payload_len > bytes.len() {
                    return Err(DbError::corrupt("commit store truncated"));
                }
                let stored =
                    u32::from_le_bytes(bytes[p..p + ENTRY_CRC_LEN].try_into().expect("4 bytes"));
                p += ENTRY_CRC_LEN;
                let payload = &bytes[p..p + payload_len];
                if crc32(payload) != stored {
                    return Err(DbError::corrupt(format!(
                        "commit store entry at offset {pos} failed checksum (torn or \
                         bit-flipped entry)"
                    )));
                }
                EntryMeta {
                    offset: p as u64,
                    len: payload_len as u32,
                    crc: stored,
                }
            };
            match kind {
                KIND_BASE => store.base.push(meta),
                KIND_COMPOSITE => store.composite.push(meta),
                other => return Err(DbError::corrupt(format!("bad commit entry kind {other}"))),
            }
            pos = p + payload_len;
        }
        // Re-buffer the owed empty deltas behind the on-disk entries.
        for _ in 0..pending {
            store.base.push(EntryMeta {
                offset: 0,
                len: 0,
                crc: 0,
            });
        }
        if !store.base.is_empty() {
            store.last = store.checkout(store.base.len() as u64 - 1)?;
            let boundary = (store.base.len() / layer_interval) * layer_interval;
            store.group_start = if boundary == 0 {
                Bitmap::new()
            } else if boundary == store.base.len() {
                store.last.clone()
            } else {
                store.checkout(boundary as u64 - 1)?
            };
        }
        Ok(store)
    }

    fn write_entry(&mut self, kind: u8, payload: &[u8]) -> Result<EntryMeta> {
        if self.write_file.is_none() {
            // No truncate: positions are tracked by `write_pos`, and stale
            // bytes past it (from a pre-crash future) are overwritten here
            // and trimmed by the next checkpoint's coverage.
            let file = self
                .env
                .open(&self.path, OpenMode::ReadWrite)
                .ctx("opening commit store for write")?;
            self.write_file = Some(file);
        }
        let file = self.write_file.as_ref().expect("write handle opened above");
        // Owed empty-delta headers first, then this entry, in one write.
        let crc = crc32(payload);
        let mut buf = Vec::with_capacity(payload.len() + 2 * self.pending_empties as usize + 14);
        for _ in 0..self.pending_empties {
            buf.push(KIND_BASE);
            varint::write_u64(&mut buf, 0);
        }
        self.pending_empties = 0;
        buf.push(kind);
        varint::write_u64(&mut buf, payload.len() as u64);
        buf.extend_from_slice(&crc.to_le_bytes());
        let header_end = self.write_pos + buf.len() as u64;
        buf.extend_from_slice(payload);
        file.write_all_at(&buf, self.write_pos)
            .ctx("writing commit entry")?;
        self.write_pos += buf.len() as u64;
        Ok(EntryMeta {
            offset: header_end,
            len: payload.len() as u32,
            crc,
        })
    }

    /// Forces every delta written through the persistent handle to stable
    /// storage. A no-op for stores that never wrote a real delta (no file
    /// exists to sync). Checkpoints call this before recording
    /// [`CommitStore::on_disk_len`] as trusted coverage.
    pub fn sync(&self) -> Result<()> {
        if let Some(file) = &self.write_file {
            file.sync_data().ctx("fsyncing commit store")?;
        }
        Ok(())
    }

    /// An empty delta: recorded in memory, headers owed to disk.
    fn note_empty(&mut self, kind_is_composite: bool) -> EntryMeta {
        debug_assert!(
            !kind_is_composite,
            "composites with empty deltas stay base-aligned"
        );
        self.pending_empties += 1;
        EntryMeta {
            offset: 0,
            len: 0,
            crc: 0,
        }
    }

    /// Records a commit whose branch bitmap is `bm`; returns the commit's
    /// ordinal within this store.
    pub fn append_commit(&mut self, bm: &Bitmap) -> Result<u64> {
        let delta = bm.xor(&self.last);
        if delta.count_ones() == 0 && delta.len() == self.last.len() {
            // Unchanged since the previous commit: no file I/O now.
            let meta = self.note_empty(false);
            self.base.push(meta);
        } else {
            let payload = rle::encode(&delta);
            let meta = self.write_entry(KIND_BASE, &payload)?;
            self.base.push(meta);
            self.last = bm.clone();
        }
        if self.base.len().is_multiple_of(self.layer_interval) {
            let comp = bm.xor(&self.group_start);
            let payload = rle::encode(&comp);
            let meta = self.write_entry(KIND_COMPOSITE, &payload)?;
            self.composite.push(meta);
            self.group_start = bm.clone();
        }
        Ok(self.base.len() as u64 - 1)
    }

    fn read_entry(&self, file: &mut Option<Arc<dyn DiskFile>>, meta: EntryMeta) -> Result<Bitmap> {
        if meta.len == 0 {
            return Ok(Bitmap::new());
        }
        let handle = match file {
            Some(f) => f,
            None => file.insert(self.open_read()?),
        };
        let mut buf = vec![0u8; meta.len as usize];
        handle
            .read_exact_at(&mut buf, meta.offset)
            .ctx("reading commit entry")?;
        if crc32(&buf) != meta.crc {
            return Err(DbError::corrupt(format!(
                "commit store entry at offset {} failed checksum (bit-flipped on disk)",
                meta.offset
            )));
        }
        rle::decode(&buf)
    }

    /// Reconstructs the branch bitmap at commit `ordinal` by applying
    /// composite deltas for whole groups and base deltas for the remainder.
    pub fn checkout(&self, ordinal: u64) -> Result<Bitmap> {
        let ordinal = ordinal as usize;
        if ordinal >= self.base.len() {
            return Err(DbError::UnknownCommit(ordinal as u64));
        }
        let mut file = None;
        let mut state = Bitmap::new();
        let full_groups = (ordinal + 1) / self.layer_interval;
        for g in 0..full_groups {
            let d = self.read_entry(&mut file, self.composite[g])?;
            state.xor_assign(&d);
        }
        for i in full_groups * self.layer_interval..=ordinal {
            let d = self.read_entry(&mut file, self.base[i])?;
            state.xor_assign(&d);
        }
        Ok(state)
    }

    /// Reconstructs `ordinal` using only base deltas — the 1-layer scheme,
    /// kept for the checkout-cost ablation of §3.2's layering decision.
    pub fn checkout_unlayered(&self, ordinal: u64) -> Result<Bitmap> {
        let ordinal = ordinal as usize;
        if ordinal >= self.base.len() {
            return Err(DbError::UnknownCommit(ordinal as u64));
        }
        let mut file = None;
        let mut state = Bitmap::new();
        for i in 0..=ordinal {
            let d = self.read_entry(&mut file, self.base[i])?;
            state.xor_assign(&d);
        }
        Ok(state)
    }

    /// Number of commits stored.
    pub fn commit_count(&self) -> u64 {
        self.base.len() as u64
    }

    /// On-disk size in bytes — the paper's "aggregate pack file size"
    /// metric (Table 2).
    pub fn file_size(&self) -> u64 {
        self.write_pos + 2 * self.pending_empties as u64
    }

    /// Bytes actually on disk (excluding buffered empty-delta headers) —
    /// the coverage a checkpoint records for [`CommitStore::open_at`].
    pub fn on_disk_len(&self) -> u64 {
        self.write_pos
    }

    /// Buffered empty-delta headers not yet written to disk; recorded by
    /// checkpoints alongside [`CommitStore::on_disk_len`].
    pub fn pending_empty_count(&self) -> u32 {
        self.pending_empties
    }

    /// Filesystem path of the store.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decibel_common::rng::DetRng;

    fn random_history(n: usize, seed: u64) -> Vec<Bitmap> {
        // Simulate a growing branch: each commit appends rows and flips a
        // few existing bits, like inserts + updates.
        let mut rng = DetRng::seed_from_u64(seed);
        let mut current = Bitmap::new();
        let mut out = Vec::new();
        let mut rows = 0u64;
        for _ in 0..n {
            for _ in 0..rng.range(1, 50) {
                current.set(rows, true);
                rows += 1;
            }
            for _ in 0..rng.below(10) {
                if rows > 0 {
                    let r = rng.below(rows);
                    current.set(r, !current.get(r));
                }
            }
            out.push(current.clone());
        }
        out
    }

    #[test]
    fn checkout_reconstructs_every_commit() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = CommitStore::create(dir.path().join("c"), 4).unwrap();
        let history = random_history(25, 7);
        for bm in &history {
            store.append_commit(bm).unwrap();
        }
        for (i, bm) in history.iter().enumerate() {
            let got = store.checkout(i as u64).unwrap();
            assert_eq!(
                got.iter_ones().collect::<Vec<_>>(),
                bm.iter_ones().collect::<Vec<_>>(),
                "commit {i}"
            );
        }
    }

    #[test]
    fn layered_equals_unlayered() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = CommitStore::create(dir.path().join("c"), 4).unwrap();
        let history = random_history(20, 13);
        for bm in &history {
            store.append_commit(bm).unwrap();
        }
        for i in 0..history.len() as u64 {
            assert_eq!(
                store.checkout(i).unwrap(),
                store.checkout_unlayered(i).unwrap(),
                "commit {i}"
            );
        }
    }

    #[test]
    fn reopen_preserves_history_and_appends() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("c");
        let history = random_history(10, 5);
        {
            let mut store = CommitStore::create(&path, 4).unwrap();
            for bm in &history[..7] {
                store.append_commit(bm).unwrap();
            }
        }
        let mut store = CommitStore::open(&path, 4).unwrap();
        assert_eq!(store.commit_count(), 7);
        for bm in &history[7..] {
            store.append_commit(bm).unwrap();
        }
        for (i, bm) in history.iter().enumerate() {
            assert_eq!(store.checkout(i as u64).unwrap(), *bm, "commit {i}");
        }
    }

    #[test]
    fn unknown_ordinal_errors() {
        let dir = tempfile::tempdir().unwrap();
        let store = CommitStore::create(dir.path().join("c"), 4).unwrap();
        assert!(store.checkout(0).is_err());
    }

    #[test]
    fn file_grows_with_commits() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = CommitStore::create(dir.path().join("c"), 16).unwrap();
        let mut bm = Bitmap::new();
        bm.set(0, true);
        store.append_commit(&bm).unwrap();
        let s1 = store.file_size();
        bm.set(1, true);
        store.append_commit(&bm).unwrap();
        assert!(store.file_size() > s1);
        assert_eq!(store.commit_count(), 2);
    }

    #[test]
    fn identical_consecutive_commits_are_cheap() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = CommitStore::create(dir.path().join("c"), 16).unwrap();
        let mut bm = Bitmap::zeros(1_000_000);
        for i in (0..1_000_000).step_by(3) {
            bm.set(i, true);
        }
        store.append_commit(&bm).unwrap();
        let s1 = store.file_size();
        store.append_commit(&bm).unwrap(); // empty delta
        assert!(
            store.file_size() - s1 < 32,
            "empty delta should be bytes, not KBs"
        );
        assert_eq!(store.checkout(1).unwrap().count_ones(), bm.count_ones());
    }

    #[test]
    fn open_at_truncates_to_coverage_and_restores_pending_empties() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("c");
        let history = random_history(9, 11);
        let mut store = CommitStore::create(&path, 4).unwrap();
        for bm in &history {
            store.append_commit(bm).unwrap();
        }
        // An unchanged commit buffers an empty delta instead of writing.
        let tail = history.last().unwrap().clone();
        store.append_commit(&tail).unwrap();
        let covered = store.on_disk_len();
        let pending = store.pending_empty_count();
        assert_eq!(pending, 1, "unchanged commit should stay buffered");
        let n = store.commit_count();
        store.sync().unwrap();
        drop(store);
        // Bytes past the recorded coverage (a post-checkpoint append that
        // the journal suffix will regenerate) must be trimmed on reopen.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[1, 4, 0xde, 0xad, 0xbe, 0xef]).unwrap();
        }
        let mut store = CommitStore::open_at(&path, 4, covered, pending).unwrap();
        assert_eq!(store.commit_count(), n);
        for (i, bm) in history.iter().enumerate() {
            assert_eq!(store.checkout(i as u64).unwrap(), *bm, "commit {i}");
        }
        assert_eq!(store.checkout(n - 1).unwrap(), tail);
        // Appending continues the chain (and first flushes the owed empty).
        let mut next = tail.clone();
        next.set(next.len() + 3, true);
        store.append_commit(&next).unwrap();
        assert_eq!(store.checkout(n).unwrap(), next);
        assert_eq!(store.pending_empty_count(), 0);
    }

    #[test]
    fn open_at_zero_coverage_needs_no_file() {
        let dir = tempfile::tempdir().unwrap();
        let store = CommitStore::open_at(dir.path().join("absent"), 4, 0, 3).unwrap();
        assert_eq!(store.commit_count(), 3);
        assert_eq!(store.checkout(2).unwrap().count_ones(), 0);
        // Syncing a fileless store is a no-op, not an error.
        store.sync().unwrap();
    }

    #[test]
    fn open_at_rejects_short_file() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("c");
        let mut store = CommitStore::create(&path, 4).unwrap();
        let mut bm = Bitmap::new();
        bm.set(5, true);
        store.append_commit(&bm).unwrap();
        let covered = store.on_disk_len();
        drop(store);
        assert!(CommitStore::open_at(&path, 4, covered + 10, 0).is_err());
    }

    /// Flips one bit of the byte at `offset` from the end of the file.
    fn flip_bit_at_end(path: &Path, back: u64) {
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .unwrap();
        let len = f.metadata().unwrap().len();
        let off = len - back;
        let mut b = [0u8];
        DiskFile::read_exact_at(&f, &mut b, off).unwrap();
        b[0] ^= 0x10;
        DiskFile::write_all_at(&f, &b, off).unwrap();
    }

    #[test]
    fn bit_flipped_entry_is_rejected_at_open() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("c");
        let mut store = CommitStore::create(&path, 4).unwrap();
        for bm in &random_history(6, 17) {
            store.append_commit(bm).unwrap();
        }
        store.sync().unwrap();
        drop(store);
        // The file ends with the last entry's RLE payload; flip a bit in it.
        flip_bit_at_end(&path, 1);
        let err = match CommitStore::open(&path, 4) {
            Ok(_) => panic!("bit-flipped store must not open cleanly"),
            Err(e) => e,
        };
        assert!(
            matches!(err, DbError::Corrupt { .. }),
            "expected typed corruption, got {err:?}"
        );
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn bit_flip_after_open_is_caught_on_checkout() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("c");
        let mut store = CommitStore::create(&path, 4).unwrap();
        let history = random_history(6, 19);
        for bm in &history {
            store.append_commit(bm).unwrap();
        }
        store.sync().unwrap();
        // Corrupt the disk *after* the metadata was built: checkout's
        // read path must re-verify, not trust the in-memory CRC blindly.
        flip_bit_at_end(&path, 1);
        let err = store.checkout(store.commit_count() - 1).unwrap_err();
        assert!(
            matches!(err, DbError::Corrupt { .. }),
            "expected typed corruption, got {err:?}"
        );
    }

    #[test]
    fn layer_interval_one_means_all_composites() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = CommitStore::create(dir.path().join("c"), 1).unwrap();
        let history = random_history(5, 3);
        for bm in &history {
            store.append_commit(bm).unwrap();
        }
        for (i, bm) in history.iter().enumerate() {
            assert_eq!(store.checkout(i as u64).unwrap(), *bm);
        }
    }
}
