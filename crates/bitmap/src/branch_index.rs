//! The branch-oriented bitmap index.
//!
//! "In branch-oriented bitmaps, we store B bitmaps, one per branch, where
//! the i-th bit of bitmap Bj indicates whether tuple i is active in branch
//! j. ... each branch's bitmap is stored separately in its own block of
//! memory in order to avoid the issue of needing to expand the entire
//! bitmap when a single branch's bitmap overflows" (§3.1).
//!
//! Branch ids may be sparse (hybrid's per-segment local indexes only
//! register the branches that inherit records in that segment), so columns
//! live in a hash map rather than a dense vector.

use decibel_common::hash::FxHashMap;
use decibel_common::ids::BranchId;

use crate::bitmap::Bitmap;
use crate::index::VersionIndex;

/// One independently growable bitmap per branch.
#[derive(Debug, Clone, Default)]
pub struct BranchBitmapIndex {
    columns: FxHashMap<BranchId, Bitmap>,
    rows: u64,
}

impl BranchBitmapIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        BranchBitmapIndex::default()
    }

    /// Iterates the registered branches in arbitrary order.
    pub fn branches(&self) -> impl Iterator<Item = BranchId> + '_ {
        self.columns.keys().copied()
    }

    /// Removes a branch's column entirely (hybrid drops a branch's bitmap
    /// from segments it no longer touches).
    pub fn remove_branch(&mut self, b: BranchId) {
        self.columns.remove(&b);
    }

    /// Direct access to a column.
    pub fn column(&self, b: BranchId) -> Option<&Bitmap> {
        self.columns.get(&b)
    }
}

impl VersionIndex for BranchBitmapIndex {
    fn num_rows(&self) -> u64 {
        self.rows
    }

    fn num_branches(&self) -> usize {
        self.columns.len()
    }

    fn has_branch(&self, b: BranchId) -> bool {
        self.columns.contains_key(&b)
    }

    fn add_branch(&mut self, b: BranchId, parent: Option<BranchId>) {
        let col = match parent {
            // "A simple memory copy of the parent branch's bitmap can be
            // performed" (§3.2).
            Some(p) => self.columns.get(&p).cloned().unwrap_or_default(),
            None => Bitmap::zeros(self.rows),
        };
        self.columns.insert(b, col);
    }

    fn ensure_rows(&mut self, rows: u64) {
        if rows > self.rows {
            self.rows = rows;
        }
        // Columns grow lazily on their next `set`; reads past a column's
        // end are false by Bitmap semantics.
    }

    fn set(&mut self, b: BranchId, row: u64, v: bool) {
        debug_assert!(
            row < self.rows,
            "row {row} not allocated (rows={})",
            self.rows
        );
        self.columns
            .get_mut(&b)
            .expect("set on unregistered branch")
            .set(row, v);
    }

    fn get(&self, b: BranchId, row: u64) -> bool {
        self.columns.get(&b).is_some_and(|c| c.get(row))
    }

    fn branch_bitmap(&self, b: BranchId) -> Bitmap {
        let mut col = self.columns.get(&b).cloned().unwrap_or_default();
        col.grow(self.rows);
        col
    }

    fn branch_ref(&self, b: BranchId) -> Option<&Bitmap> {
        self.columns.get(&b)
    }

    fn restore_branch(&mut self, b: BranchId, bm: &Bitmap) {
        self.columns.insert(b, bm.clone());
    }

    fn byte_size(&self) -> usize {
        self.columns.values().map(|c| c.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_grow_independently() {
        let mut idx = BranchBitmapIndex::new();
        idx.add_branch(BranchId(0), None);
        idx.add_branch(BranchId(1), None);
        idx.ensure_rows(1_000_000);
        idx.set(BranchId(0), 999_999, true);
        // Branch 1's column never grew: footprint stays tiny.
        let col0 = idx.column(BranchId(0)).unwrap().byte_size();
        let col1 = idx.column(BranchId(1)).unwrap().byte_size();
        assert!(col0 > 100_000);
        assert!(col1 < 100, "untouched column is {col1} bytes");
    }

    #[test]
    fn sparse_branch_ids_work() {
        let mut idx = BranchBitmapIndex::new();
        idx.add_branch(BranchId(42), None);
        idx.ensure_rows(4);
        idx.set(BranchId(42), 3, true);
        assert!(idx.get(BranchId(42), 3));
        assert!(!idx.has_branch(BranchId(0)));
    }

    #[test]
    fn clone_then_diverge() {
        let mut idx = BranchBitmapIndex::new();
        idx.add_branch(BranchId(0), None);
        idx.ensure_rows(3);
        idx.set(BranchId(0), 1, true);
        idx.add_branch(BranchId(1), Some(BranchId(0)));
        idx.set(BranchId(1), 1, false);
        assert!(idx.get(BranchId(0), 1));
        assert!(!idx.get(BranchId(1), 1));
    }

    #[test]
    fn remove_branch_drops_column() {
        let mut idx = BranchBitmapIndex::new();
        idx.add_branch(BranchId(0), None);
        idx.remove_branch(BranchId(0));
        assert_eq!(idx.num_branches(), 0);
        assert!(!idx.get(BranchId(0), 0));
    }

    #[test]
    fn branch_bitmap_pads_to_row_count() {
        let mut idx = BranchBitmapIndex::new();
        idx.add_branch(BranchId(0), None);
        idx.ensure_rows(100);
        let bm = idx.branch_bitmap(BranchId(0));
        assert_eq!(bm.len(), 100);
    }
}
