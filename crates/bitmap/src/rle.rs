//! Run-length encoding of bitmaps.
//!
//! Commit history files store XOR deltas between consecutive commit
//! bitmaps, "encoded using a combination of delta and run length encoding
//! (RLE) compression" (§3.2). Deltas are sparse (one set bit per
//! insert/update/delete since the previous commit), so alternating
//! zero-run/one-run varints compress them well. A raw fallback guards the
//! adversarial case where runs are so short that RLE would expand the data
//! — the paper observes exactly this pressure in tuple-first, where "the
//! fragmentation of inserts ... increases dispersion of bits in bitmaps,
//! enabling less compression" (§5.3).

use decibel_common::error::{DbError, Result};
use decibel_common::varint;

use crate::bitmap::Bitmap;

const TAG_RLE: u8 = 0;
const TAG_RAW: u8 = 1;

/// Encodes `bm` into a compact byte payload.
pub fn encode(bm: &Bitmap) -> Vec<u8> {
    let rle = encode_rle(bm);
    let raw_len = 1 + varint::encoded_len(bm.len()) + bm.len().div_ceil(64) as usize * 8;
    if rle.len() <= raw_len {
        rle
    } else {
        encode_raw(bm)
    }
}

fn encode_rle(bm: &Bitmap) -> Vec<u8> {
    let mut out = vec![TAG_RLE];
    varint::write_u64(&mut out, bm.len());
    // Alternating (zero-run, one-run) pairs; the leading zero run may be 0.
    let mut cursor = 0u64;
    let mut iter = bm.iter_ones().peekable();
    while let Some(start) = iter.next() {
        let mut end = start + 1;
        while iter.peek() == Some(&end) {
            iter.next();
            end += 1;
        }
        varint::write_u64(&mut out, start - cursor); // zeros
        varint::write_u64(&mut out, end - start); // ones
        cursor = end;
    }
    out
}

fn encode_raw(bm: &Bitmap) -> Vec<u8> {
    let mut out = vec![TAG_RAW];
    varint::write_u64(&mut out, bm.len());
    let nwords = bm.len().div_ceil(64) as usize;
    for w in &bm.words()[..nwords] {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Decodes a payload produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<Bitmap> {
    let tag = *buf
        .first()
        .ok_or_else(|| DbError::corrupt("empty RLE payload"))?;
    let mut pos = 1usize;
    let len = varint::read_u64(buf, &mut pos)?;
    match tag {
        TAG_RLE => {
            let mut bm = Bitmap::zeros(len);
            let mut bit = 0u64;
            let mut ones = false;
            while pos < buf.len() {
                let run = varint::read_u64(buf, &mut pos)?;
                if ones {
                    for i in bit..bit + run {
                        bm.set(i, true);
                    }
                }
                bit += run;
                ones = !ones;
            }
            if bit > len {
                return Err(DbError::corrupt("RLE runs exceed declared length"));
            }
            Ok(bm)
        }
        TAG_RAW => {
            let nwords = len.div_ceil(64) as usize;
            if buf.len() < pos + nwords * 8 {
                return Err(DbError::corrupt("raw bitmap payload truncated"));
            }
            let mut words = Vec::with_capacity(nwords);
            for i in 0..nwords {
                let off = pos + i * 8;
                words.push(u64::from_le_bytes(
                    buf[off..off + 8].try_into().expect("8-byte bitmap word"),
                ));
            }
            Ok(Bitmap::from_words(words, len))
        }
        other => Err(DbError::corrupt(format!(
            "unknown bitmap payload tag {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decibel_common::rng::DetRng;

    fn roundtrip(bm: &Bitmap) {
        let enc = encode(bm);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.len(), bm.len());
        assert_eq!(
            dec.iter_ones().collect::<Vec<_>>(),
            bm.iter_ones().collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_bitmap() {
        roundtrip(&Bitmap::new());
        roundtrip(&Bitmap::zeros(1000));
    }

    #[test]
    fn sparse_bitmap_compresses() {
        let mut bm = Bitmap::zeros(1_000_000);
        for i in (0..1_000_000).step_by(50_000) {
            bm.set(i, true);
        }
        let enc = encode(&bm);
        assert!(enc.len() < 200, "sparse encoding is {} bytes", enc.len());
        roundtrip(&bm);
    }

    #[test]
    fn dense_runs() {
        let mut bm = Bitmap::zeros(10_000);
        for i in 2_000..8_000 {
            bm.set(i, true);
        }
        let enc = encode(&bm);
        assert!(enc.len() < 20);
        roundtrip(&bm);
    }

    #[test]
    fn leading_ones() {
        let mut bm = Bitmap::new();
        for i in 0..100 {
            bm.set(i, true);
        }
        roundtrip(&bm);
    }

    #[test]
    fn alternating_falls_back_to_raw() {
        let mut bm = Bitmap::zeros(4096);
        for i in (0..4096).step_by(2) {
            bm.set(i, true);
        }
        let enc = encode(&bm);
        assert_eq!(enc[0], TAG_RAW, "adversarial input uses the raw fallback");
        // Raw is ~512 bytes + header; RLE would be ~4096.
        assert!(enc.len() < 600);
        roundtrip(&bm);
    }

    #[test]
    fn random_bitmaps_roundtrip() {
        let mut rng = DetRng::seed_from_u64(99);
        for _ in 0..20 {
            let len = rng.range(1, 5000);
            let mut bm = Bitmap::zeros(len);
            let density = rng.below(100);
            for i in 0..len {
                if rng.below(100) < density {
                    bm.set(i, true);
                }
            }
            roundtrip(&bm);
        }
    }

    #[test]
    fn trailing_zeros_preserved_in_length() {
        let mut bm = Bitmap::zeros(500);
        bm.set(10, true);
        let dec = decode(&encode(&bm)).unwrap();
        assert_eq!(dec.len(), 500);
        assert!(!dec.get(499));
    }

    #[test]
    fn corrupt_payloads_error() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[9, 0]).is_err()); // unknown tag
        let mut bm = Bitmap::zeros(64);
        bm.set(1, true);
        let mut enc = encode(&bm);
        if enc[0] == TAG_RAW {
            enc.truncate(enc.len() - 1);
            assert!(decode(&enc).is_err());
        }
    }
}
