//! The `decibel-bench` binary: regenerates every table and figure from the
//! paper's evaluation (§5) plus the DESIGN.md ablations.
//!
//! ```text
//! decibel-bench <experiment|all> [--scale F] [--repeats N] [--warm] [--json DIR]
//! ```
//!
//! Experiments: smoke server commit fig6a fig6b fig7 fig8 fig9 fig10 fig11 table2
//! table3 table4 table5 table6 table7 ablate-bitmap ablate-commit-layers
//! ablate-clustered. Scale 1.0 keeps each experiment in the seconds-to-
//! minutes range; the paper's shapes (who wins, by what factor) are the
//! reproduction target, not absolute numbers (see EXPERIMENTS.md).
//!
//! `smoke` is the seconds-scale multi-branch scan microbenchmark CI runs
//! on every PR; `--json DIR` writes each experiment's table as
//! `DIR/<name>.json` (the format `BENCH_scan.json` records). Experiments
//! that attach metric-registry deltas (smoke, commit) also write
//! `DIR/<name>_metrics.json` — per-row snapshot deltas plus the run's
//! cumulative snapshot, the CI metrics artifact.

use decibel_bench::experiments::{self, Ctx};
use decibel_bench::report::Table;
use decibel_common::Result;

const EXPERIMENTS: &[&str] = &[
    "smoke",
    "server",
    "commit",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "ablate-bitmap",
    "ablate-commit-layers",
    "ablate-clustered",
];

fn run_one(name: &str, ctx: &Ctx) -> Result<Table> {
    match name {
        "smoke" => experiments::smoke::smoke(ctx),
        "server" => experiments::server::server(ctx),
        "commit" => experiments::commit::commit(ctx),
        "fig6a" => experiments::scaling::fig6a(ctx),
        "fig6b" => experiments::scaling::fig6b(ctx),
        "fig7" => experiments::queries::fig7(ctx),
        "fig8" => experiments::queries::fig8(ctx),
        "fig9" => experiments::queries::fig9(ctx),
        "fig10" => experiments::queries::fig10(ctx),
        "fig11" => experiments::tablewise::fig11(ctx),
        "table2" => experiments::commits::table2(ctx),
        "table3" => experiments::merges::table3(ctx),
        "table4" => experiments::tablewise::table4(ctx),
        "table5" => experiments::load::table5(ctx),
        "table6" => experiments::gitcmp::table6(ctx),
        "table7" => experiments::gitcmp::table7(ctx),
        "ablate-bitmap" => experiments::ablate::ablate_bitmap(ctx),
        "ablate-commit-layers" => experiments::ablate::ablate_commit_layers(ctx),
        "ablate-clustered" => experiments::ablate::ablate_clustered(ctx),
        other => Err(decibel_common::DbError::Invalid(format!(
            "unknown experiment {other:?}; known: {}",
            EXPERIMENTS.join(" ")
        ))),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: decibel-bench <experiment|all> [--scale F] [--repeats N] [--warm] [--json DIR]"
        );
        eprintln!("experiments: {}", EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    let mut ctx = Ctx::default();
    let mut names: Vec<String> = Vec::new();
    let mut json_dir: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_dir = Some(args.get(i).map(Into::into).unwrap_or_else(|| {
                    eprintln!("--json needs a directory");
                    std::process::exit(2);
                }));
            }
            "--scale" => {
                i += 1;
                ctx.scale = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scale needs a number");
                    std::process::exit(2);
                });
            }
            "--repeats" => {
                i += 1;
                ctx.repeats = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--repeats needs a number");
                    std::process::exit(2);
                });
            }
            "--warm" => ctx.cold = false,
            name => names.push(name.to_string()),
        }
        i += 1;
    }
    if names.iter().any(|n| n == "all") {
        names = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for name in &names {
        let start = std::time::Instant::now();
        match run_one(name, &ctx) {
            Ok(table) => {
                table.print();
                if let Some(dir) = &json_dir {
                    if let Err(e) = std::fs::create_dir_all(dir).and_then(|_| {
                        std::fs::write(dir.join(format!("{name}.json")), table.to_json())
                    }) {
                        eprintln!("writing {name}.json failed: {e}");
                        std::process::exit(1);
                    }
                    if let Some(metrics) = table.metrics_json() {
                        let path = dir.join(format!("{name}_metrics.json"));
                        if let Err(e) = std::fs::write(&path, metrics) {
                            eprintln!("writing {name}_metrics.json failed: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                eprintln!(
                    "[{name} completed in {:.1}s]\n",
                    start.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("{name} failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
