//! Table 2: bitmap commit data (§5.3).
//!
//! For tuple-first and hybrid: aggregate compressed commit-history ("pack
//! file") size, average commit creation time, and average checkout time
//! over a random set of commits "agnostic to any branch or location".
//! Hybrid's per-(branch, segment) stores yield more, smaller files and
//! faster checkouts; tuple-first's interleaved inserts disperse bits and
//! compress worse.

use decibel_common::ids::CommitId;
use decibel_common::record::Record;
use decibel_common::rng::DetRng;
use decibel_common::Result;
use decibel_core::store::VersionedStore;
use decibel_core::types::EngineKind;

use crate::experiments::{build_loaded, Ctx};
use crate::report::{mb, ms, Table};
use crate::spec::WorkloadSpec;
use crate::strategy::Strategy;

/// Branch count (50 in the paper).
pub const BRANCHES: usize = 50;
/// Commits sampled for create/checkout timing (1000 in the paper).
pub const SAMPLES: usize = 100;

struct CommitStats {
    store_bytes: u64,
    avg_commit_ms: f64,
    avg_checkout_ms: f64,
}

fn measure(
    store: &mut dyn VersionedStore,
    spec: &WorkloadSpec,
    samples: usize,
) -> Result<CommitStats> {
    let mut rng = DetRng::seed_from_u64(21);
    // Commit timing: a few fresh ops on a random branch, then a timed
    // commit (the paper times the commits its driver creates).
    let branches: Vec<_> = store.graph().heads(false);
    let mut next_key = 1u64 << 40; // away from the loader's key space
    let mut commit_total = 0.0;
    for _ in 0..samples {
        let (b, _) = branches[rng.below_usize(branches.len())];
        for _ in 0..5 {
            let fields = (0..spec.cols).map(|_| rng.next_u32() as u64).collect();
            store.insert(b, Record::new(next_key, fields))?;
            next_key += 1;
        }
        let t = std::time::Instant::now();
        store.commit(b)?;
        commit_total += t.elapsed().as_secs_f64() * 1e3;
    }
    // Checkout timing: random historical commits.
    let n_commits = store.graph().num_commits();
    let mut checkout_total = 0.0;
    for _ in 0..samples {
        let c = CommitId(rng.below(n_commits));
        let t = std::time::Instant::now();
        store.checkout_version(c)?;
        checkout_total += t.elapsed().as_secs_f64() * 1e3;
    }
    Ok(CommitStats {
        store_bytes: store.stats().commit_store_bytes,
        avg_commit_ms: commit_total / samples as f64,
        avg_checkout_ms: checkout_total / samples as f64,
    })
}

/// Table 2: commit-history sizes and commit/checkout latency for TF vs HY.
pub fn table2(ctx: &Ctx) -> Result<Table> {
    let mut table = Table::new(
        format!(
            "Table 2: bitmap commit data ({BRANCHES} branches, scale={})",
            ctx.scale
        ),
        &[
            "strategy",
            "engine",
            "pack files (MB)",
            "avg commit (ms)",
            "avg checkout (ms)",
        ],
    );
    let samples = ((SAMPLES as f64) * ctx.scale.min(1.0)).max(10.0) as usize;
    for strategy in Strategy::all() {
        let spec = WorkloadSpec::scaled(strategy, BRANCHES, ctx.scale);
        for kind in [EngineKind::TupleFirstBranch, EngineKind::Hybrid] {
            let dir = tempfile::tempdir().expect("tempdir");
            let (mut store, _report) = build_loaded(kind, &spec, dir.path())?;
            let stats = measure(store.as_mut(), &spec, samples)?;
            table.row(vec![
                strategy.label().to_string(),
                kind.label().to_string(),
                mb(stats.store_bytes),
                ms(stats.avg_commit_ms),
                ms(stats.avg_checkout_ms),
            ]);
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_smoke() {
        let t = table2(&Ctx::smoke()).unwrap();
        let r = t.render();
        assert!(r.contains("TF"));
        assert!(r.contains("HY"));
        // 4 strategies x 2 engines = 8 data rows.
        assert_eq!(r.lines().count(), 3 + 8);
    }
}
