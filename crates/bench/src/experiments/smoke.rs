//! The seconds-scale smoke benchmark: a multi-branch scan microbenchmark
//! whose JSON output is the repo's recorded scan baseline
//! (`BENCH_scan.json`), plus multi-session concurrency rows
//! (`BENCH_concurrency.json`) — all driven through the public `Database`
//! connection API.
//!
//! The workload targets the regime the paper's bitmaps exist for ("bitmaps
//! are space-efficient and can be quickly intersected for multi-branch
//! operations", §3.1): a base relation loaded on master, inherited by
//! every one of 32 forked branches (so every base row is live in all 33
//! branches and multi-branch scans annotate against 33 columns), plus
//! per-branch local updates and inserts so child segments and cross-
//! segment liveness are exercised too.
//!
//! Unlike the paper experiments (which flush caches to measure I/O, §5),
//! the multi-branch rows run *warm*: they measure the CPU scan pipeline —
//! bitmap liveness resolution, page-pinned record decode, per-branch
//! membership annotation — which is what the word-level scan work
//! optimizes. A cold single-branch row is kept as an I/O sanity signal.
//!
//! The concurrency rows measure the connection layer itself: K reader
//! sessions scanning master from K threads (sharing the store's read
//! lock) against the same K scans issued back-to-back from one session.
//! On multi-core hardware the concurrent row wins roughly linearly; on a
//! single core it shows the read path adds no serialization beyond the
//! CPU itself.
//!
//! The recovery rows (`BENCH_recovery.json`) time `Database::open` against
//! the same journaled history twice: once with no checkpoint (`open_cold`,
//! full logical replay — the pre-checkpoint recovery path) and once after
//! a `flush` checkpoint (`open_checkpointed`, reopen from flushed engine
//! state + empty journal suffix). Their ratio is the reopen speedup the
//! checkpoint buys; it grows without bound in the number of committed
//! transactions, since cold replay is O(history) and checkpointed open is
//! O(state).

use std::sync::Arc;
use std::time::Instant;

use decibel_common::ids::BranchId;
use decibel_common::record::Record;
use decibel_common::schema::{ColumnType, Schema};
use decibel_common::Projection;
use decibel_common::Result;
use decibel_core::query::Predicate;
use decibel_core::{Database, EngineKind};
use decibel_obs::Snapshot;
use decibel_pagestore::StoreConfig;

use crate::experiments::Ctx;
use crate::queries::q1;
use crate::report::{metrics_artifact, Table};

/// Branches forked from master (each inheriting the full base relation).
const BRANCHES: u64 = 32;
/// Data columns per record (narrow records keep the scan loop, not record
/// materialization, dominant).
const COLS: usize = 12;
/// Reader sessions (and threads) in the concurrency rows.
const SESSIONS: usize = 4;

/// One measured smoke row: name, emitted rows, best-of-repeats wall time.
struct Row {
    name: &'static str,
    rows: u64,
    best_ms: f64,
}

impl Row {
    fn throughput(&self) -> f64 {
        self.rows as f64 / (self.best_ms / 1e3)
    }
}

fn rec(key: u64, tag: u64) -> Record {
    Record::new(key, (0..COLS as u64).map(|c| key ^ (tag + c)).collect())
}

/// Builds the benchmark database: `~150k * scale` base rows on master,
/// then 32 forks each applying local updates (2% of the base) and inserts.
/// Loading goes through the bulk-load escape hatch (`with_store_mut`);
/// everything measured goes through the public read surface.
fn build_db(scale: f64) -> Result<(tempfile::TempDir, Arc<Database>, Vec<BranchId>)> {
    let dir = tempfile::tempdir().map_err(|e| decibel_common::DbError::io("smoke tempdir", e))?;
    let base_rows = ((150_000.0 * scale) as u64).max(2_000);
    let schema = Schema::new(COLS, ColumnType::U32);
    let db = Database::create(
        dir.path().join("hy"),
        EngineKind::Hybrid,
        schema,
        &StoreConfig::bench_default(),
    )?;
    let heads = db.with_store_mut(|store| -> Result<Vec<BranchId>> {
        for k in 0..base_rows {
            store.insert(BranchId::MASTER, rec(k, 1))?;
        }
        let mut heads = vec![BranchId::MASTER];
        let local_edits = (base_rows / 50).max(10);
        for b in 0..BRANCHES {
            let child = store.create_branch(&format!("b{b}"), BranchId::MASTER.into())?;
            for i in 0..local_edits {
                // Update an inherited row (clears the base bit in the shared
                // segment, appends to the child head) and insert a private one.
                let victim = (b + i * BRANCHES) % base_rows;
                store.update(child, rec(victim, 100 + b))?;
                store.insert(child, rec(base_rows + b * local_edits + i, b))?;
            }
            heads.push(child);
        }
        Ok(heads)
    })?;
    Ok((dir, db, heads))
}

/// Builds a journaled recovery workload: `txns` session commits of
/// `rows_per_txn` inserts each on a hybrid store, optionally checkpointed
/// (`flush`) before the handle drops. Everything goes through the public
/// session API so the history is fully journaled.
fn build_recovery_db(
    dir: &std::path::Path,
    flush: bool,
    txns: u64,
    rows_per_txn: u64,
) -> Result<()> {
    let db = Database::create(
        dir,
        EngineKind::Hybrid,
        Schema::new(COLS, ColumnType::U32),
        &StoreConfig::bench_default(),
    )?;
    let mut session = db.session();
    for t in 0..txns {
        for i in 0..rows_per_txn {
            session.insert(rec(t * rows_per_txn + i, t))?;
        }
        session.commit()?;
    }
    drop(session);
    if flush {
        db.flush()?;
    }
    Ok(())
}

/// Records the registry movement the last measured block caused — the
/// snapshot delta that rides alongside its timing row in the metrics
/// artifact — and advances the baseline mark.
fn record_delta(db: &Database, name: &str, mark: &mut Snapshot, out: &mut Vec<(String, Snapshot)>) {
    let now = db.metrics().snapshot();
    out.push((name.to_string(), now.diff(mark)));
    *mark = now;
}

/// Times `f` `repeats` times and returns the best wall time in ms with the
/// (identical across runs) row count.
fn best_of(repeats: usize, mut f: impl FnMut() -> Result<u64>) -> Result<(u64, f64)> {
    let mut rows = 0;
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        rows = f()?;
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    Ok((rows, best))
}

/// Runs the smoke microbenchmark and renders the scan-throughput rows.
/// The reported `rows` of the multi-branch rows count *annotations* (one
/// per record per branch it is live in) — the output volume a Q4-style
/// consumer actually processes; the concurrency rows count records scanned
/// across all sessions.
pub fn smoke(ctx: &Ctx) -> Result<Table> {
    let (_dir, db, heads) = build_db(ctx.scale)?;
    let repeats = ctx.repeats.max(3);
    let mut rows = Vec::new();
    // Per-row registry deltas for the metrics artifact: what each measured
    // block did to the counters, not just how long it took.
    let mut deltas: Vec<(String, Snapshot)> = Vec::new();
    let mut mark = db.metrics().snapshot();

    // Single-branch scan, cold: I/O-path sanity row.
    let (n, ms) = best_of(repeats, || {
        db.with_store(|store| Ok(q1(store, BranchId::MASTER.into(), true)?.rows))
    })?;
    record_delta(&db, "q1_master_cold", &mut mark, &mut deltas);
    rows.push(Row {
        name: "q1_master_cold",
        rows: n,
        best_ms: ms,
    });

    // Sequential multi-branch scan over every head, warm (streaming, so it
    // stays comparable to the recorded BENCH_scan.json baseline).
    db.with_store(|store| store.drop_caches());
    let (n, ms) = best_of(repeats, || {
        db.with_store(|store| {
            let mut annotations = 0u64;
            for item in store.multi_scan(&heads)? {
                let (_rec, live) = item?;
                annotations += live.len() as u64;
            }
            Ok(annotations)
        })
    })?;
    record_delta(&db, "multi_scan_warm", &mut mark, &mut deltas);
    rows.push(Row {
        name: "multi_scan_warm",
        rows: n,
        best_ms: ms,
    });

    // Parallel multi-branch scan through the fluent builder: per-segment
    // work-stealing tasks, no engine downcasting.
    let (n, ms) = best_of(repeats, || {
        Ok(db
            .read_branches(&heads)
            .parallel(4)
            .annotated()?
            .iter()
            .map(|(_, live)| live.len() as u64)
            .sum())
    })?;
    record_delta(&db, "par_multi_scan_warm", &mut mark, &mut deltas);
    rows.push(Row {
        name: "par_multi_scan_warm",
        rows: n,
        best_ms: ms,
    });

    // Selective projected query: 2 of the 12 columns, fixed-width
    // predicate. The baseline decodes every record in full, evaluates the
    // predicate on the materialized record, then projects; the projected
    // row pushes the predicate to page level and decodes only the two
    // selected columns of the survivors. Same rows out of both.
    let selective = Predicate::ColMod(2, 16, 3);
    let (n, ms) = best_of(repeats, || {
        let projection = Projection::of(&[0, 1]);
        db.with_store(|store| {
            let mut out = Vec::new();
            for item in store.scan(BranchId::MASTER.into())? {
                let mut r = item?;
                if selective.eval(&r) {
                    r.project(&projection);
                    out.push(r);
                }
            }
            Ok(out.len() as u64)
        })
    })?;
    record_delta(&db, "q_selective_full_decode", &mut mark, &mut deltas);
    rows.push(Row {
        name: "q_selective_full_decode",
        rows: n,
        best_ms: ms,
    });
    let (n, ms) = best_of(repeats, || {
        Ok(db
            .read(BranchId::MASTER)
            .select(&[0, 1])
            .filter(selective.clone())
            .collect()?
            .len() as u64)
    })?;
    record_delta(&db, "q_selective_projected", &mut mark, &mut deltas);
    rows.push(Row {
        name: "q_selective_projected",
        rows: n,
        best_ms: ms,
    });

    // Serialized baseline: one session issues K full master scans
    // back-to-back.
    let (n, ms) = best_of(repeats, || {
        let mut session = db.session();
        let mut scanned = 0u64;
        for _ in 0..SESSIONS {
            scanned += session.scan_with(|_| {})?;
        }
        Ok(scanned)
    })?;
    record_delta(&db, "serialized_read_k4", &mut mark, &mut deltas);
    rows.push(Row {
        name: "serialized_read_k4",
        rows: n,
        best_ms: ms,
    });

    // Concurrent sessions: the same K scans, one session per thread, all
    // reading under the shared store lock at once.
    let (n, ms) = best_of(repeats, || {
        let mut handles = Vec::with_capacity(SESSIONS);
        for _ in 0..SESSIONS {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || -> Result<u64> {
                let mut session = db.session();
                session.scan_with(|_| {})
            }));
        }
        let mut scanned = 0u64;
        for handle in handles {
            scanned += handle.join().expect("reader session thread")?;
        }
        Ok(scanned)
    })?;
    record_delta(&db, "concurrent_read_k4", &mut mark, &mut deltas);
    rows.push(Row {
        name: "concurrent_read_k4",
        rows: n,
        best_ms: ms,
    });

    // Recovery rows: the same journaled history opened cold (no
    // checkpoint: full replay) vs checkpointed (flushed state + empty
    // suffix). `rows` reports the committed row count either open must
    // restore; wall time is the `Database::open` call alone.
    let txns = ((600.0 * ctx.scale) as u64).max(60);
    let rows_per_txn = 40u64;
    let cold_dir = tempfile::tempdir()
        .map_err(|e| decibel_common::DbError::io("recovery bench tempdir", e))?;
    let cold_path = cold_dir.path().join("cold");
    build_recovery_db(&cold_path, false, txns, rows_per_txn)?;
    let (n, ms) = best_of(repeats, || {
        let db = Database::open(&cold_path, &StoreConfig::bench_default())?;
        assert_eq!(db.replayed_on_open(), txns, "cold open replays all txns");
        Ok(txns * rows_per_txn)
    })?;
    // The recovery rows reopen fresh databases with their own registries,
    // so their deltas come from the reopened instance (where the
    // checkpoint-family recovery counters live), not the smoke database.
    let verify_db = Database::open(&cold_path, &StoreConfig::bench_default())?;
    assert_eq!(
        verify_db.read(BranchId::MASTER).count()?,
        txns * rows_per_txn
    );
    deltas.push(("open_cold".to_string(), verify_db.metrics().snapshot()));
    rows.push(Row {
        name: "open_cold",
        rows: n,
        best_ms: ms,
    });
    let ckpt_path = cold_dir.path().join("checkpointed");
    build_recovery_db(&ckpt_path, true, txns, rows_per_txn)?;
    let (n, ms) = best_of(repeats, || {
        let db = Database::open(&ckpt_path, &StoreConfig::bench_default())?;
        assert_eq!(db.replayed_on_open(), 0, "checkpoint covers the history");
        Ok(txns * rows_per_txn)
    })?;
    let verify_db = Database::open(&ckpt_path, &StoreConfig::bench_default())?;
    assert_eq!(
        verify_db.read(BranchId::MASTER).count()?,
        txns * rows_per_txn
    );
    deltas.push((
        "open_checkpointed".to_string(),
        verify_db.metrics().snapshot(),
    ));
    rows.push(Row {
        name: "open_checkpointed",
        rows: n,
        best_ms: ms,
    });

    let mut table = Table::new(
        format!(
            "Smoke: multi-branch scan + concurrent sessions ({} branches, {} live base rows, {} reader sessions)",
            heads.len(),
            db.read(BranchId::MASTER).count()?,
            SESSIONS,
        ),
        &["bench", "rows", "best_ms", "rows_per_sec"],
    );
    for r in &rows {
        table.row(vec![
            r.name.to_string(),
            r.rows.to_string(),
            format!("{:.2}", r.best_ms),
            format!("{:.0}", r.throughput()),
        ]);
    }
    table.attach_metrics(metrics_artifact(&deltas, &db.metrics().snapshot()));
    Ok(table)
}
