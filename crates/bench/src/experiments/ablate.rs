//! Ablations of Decibel's design choices (beyond the paper's headline
//! figures; see DESIGN.md §3).

use std::time::Instant;

use decibel_bitmap::{Bitmap, CommitStore};
use decibel_common::rng::DetRng;
use decibel_common::Result;
use decibel_core::types::EngineKind;

use crate::experiments::{build_loaded, mean_ms, Ctx};
use crate::queries::{all_heads, pick_branch, q1, q4, Pick};
use crate::report::{ms, Table};
use crate::spec::WorkloadSpec;
use crate::strategy::Strategy;

/// Bitmap orientation ablation (§3.1/§5): branch-oriented vs
/// tuple-oriented tuple-first on single- and multi-branch scans.
pub fn ablate_bitmap(ctx: &Ctx) -> Result<Table> {
    let mut table = Table::new(
        format!(
            "Ablation: bitmap orientation (FLAT, 50 branches, scale={})",
            ctx.scale
        ),
        &["orientation", "Q1 child (ms)", "Q4 heads (ms)"],
    );
    let spec = WorkloadSpec::scaled(Strategy::Flat, 50, ctx.scale);
    for kind in [EngineKind::TupleFirstBranch, EngineKind::TupleFirstTuple] {
        let dir = tempfile::tempdir().expect("tempdir");
        let (store, report) = build_loaded(kind, &spec, dir.path())?;
        let mut rng = DetRng::seed_from_u64(31);
        let q1ms = mean_ms(ctx.repeats, || {
            let b = pick_branch(&report, Pick::FlatChild, &mut rng)?;
            Ok(q1(store.as_ref(), b.into(), ctx.cold)?.ms())
        })?;
        let heads = all_heads(store.as_ref());
        let q4ms = mean_ms(ctx.repeats, || {
            Ok(q4(store.as_ref(), &heads, ctx.cold)?.ms())
        })?;
        table.row(vec![kind.label().to_string(), ms(q1ms), ms(q4ms)]);
    }
    Ok(table)
}

/// Commit-layer ablation (§3.2): checkout latency with the two-layer
/// composite-delta chain vs a single base-delta chain, as commit depth
/// grows.
pub fn ablate_commit_layers(ctx: &Ctx) -> Result<Table> {
    let mut table = Table::new(
        "Ablation: commit-history layering (checkout of deepest commit)".to_string(),
        &["commits", "layered (ms)", "unlayered (ms)", "file (KB)"],
    );
    let rows_per_commit = (200.0 * ctx.scale).max(10.0) as u64;
    for n_commits in [16u64, 64, 256] {
        let dir = tempfile::tempdir().expect("tempdir");
        let mut store = CommitStore::create(dir.path().join("c"), 16)?;
        let mut rng = DetRng::seed_from_u64(41);
        let mut bm = Bitmap::new();
        let mut rows = 0u64;
        for _ in 0..n_commits {
            // A commit interval's worth of inserts + a few updates.
            for _ in 0..rows_per_commit {
                bm.set(rows, true);
                rows += 1;
            }
            for _ in 0..rows_per_commit / 5 {
                let r = rng.below(rows);
                bm.set(r, !bm.get(r));
            }
            store.append_commit(&bm)?;
        }
        let layered = mean_ms(ctx.repeats, || {
            let t = Instant::now();
            store.checkout(n_commits - 1)?;
            Ok(t.elapsed().as_secs_f64() * 1e3)
        })?;
        let unlayered = mean_ms(ctx.repeats, || {
            let t = Instant::now();
            store.checkout_unlayered(n_commits - 1)?;
            Ok(t.elapsed().as_secs_f64() * 1e3)
        })?;
        table.row(vec![
            n_commits.to_string(),
            ms(layered),
            ms(unlayered),
            (store.file_size() / 1024).to_string(),
        ]);
    }
    Ok(table)
}

/// Loading-mode ablation (§4.2): clustered vs interleaved tuple-first
/// loading on flat, which Figure 7's TF-clustered bar summarizes.
pub fn ablate_clustered(ctx: &Ctx) -> Result<Table> {
    let mut table = Table::new(
        format!(
            "Ablation: clustered vs interleaved TF load (FLAT, scale={})",
            ctx.scale
        ),
        &["mode", "Q1 child (ms)", "load (s)"],
    );
    for clustered in [false, true] {
        let mut spec = WorkloadSpec::scaled(Strategy::Flat, 50, ctx.scale);
        spec.clustered = clustered;
        let dir = tempfile::tempdir().expect("tempdir");
        let (store, report) = build_loaded(EngineKind::TupleFirstBranch, &spec, dir.path())?;
        let mut rng = DetRng::seed_from_u64(43);
        let q1ms = mean_ms(ctx.repeats, || {
            let b = pick_branch(&report, Pick::FlatChild, &mut rng)?;
            Ok(q1(store.as_ref(), b.into(), ctx.cold)?.ms())
        })?;
        table.row(vec![
            if clustered {
                "clustered"
            } else {
                "interleaved"
            }
            .to_string(),
            ms(q1ms),
            format!("{:.2}", report.duration.as_secs_f64()),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_smoke() {
        let ctx = Ctx::smoke();
        assert!(ablate_bitmap(&ctx).unwrap().render().contains("TF(tuple)"));
        assert!(ablate_commit_layers(&ctx).unwrap().render().contains("256"));
        assert!(ablate_clustered(&ctx)
            .unwrap()
            .render()
            .contains("clustered"));
    }
}
