//! The commit-path workload: K writer sessions committing to disjoint
//! branches, concurrently vs serialized (`BENCH_commit.json`).
//!
//! This measures what the sharded commit path buys. Both rows perform the
//! identical transaction stream — K writers × C commits × R rows, each
//! writer on its own branch — with WAL fsync *enabled* (unlike the scan
//! experiments: durability cost is exactly what group commit amortizes):
//!
//! * `commit_k4_serialized` — one thread drains the writers back-to-back:
//!   every commit is alone in its group, so it pays a full fsync, and the
//!   apply/prepare sections never overlap (the pre-shard behaviour, which
//!   the old store-exclusive commit section forced by construction);
//! * `commit_k4_disjoint` — K threads commit concurrently: disjoint
//!   branches hold different commit shards, so apply/prepare overlap on
//!   multi-core hardware, and concurrently sealed transactions share one
//!   group fsync.
//!
//! On multi-core the disjoint row wins on wall time; on a single core it
//! should hold parity while still issuing measurably fewer WAL flushes —
//! the `wal_flushes` and `txns_per_flush` columns (from
//! [`Database::journal_stats`]) make the grouping visible either way, and
//! `max_cc` confirms the critical sections actually overlapped.

use std::sync::Arc;
use std::time::Instant;

use decibel_common::ids::BranchId;
use decibel_common::record::Record;
use decibel_common::schema::{ColumnType, Schema};
use decibel_common::Result;
use decibel_core::{Database, EngineKind, JournalStats, VersionRef};
use decibel_obs::Snapshot;
use decibel_pagestore::StoreConfig;

use crate::experiments::Ctx;
use crate::report::{metrics_artifact, Table};

/// Concurrent writer sessions (one branch each).
const WRITERS: u64 = 4;
/// Rows per transaction: small commits keep the per-txn fixed costs
/// (sequencing, fsync) dominant — the regime group commit targets.
const ROWS_PER_COMMIT: u64 = 25;
/// Data columns per record (matches the smoke workload).
const COLS: usize = 12;

fn rec(key: u64, tag: u64) -> Record {
    Record::new(key, (0..COLS as u64).map(|c| key ^ (tag + c)).collect())
}

/// The commit workload runs with fsync on: a group of concurrently sealed
/// transactions then shares one `fdatasync`, which is the effect under
/// measurement.
fn config() -> StoreConfig {
    StoreConfig {
        fsync: true,
        ..StoreConfig::bench_default()
    }
}

/// Fresh database with a small committed base and one branch per writer.
fn build_db() -> Result<(tempfile::TempDir, Arc<Database>)> {
    let dir = tempfile::tempdir().map_err(|e| decibel_common::DbError::io("commit tempdir", e))?;
    let db = Database::create(
        dir.path().join("hy"),
        EngineKind::Hybrid,
        Schema::new(COLS, ColumnType::U32),
        &config(),
    )?;
    let mut s = db.session();
    for k in 0..100u64 {
        s.insert(rec(k, 1))?;
    }
    s.commit()?;
    drop(s);
    for w in 0..WRITERS {
        db.create_branch(&format!("w{w}"), VersionRef::Branch(BranchId::MASTER))?;
    }
    Ok((dir, db))
}

/// One writer's full transaction stream: `commits` commits of
/// [`ROWS_PER_COMMIT`] inserts on its private branch.
fn run_writer(db: &Arc<Database>, w: u64, commits: u64) -> Result<()> {
    let mut s = db.session();
    s.checkout_branch(&format!("w{w}"))?;
    for c in 0..commits {
        let base = 1_000 + w * 100_000_000 + c * 1_000;
        for i in 0..ROWS_PER_COMMIT {
            s.insert(rec(base + i, w))?;
        }
        s.commit()?;
    }
    Ok(())
}

/// Asserts the run committed everything it claims to have committed.
fn verify(db: &Arc<Database>, commits: u64) -> Result<()> {
    for w in 0..WRITERS {
        let branch = db.branch_id(&format!("w{w}"))?;
        let n = db.read(VersionRef::Branch(branch)).count()?;
        assert_eq!(n, 100 + commits * ROWS_PER_COMMIT, "branch w{w} lost rows");
    }
    Ok(())
}

/// One measured cell: the workload wall time plus the run's journal stats
/// (each repeat uses a fresh database so the counters are per-run).
struct Cell {
    name: &'static str,
    txns: u64,
    rows: u64,
    best_ms: f64,
    stats: JournalStats,
    /// Full registry delta of the best run — the snapshot movement that
    /// rides alongside the timing row in the metrics artifact.
    delta: Snapshot,
}

fn measure(
    name: &'static str,
    repeats: usize,
    commits: u64,
    run: impl Fn(&Arc<Database>) -> Result<()>,
) -> Result<Cell> {
    let mut best = f64::INFINITY;
    let mut stats = None;
    let mut delta = None;
    for _ in 0..repeats.max(1) {
        let (_dir, db) = build_db()?;
        // Counter baseline: exclude the (serial) setup commits from the
        // reported flush/txn counts. The concurrency high-water mark needs
        // no correction — setup is single-threaded.
        let before = db.journal_stats();
        let before_snap = db.metrics().snapshot();
        let start = Instant::now();
        run(&db)?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        verify(&db, commits)?;
        if ms < best {
            best = ms;
            let after = db.journal_stats();
            stats = Some(JournalStats {
                wal_flushes: after.wal_flushes - before.wal_flushes,
                grouped_txns: after.grouped_txns - before.grouped_txns,
                max_concurrent_commits: after.max_concurrent_commits,
            });
            delta = Some(db.metrics().snapshot().diff(&before_snap));
        }
    }
    Ok(Cell {
        name,
        txns: WRITERS * commits,
        rows: WRITERS * commits * ROWS_PER_COMMIT,
        best_ms: best,
        stats: stats.expect("at least one repeat"),
        delta: delta.expect("at least one repeat"),
    })
}

/// Runs the commit workload and renders the serialized/disjoint rows.
pub fn commit(ctx: &Ctx) -> Result<Table> {
    let commits = ((150.0 * ctx.scale) as u64).max(15);
    let repeats = ctx.repeats.max(2);

    let serialized = measure("commit_k4_serialized", repeats, commits, |db| {
        for w in 0..WRITERS {
            run_writer(db, w, commits)?;
        }
        Ok(())
    })?;

    let disjoint = measure("commit_k4_disjoint", repeats, commits, |db| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let db = Arc::clone(db);
                std::thread::spawn(move || run_writer(&db, w, commits))
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread")?;
        }
        Ok(())
    })?;

    let mut table = Table::new(
        format!(
            "Commit path: {WRITERS} writers x {commits} txns x {ROWS_PER_COMMIT} rows on disjoint branches (fsync on), serialized vs concurrent"
        ),
        &[
            "bench",
            "txns",
            "rows",
            "best_ms",
            "txns_per_sec",
            "wal_flushes",
            "txns_per_flush",
            "max_cc",
        ],
    );
    for cell in [&serialized, &disjoint] {
        let s = &cell.stats;
        table.row(vec![
            cell.name.to_string(),
            cell.txns.to_string(),
            cell.rows.to_string(),
            format!("{:.2}", cell.best_ms),
            format!("{:.0}", cell.txns as f64 / (cell.best_ms / 1e3)),
            s.wal_flushes.to_string(),
            format!("{:.2}", s.grouped_txns as f64 / s.wal_flushes.max(1) as f64),
            s.max_concurrent_commits.to_string(),
        ]);
    }
    let deltas: Vec<(String, Snapshot)> = [&serialized, &disjoint]
        .iter()
        .map(|c| (c.name.to_string(), c.delta.clone()))
        .collect();
    // Each repeat uses a fresh database, so the best disjoint run's delta
    // doubles as the cumulative view of that run.
    table.attach_metrics(metrics_artifact(&deltas, &disjoint.delta));
    Ok(table)
}
