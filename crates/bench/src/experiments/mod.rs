//! One module per paper table/figure (see DESIGN.md's experiment index).

pub mod ablate;
pub mod commit;
pub mod commits;
pub mod gitcmp;
pub mod load;
pub mod merges;
pub mod queries;
pub mod scaling;
pub mod server;
pub mod smoke;
pub mod tablewise;

use std::path::Path;
use std::sync::OnceLock;

use decibel_common::Result;
use decibel_core::store::VersionedStore;
use decibel_core::types::EngineKind;
use decibel_core::{Database, ScanPool};

use crate::loader::{load, LoadReport};
use crate::spec::WorkloadSpec;

/// Run-wide knobs shared by every experiment.
#[derive(Debug, Clone, Copy)]
pub struct Ctx {
    /// Dataset volume multiplier (1.0 ≈ seconds per experiment).
    pub scale: f64,
    /// Measured repetitions per cell (means are reported).
    pub repeats: usize,
    /// Drop page caches before each measured query (§5's methodology).
    pub cold: bool,
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx {
            scale: 1.0,
            repeats: 3,
            cold: true,
        }
    }
}

impl Ctx {
    /// A tiny context for tests and criterion benches.
    pub fn smoke() -> Ctx {
        Ctx {
            scale: 0.05,
            repeats: 1,
            cold: true,
        }
    }
}

/// Builds a fresh store of the given kind under `dir`, through the same
/// engine factory `Database` uses (the harness measures storage engines
/// below the connection layer, so it takes the bare store).
pub fn build_store(
    kind: EngineKind,
    spec: &WorkloadSpec,
    dir: &Path,
) -> Result<Box<dyn VersionedStore>> {
    let sub = dir.join(format!(
        "{}-{}",
        kind.label().replace(['(', ')'], "_"),
        spec.strategy
    ));
    Database::build_store(kind, sub, spec.schema(), &spec.store_config())
}

/// Builds and loads a store, returning it with its load report.
pub fn build_loaded(
    kind: EngineKind,
    spec: &WorkloadSpec,
    dir: &Path,
) -> Result<(Box<dyn VersionedStore>, LoadReport)> {
    let mut store = build_store(kind, spec, dir)?;
    let report = load(store.as_mut(), spec)?;
    Ok((store, report))
}

/// The harness-wide work-stealing pool that multi-engine loads fan out
/// on, sized once to the machine (zero workers on a single core, where
/// [`ScanPool::run`] degrades to inline execution).
fn load_pool() -> &'static ScanPool {
    static POOL: OnceLock<ScanPool> = OnceLock::new();
    POOL.get_or_init(|| ScanPool::new(ScanPool::default_threads()))
}

/// Builds and loads one store per entry, all entries fanned out over the
/// shared [`ScanPool`] — the multi-engine experiments (one dataset per
/// engine, identical op stream) no longer pay engine-count × load-time on
/// multi-core machines. Loads are independent (separate directories,
/// per-load deterministic RNG streams), so the loaded stores are
/// byte-identical to sequential loading; results come back in entry
/// order. Entries whose `(kind, strategy)` coincide must point at
/// distinct directories.
pub fn build_loaded_many(
    entries: &[(EngineKind, WorkloadSpec, &Path)],
) -> Result<Vec<(Box<dyn VersionedStore>, LoadReport)>> {
    let tasks: Vec<_> = entries
        .iter()
        .map(|(kind, spec, dir)| move || build_loaded(*kind, spec, dir))
        .collect();
    load_pool().run(tasks).into_iter().collect()
}

/// Mean of a sampling closure run `repeats` times, in milliseconds.
pub fn mean_ms(repeats: usize, mut f: impl FnMut() -> Result<f64>) -> Result<f64> {
    let mut total = 0.0;
    for _ in 0..repeats.max(1) {
        total += f()?;
    }
    Ok(total / repeats.max(1) as f64)
}
