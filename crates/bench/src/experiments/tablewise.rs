//! Figure 11 + Table 4: table-wise updates (§5.5).
//!
//! "Since Decibel copies complete records on each update, a table-wise
//! update to a branch will tend \[to\] increase the data set size by the
//! current size of that branch, and also effectively cluster records into
//! a new heap file." Figure 11 shows Q1 before/after such an update (10
//! branches); Table 4 shows the dataset growth.

use decibel_common::ids::BranchId;
use decibel_common::record::Record;
use decibel_common::rng::DetRng;
use decibel_common::Result;
use decibel_core::store::VersionedStore;
use decibel_core::types::{EngineKind, VersionRef};

use crate::experiments::{build_loaded, mean_ms, Ctx};
use crate::queries::{pick_branch, q1, Pick};
use crate::report::{mb, ms, Table};
use crate::spec::WorkloadSpec;
use crate::strategy::Strategy;

/// Branch count for the table-wise experiments (10 in the paper, "to more
/// clearly display the effects").
pub const BRANCHES: usize = 10;

/// The branch each strategy updates and scans.
fn scan_pick(strategy: Strategy) -> Pick {
    match strategy {
        Strategy::Deep => Pick::DeepTail,
        Strategy::Flat => Pick::FlatChild,
        Strategy::Science => Pick::SciYoungest,
        Strategy::Curation => Pick::Mainline,
    }
}

/// Updates every live record of `branch` with a fresh copy.
pub fn table_wise_update(
    store: &mut dyn VersionedStore,
    branch: BranchId,
    cols: usize,
    seed: u64,
) -> Result<u64> {
    let keys: Vec<u64> = store
        .scan(VersionRef::Branch(branch))?
        .map(|r| r.map(|rec| rec.key()))
        .collect::<Result<_>>()?;
    let mut rng = DetRng::seed_from_u64(seed);
    for &key in &keys {
        let fields = (0..cols).map(|_| rng.next_u32() as u64).collect();
        store.update(branch, Record::new(key, fields))?;
    }
    store.commit(branch)?;
    Ok(keys.len() as u64)
}

/// One strategy's measurements across engines.
struct Row {
    strategy: Strategy,
    before_ms: Vec<f64>,
    after_ms: Vec<f64>,
    before_bytes: u64,
    after_bytes: u64,
}

fn run_strategy(strategy: Strategy, ctx: &Ctx) -> Result<Row> {
    let spec = WorkloadSpec::scaled(strategy, BRANCHES, ctx.scale);
    let mut before_ms = Vec::new();
    let mut after_ms = Vec::new();
    let mut before_bytes = 0;
    let mut after_bytes = 0;
    for kind in EngineKind::headline() {
        let dir = tempfile::tempdir().expect("tempdir");
        let (mut store, report) = build_loaded(kind, &spec, dir.path())?;
        let mut rng = DetRng::seed_from_u64(3);
        let target = pick_branch(&report, scan_pick(strategy), &mut rng)?;
        let b = mean_ms(ctx.repeats, || {
            Ok(q1(store.as_ref(), target.into(), ctx.cold)?.ms())
        })?;
        before_ms.push(b);
        if kind == EngineKind::Hybrid {
            before_bytes = store.stats().data_bytes;
        }
        table_wise_update(store.as_mut(), target, spec.cols, 99)?;
        let a = mean_ms(ctx.repeats, || {
            Ok(q1(store.as_ref(), target.into(), ctx.cold)?.ms())
        })?;
        after_ms.push(a);
        if kind == EngineKind::Hybrid {
            after_bytes = store.stats().data_bytes;
        }
    }
    Ok(Row {
        strategy,
        before_ms,
        after_ms,
        before_bytes,
        after_bytes,
    })
}

fn run_all(ctx: &Ctx) -> Result<Vec<Row>> {
    Strategy::all()
        .into_iter()
        .map(|s| run_strategy(s, ctx))
        .collect()
}

/// Figure 11: Q1 before/after a table-wise update, per engine.
pub fn fig11(ctx: &Ctx) -> Result<Table> {
    let rows = run_all(ctx)?;
    let mut table = Table::new(
        format!(
            "Figure 11: Q1 before/after table-wise update (ms, {BRANCHES} branches, scale={})",
            ctx.scale
        ),
        &[
            "strategy", "TF pre", "TF post", "VF pre", "VF post", "HY pre", "HY post",
        ],
    );
    for r in rows {
        table.row(vec![
            r.strategy.label().to_string(),
            ms(r.before_ms[0]),
            ms(r.after_ms[0]),
            ms(r.before_ms[1]),
            ms(r.after_ms[1]),
            ms(r.before_ms[2]),
            ms(r.after_ms[2]),
        ]);
    }
    Ok(table)
}

/// Table 4: dataset size before/after the table-wise updates (hybrid's
/// heap bytes, matching the paper's single pre/post size pair).
pub fn table4(ctx: &Ctx) -> Result<Table> {
    let rows = run_all(ctx)?;
    let mut table = Table::new(
        format!(
            "Table 4: storage impact of table-wise updates (MB, scale={})",
            ctx.scale
        ),
        &["strategy", "pre-size", "post-size"],
    );
    for r in rows {
        table.row(vec![
            r.strategy.label().to_string(),
            mb(r.before_bytes),
            mb(r.after_bytes),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shows_growth() {
        let ctx = Ctx::smoke();
        let rows = run_all(&ctx).unwrap();
        for r in rows {
            assert!(
                r.after_bytes > r.before_bytes,
                "{}: table-wise update must grow the dataset",
                r.strategy
            );
        }
    }
}
