//! Figure 6: "The Impact of Scaling Branches" (§5.1).
//!
//! Fixed total dataset volume spread over 10/50/100 branches of the flat
//! strategy. Figure 6a runs Q1 (scan one child): tuple-first deteriorates
//! with branch count (bigger bitmap, same interleaved heap) while
//! version-first and hybrid *improve* (each child holds less data).
//! Figure 6b runs Q4 (scan all branches): version-first pays full
//! multi-pass reconstruction while the bitmap engines answer from their
//! indexes.

use decibel_common::rng::DetRng;
use decibel_common::Result;
use decibel_core::types::EngineKind;

use crate::experiments::{build_loaded_many, mean_ms, Ctx};
use crate::queries::{all_heads, pick_branch, q1, q4, Pick};
use crate::report::{ms, Table};
use crate::spec::WorkloadSpec;
use crate::strategy::Strategy;

/// Branch counts used by Figure 6.
pub const BRANCH_COUNTS: [usize; 3] = [10, 50, 100];

fn spec_for(branches: usize, ctx: &Ctx) -> WorkloadSpec {
    // Fixed total volume: ops_per_branch shrinks as branches grow, like
    // the paper's fixed 100 GB.
    let total = (40_000.0 * ctx.scale) as u64;
    let mut spec = WorkloadSpec::scaled(Strategy::Flat, branches, ctx.scale);
    spec.ops_per_branch = (total / branches as u64).max(20);
    spec
}

/// Figure 6a: Q1 (single-child scan) latency vs branch count.
pub fn fig6a(ctx: &Ctx) -> Result<Table> {
    let mut table = Table::new(
        format!(
            "Figure 6a: Q1 on FLAT vs #branches (ms, scale={})",
            ctx.scale
        ),
        &["branches", "TF", "VF", "HY"],
    );
    for &branches in &BRANCH_COUNTS {
        let spec = spec_for(branches, ctx);
        let mut cells = vec![branches.to_string()];
        // One directory per engine; the three loads fan out on the pool.
        let dirs: Vec<tempfile::TempDir> = (0..EngineKind::headline().len())
            .map(|_| tempfile::tempdir().expect("tempdir"))
            .collect();
        let entries: Vec<_> = EngineKind::headline()
            .into_iter()
            .zip(&dirs)
            .map(|(kind, dir)| (kind, spec.clone(), dir.path()))
            .collect();
        for (store, report) in build_loaded_many(&entries)? {
            let mut rng = DetRng::seed_from_u64(7);
            let v = mean_ms(ctx.repeats, || {
                let child = pick_branch(&report, Pick::FlatChild, &mut rng)?;
                Ok(q1(store.as_ref(), child.into(), ctx.cold)?.ms())
            })?;
            cells.push(ms(v));
        }
        table.row(cells);
    }
    Ok(table)
}

/// Figure 6b: Q4 (all-branch scan) latency vs branch count.
pub fn fig6b(ctx: &Ctx) -> Result<Table> {
    let mut table = Table::new(
        format!(
            "Figure 6b: Q4 on FLAT vs #branches (ms, scale={})",
            ctx.scale
        ),
        &["branches", "TF", "VF", "HY"],
    );
    for &branches in &BRANCH_COUNTS {
        let spec = spec_for(branches, ctx);
        let mut cells = vec![branches.to_string()];
        let dirs: Vec<tempfile::TempDir> = (0..EngineKind::headline().len())
            .map(|_| tempfile::tempdir().expect("tempdir"))
            .collect();
        let entries: Vec<_> = EngineKind::headline()
            .into_iter()
            .zip(&dirs)
            .map(|(kind, dir)| (kind, spec.clone(), dir.path()))
            .collect();
        for (store, _report) in build_loaded_many(&entries)? {
            let heads = all_heads(store.as_ref());
            let v = mean_ms(ctx.repeats, || {
                Ok(q4(store.as_ref(), &heads, ctx.cold)?.ms())
            })?;
            cells.push(ms(v));
        }
        table.row(cells);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_smoke() {
        let ctx = Ctx::smoke();
        let a = fig6a(&ctx).unwrap();
        assert_eq!(a.render().lines().count(), 3 + BRANCH_COUNTS.len());
        let b = fig6b(&ctx).unwrap();
        assert!(b.render().contains("100"));
    }
}
