//! The server workload: remote sessions over TCP (`BENCH_server.json`).
//!
//! BranchBench (PAPERS.md) argues branching databases are increasingly
//! driven by swarms of concurrent clients; this experiment measures the
//! network layer those clients would actually traverse. It spawns a
//! `decibel_server::Server` in-process on an ephemeral port and drives it
//! with real `decibel_wire::Client` connections doing mixed read/commit
//! traffic on **disjoint branches** — the regime the paper's per-branch
//! two-phase locks are designed to keep embarrassingly parallel.
//!
//! Rows:
//!
//! * `remote_scan` — one client collects the whole base relation through
//!   the batched scan stream; rows/s here vs the in-process scan rows in
//!   `BENCH_scan.json` is the serialization tax of the wire.
//! * `single_client` — one client runs the per-client workload (insert a
//!   key block, commit, read the block back through a filtered remote
//!   scan) on its own branch.
//! * `serialized_k{N}` — N clients run that workload one after another
//!   (total work = N × single).
//! * `concurrent_k{N}` — the same N clients run at once, one thread each.
//! * `concurrent_over_serialized` — the wall-clock ratio of the two. On a
//!   single core ≈ 1.0 means the connection layer adds no serialization
//!   beyond the CPU itself (the acceptance bar is ≤ ~1.2); on N cores it
//!   approaches 1/N.
//! * `k64_idle_4hot` — the same 4 hot clients with 64 additional idle
//!   connections parked on the event loop; `idle64_over_concurrent` is
//!   its wall clock over plain `concurrent_k{N}` (the multiplexing tax of
//!   64 parked registrations — acceptance bar ≤ ~1.2).
//! * `slow_reader_mem` — a client requests a full scan, reads one chunk,
//!   and stalls; `ops` reports the server's RSS growth in KiB while
//!   parked (the backpressure contract: O(chunk), not O(result)).
//!
//! Every fresh-state row gets its own database + server so no row measures
//! another row's leftovers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use decibel_common::ids::BranchId;
use decibel_common::record::Record;
use decibel_common::schema::{ColumnType, Schema};
use decibel_common::{DbError, Result};
use decibel_core::query::Predicate;
use decibel_core::{Database, EngineKind};
use decibel_pagestore::StoreConfig;
use decibel_server::{Server, ServerHandle};
use decibel_wire::Client;

use crate::experiments::Ctx;
use crate::report::Table;

/// Concurrent clients (and disjoint branches) in the k-rows.
const CLIENTS: usize = 4;
/// Data columns per record.
const COLS: usize = 8;
/// Rows inserted (and then read back) per round.
const BATCH: u64 = 200;

/// Globally fresh key blocks, so repeated rounds never collide.
static NEXT_KEY: AtomicU64 = AtomicU64::new(1 << 32);

fn rec(key: u64, tag: u64) -> Record {
    Record::new(key, (0..COLS as u64).map(|c| key ^ (tag + c)).collect())
}

/// One served database: `base_rows` on master, `CLIENTS` branches forked
/// from it (each inheriting the base), server listening on an ephemeral
/// loopback port.
fn serve(scale: f64) -> Result<(tempfile::TempDir, ServerHandle, Vec<BranchId>, u64)> {
    serve_rows(((30_000.0 * scale) as u64).max(1_000))
}

fn serve_rows(base_rows: u64) -> Result<(tempfile::TempDir, ServerHandle, Vec<BranchId>, u64)> {
    let dir = tempfile::tempdir().map_err(|e| DbError::io("server bench tempdir", e))?;
    let db = Database::create(
        dir.path().join("db"),
        EngineKind::Hybrid,
        Schema::new(COLS, ColumnType::U32),
        &StoreConfig::bench_default(),
    )?;
    // Bulk-load the base through the escape hatch (loading is not what
    // this experiment measures), then fork the per-client branches through
    // the journaled surface.
    db.with_store_mut(|store| -> Result<()> {
        for k in 0..base_rows {
            store.insert(BranchId::MASTER, rec(k, 1))?;
        }
        Ok(())
    })?;
    let mut branches = Vec::with_capacity(CLIENTS);
    for c in 0..CLIENTS {
        branches.push(db.create_branch(&format!("client{c}"), BranchId::MASTER)?);
    }
    let handle = Server::bind(db, "127.0.0.1:0")?.spawn();
    Ok((dir, handle, branches, base_rows))
}

/// The per-client workload: `rounds` × (insert a fresh `BATCH`-key block,
/// commit, read the block back via a filtered remote scan). Returns ops =
/// rows written + rows read.
fn drive_client(addr: std::net::SocketAddr, branch: u64, rounds: u64) -> Result<u64> {
    let mut client = Client::connect(addr)?;
    let branch = BranchId(branch as u32);
    // Checkout by name keeps the lookup on the wire too.
    client.checkout_branch(&format!("client{}", branch.raw() - 1))?;
    let mut ops = 0u64;
    for round in 0..rounds {
        let k0 = NEXT_KEY.fetch_add(BATCH, Ordering::Relaxed);
        for k in k0..k0 + BATCH {
            client.insert(rec(k, round))?;
        }
        client.commit()?;
        let read = client
            .read(branch)
            .filter(Predicate::KeyRange(k0, k0 + BATCH))
            .collect()?;
        if read.len() as u64 != BATCH {
            return Err(DbError::Invalid(format!(
                "round {round}: read {} of {BATCH} rows back",
                read.len()
            )));
        }
        ops += BATCH + read.len() as u64;
    }
    Ok(ops)
}

struct Row {
    name: String,
    clients: usize,
    ops: u64,
    ms: f64,
}

/// One timed run of the concurrent hot workload (one thread per client)
/// with `idle` extra connections parked on the loop, best of `repeats`
/// fresh servers. Returns (ops per run, best ms).
fn hot_kn(scale: f64, rounds: u64, repeats: usize, idle: usize) -> Result<(u64, f64)> {
    let mut best = f64::INFINITY;
    let mut ops = 0u64;
    for _ in 0..repeats {
        let (_dir, handle, branches, _) = serve(scale)?;
        let addr = handle.local_addr();
        let parked: Vec<Client> = (0..idle)
            .map(|_| Client::connect(addr))
            .collect::<Result<_>>()?;
        let start = Instant::now();
        let mut handles = Vec::with_capacity(CLIENTS);
        for &b in &branches {
            let raw = b.raw() as u64;
            handles.push(std::thread::spawn(move || drive_client(addr, raw, rounds)));
        }
        ops = 0;
        for h in handles {
            ops += h.join().expect("client thread")?;
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        drop(parked);
        handle.shutdown()?;
    }
    Ok((ops, best))
}

pub(crate) fn rounds_for(scale: f64) -> u64 {
    ((25.0 * scale) as u64).max(4)
}

/// Runs the server workload and renders the throughput rows.
pub fn server(ctx: &Ctx) -> Result<Table> {
    let rounds = rounds_for(ctx.scale);
    let mut rows: Vec<Row> = Vec::new();

    // remote_scan: the batched scan stream, repeated (read-only).
    {
        let (_dir, handle, _branches, base_rows) = serve(ctx.scale)?;
        let addr = handle.local_addr();
        let mut client = Client::connect(addr)?;
        let mut best = f64::INFINITY;
        for _ in 0..ctx.repeats.max(3) {
            let start = Instant::now();
            let got = client.read(BranchId::MASTER).collect()?;
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            if got.len() as u64 != base_rows {
                return Err(DbError::Invalid(format!(
                    "remote scan returned {} of {base_rows} rows",
                    got.len()
                )));
            }
        }
        drop(client);
        handle.shutdown()?;
        rows.push(Row {
            name: "remote_scan".into(),
            clients: 1,
            ops: base_rows,
            ms: best,
        });
    }

    // Every workload row below is the best of `repeats` runs, each
    // against a fresh server — same discipline as remote_scan above,
    // because single-run numbers on a 1-core container are scheduler
    // roulette.
    let repeats = ctx.repeats.max(3);

    // single_client: one client's workload, fresh server.
    {
        let mut best = f64::INFINITY;
        let mut ops = 0u64;
        for _ in 0..repeats {
            let (_dir, handle, branches, _) = serve(ctx.scale)?;
            let addr = handle.local_addr();
            let start = Instant::now();
            ops = drive_client(addr, branches[0].raw() as u64, rounds)?;
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            handle.shutdown()?;
        }
        rows.push(Row {
            name: "single_client".into(),
            clients: 1,
            ops,
            ms: best,
        });
    }

    // serialized_kN: the same per-client workload N times, back to back.
    let serialized_ms = {
        let mut best = f64::INFINITY;
        let mut ops = 0u64;
        for _ in 0..repeats {
            let (_dir, handle, branches, _) = serve(ctx.scale)?;
            let addr = handle.local_addr();
            let start = Instant::now();
            ops = 0;
            for &b in &branches {
                ops += drive_client(addr, b.raw() as u64, rounds)?;
            }
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            handle.shutdown()?;
        }
        rows.push(Row {
            name: format!("serialized_k{CLIENTS}"),
            clients: CLIENTS,
            ops,
            ms: best,
        });
        best
    };

    // concurrent_kN: one thread per client, all at once.
    let concurrent_ms = {
        let (ops, best) = hot_kn(ctx.scale, rounds, repeats, 0)?;
        rows.push(Row {
            name: format!("concurrent_k{CLIENTS}"),
            clients: CLIENTS,
            ops,
            ms: best,
        });
        best
    };

    // k64_idle_4hot: the hot workload again, with 64 idle connections
    // parked on the event loop the whole time. The delta vs concurrent_kN
    // is what 64 parked registrations cost the multiplexer.
    let k64_ms = {
        let (ops, best) = hot_kn(ctx.scale, rounds, repeats, 64)?;
        rows.push(Row {
            name: "k64_idle_4hot".into(),
            clients: 64 + CLIENTS,
            ops,
            ms: best,
        });
        best
    };

    // slow_reader_mem: one client scans the base relation, reads a single
    // chunk, and stalls; the server must park the stream at O(chunk)
    // memory. Reported in KiB of RSS growth while parked.
    let slow_reader_kib = {
        // Enough base rows that the payload dwarfs one ~256 KiB chunk even
        // at small scales.
        let rows = ((200_000.0 * ctx.scale) as u64).max(60_000);
        let (_dir, handle, _branches, _) = serve_rows(rows)?;
        let stalled = start_stalled_scan(handle.local_addr())?;
        let baseline = rss_bytes();
        std::thread::sleep(std::time::Duration::from_millis(300));
        let grown = rss_bytes().saturating_sub(baseline);
        drop(stalled);
        handle.shutdown()?;
        grown / 1024
    };

    let mut table = Table::new(
        format!(
            "Server workload: {CLIENTS} remote clients, disjoint branches, \
             {rounds} rounds x {BATCH}-row blocks (scale={})",
            ctx.scale
        ),
        &["bench", "clients", "ops", "best_ms", "ops_per_sec"],
    );
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            r.clients.to_string(),
            r.ops.to_string(),
            format!("{:.2}", r.ms),
            format!("{:.0}", r.ops as f64 / (r.ms / 1e3)),
        ]);
    }
    // The acceptance ratio: wall clock for N concurrent clients over the
    // same total work serialized. ≤ ~1.2 means the connection layer added
    // no serialization on this machine; < 1 is the multi-core win.
    table.row(vec![
        "concurrent_over_serialized".into(),
        CLIENTS.to_string(),
        String::new(),
        String::new(),
        format!("{:.3}", concurrent_ms / serialized_ms),
    ]);
    // Multiplexing tax: hot wall clock with 64 parked connections over hot
    // wall clock alone (acceptance bar ≤ ~1.2).
    table.row(vec![
        "idle64_over_concurrent".into(),
        (64 + CLIENTS).to_string(),
        String::new(),
        String::new(),
        format!("{:.3}", k64_ms / concurrent_ms),
    ]);
    // Backpressure: server RSS growth (KiB) while a stalled scan is parked
    // mid-stream; O(chunk) means a few hundred KiB regardless of scale.
    table.row(vec![
        "slow_reader_mem".into(),
        "1".into(),
        slow_reader_kib.to_string(),
        String::new(),
        String::new(),
    ]);
    Ok(table)
}

/// This process's resident set size, from `/proc/self/statm`.
fn rss_bytes() -> usize {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| s.split_whitespace().nth(1)?.parse::<usize>().ok())
        .map_or(0, |pages| pages * 4096)
}

/// Opens a raw connection, requests a full scan of master, reads exactly
/// one batch frame, and stops reading — a stalled slow reader the server
/// must park at O(chunk) memory.
fn start_stalled_scan(addr: std::net::SocketAddr) -> Result<std::net::TcpStream> {
    use decibel_wire::frame::{read_frame, write_frame};
    use decibel_wire::proto::{Hello, Request, Response};
    use std::io::Write as _;

    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| DbError::io("connecting stalled reader", e))?;
    let hello = read_frame(&mut stream)?.ok_or_else(|| DbError::protocol("no hello"))?;
    let hello = Hello::decode(&hello)?;
    let req = Request::Collect {
        version: BranchId::MASTER.into(),
        predicate: Predicate::True,
        projection: decibel_common::Projection::All,
    };
    let mut buf = Vec::new();
    write_frame(&mut buf, &req.encode(&hello.schema)?)?;
    stream
        .write_all(&buf)
        .map_err(|e| DbError::io("sending stalled scan request", e))?;
    let frame = read_frame(&mut stream)?.ok_or_else(|| DbError::protocol("no first chunk"))?;
    match Response::decode(&frame, &hello.schema)? {
        Response::Batch(..) => Ok(stream),
        other => Err(DbError::protocol(format!(
            "expected a batch, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_workload_smoke() {
        let table = server(&Ctx::smoke()).unwrap();
        let rendered = table.render();
        assert!(rendered.contains("remote_scan"));
        assert!(rendered.contains("concurrent_k4"));
        assert!(rendered.contains("concurrent_over_serialized"));
    }
}
