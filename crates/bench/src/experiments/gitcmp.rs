//! Tables 6 & 7: git vs Decibel (§5.7).
//!
//! Deep structure, 10 branches, commits evenly spaced over the dataset.
//! Four git-like modes (1-file vs file-per-tuple × binary vs CSV) against
//! Decibel's hybrid engine. Table 6 is 100% inserts; Table 7 is 50%
//! updates. Reported per mode: data size, repository size, repack time,
//! and mean ± stddev commit and checkout latencies.

use std::time::Instant;

use decibel_common::ids::CommitId;
use decibel_common::record::Record;
use decibel_common::rng::DetRng;
use decibel_common::Result;
use decibel_core::types::EngineKind;
use decibel_core::Database;
use gitlike::sha1::Sha1;
use gitlike::table::{GitTable, TableEncoding, TableLayout};

use crate::experiments::Ctx;
use crate::report::{mb, Table};
use crate::spec::WorkloadSpec;
use crate::strategy::Strategy;

/// Branch count (10 in the paper).
pub const BRANCHES: usize = 10;

/// Parameters of one comparison run.
#[derive(Debug, Clone, Copy)]
pub struct GitCmpParams {
    /// Total records to insert.
    pub records: u64,
    /// Number of commits, evenly spaced over the operations.
    pub commits: u64,
    /// Percentage of operations that are updates (0 for Table 6, 50 for
    /// Table 7).
    pub update_pct: u32,
    /// Data columns per record.
    pub cols: usize,
}

/// One row of Table 6/7.
#[derive(Debug, Clone)]
pub struct CmpRow {
    /// Mode label ("git 1 file (bin)", ..., "Decibel (HY)").
    pub mode: String,
    /// Bytes of live table data.
    pub data_bytes: u64,
    /// Bytes of version-store metadata + history.
    pub repo_bytes: u64,
    /// Repack wall time (git modes only).
    pub repack_secs: Option<f64>,
    /// Mean / stddev commit latency (ms).
    pub commit_ms: (f64, f64),
    /// Mean / stddev checkout latency (ms).
    pub checkout_ms: (f64, f64),
}

fn mean_std(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
    (mean, var.sqrt())
}

fn gen_fields(rng: &mut DetRng, cols: usize) -> Vec<u64> {
    (0..cols).map(|_| rng.next_u32() as u64).collect()
}

/// Drives one git-like mode through the deep workload.
pub fn run_git(
    layout: TableLayout,
    encoding: TableEncoding,
    p: &GitCmpParams,
    dir: &std::path::Path,
) -> Result<CmpRow> {
    let schema =
        decibel_common::schema::Schema::new(p.cols, decibel_common::schema::ColumnType::U32);
    let mut t = GitTable::create(dir, layout, encoding, schema)?;
    let mut rng = DetRng::seed_from_u64(0x617);
    let total_ops = p.records;
    let ops_per_commit = (total_ops / p.commits).max(1);
    let ops_per_branch = total_ops / BRANCHES as u64;
    let mut keys: Vec<u64> = Vec::new();
    let mut next_key = 0u64;
    let mut commit_times = Vec::new();
    let mut commit_ids: Vec<Sha1> = Vec::new();
    let mut ops_on_branch = 0u64;
    let mut since_commit = 0u64;
    let mut branch_no = 0usize;
    for _ in 0..total_ops {
        if ops_on_branch >= ops_per_branch && branch_no + 1 < BRANCHES {
            // Deep: fork the next link from the current head.
            branch_no += 1;
            let name = format!("deep{branch_no}");
            t.branch(&name)?;
            t.checkout_branch(&name)?;
            ops_on_branch = 0;
        }
        let update = !keys.is_empty() && rng.below(100) < p.update_pct as u64;
        if update {
            let key = keys[rng.below_usize(keys.len())];
            let fields = gen_fields(&mut rng, p.cols);
            t.update(Record::new(key, fields))?;
        } else {
            let fields = gen_fields(&mut rng, p.cols);
            t.insert(Record::new(next_key, fields))?;
            keys.push(next_key);
            next_key += 1;
        }
        ops_on_branch += 1;
        since_commit += 1;
        if since_commit >= ops_per_commit {
            let start = Instant::now();
            commit_ids.push(t.commit("batch")?);
            commit_times.push(start.elapsed().as_secs_f64() * 1e3);
            since_commit = 0;
        }
    }
    if since_commit > 0 {
        commit_ids.push(t.commit("tail")?);
    }
    let data_bytes = t.repo().data_size()?;
    // The paper repacks once after loading.
    let (repack, _stats) = t.repo_mut().repack()?;
    // Checkout sampling over random historical commits.
    let mut checkout_times = Vec::new();
    let samples = commit_ids.len().min(50);
    for _ in 0..samples {
        let id = commit_ids[rng.below_usize(commit_ids.len())];
        let start = Instant::now();
        t.checkout_commit(id)?;
        checkout_times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let mode = format!(
        "git {} ({})",
        match layout {
            TableLayout::OneFile => "1 file",
            TableLayout::FilePerTuple => "file/tup",
        },
        match encoding {
            TableEncoding::Binary => "bin",
            TableEncoding::Csv => "csv",
        }
    );
    Ok(CmpRow {
        mode,
        data_bytes,
        repo_bytes: t.repo().repo_size(),
        repack_secs: Some(repack.as_secs_f64()),
        commit_ms: mean_std(&commit_times),
        checkout_ms: mean_std(&checkout_times),
    })
}

/// Drives Decibel's hybrid engine through the identical workload.
pub fn run_decibel(p: &GitCmpParams, dir: &std::path::Path) -> Result<CmpRow> {
    let spec = {
        let mut s = WorkloadSpec::scaled(Strategy::Deep, BRANCHES, 1.0);
        s.cols = p.cols;
        s
    };
    let mut store =
        Database::build_store(EngineKind::Hybrid, dir, spec.schema(), &spec.store_config())?;
    let mut rng = DetRng::seed_from_u64(0x17 + 0x47);
    let total_ops = p.records;
    let ops_per_commit = (total_ops / p.commits).max(1);
    let ops_per_branch = total_ops / BRANCHES as u64;
    let mut keys: Vec<u64> = Vec::new();
    let mut next_key = 0u64;
    let mut commit_times = Vec::new();
    let mut commit_ids: Vec<CommitId> = Vec::new();
    let mut branch = decibel_common::ids::BranchId::MASTER;
    let mut ops_on_branch = 0u64;
    let mut since_commit = 0u64;
    let mut branch_no = 0usize;
    for _ in 0..total_ops {
        if ops_on_branch >= ops_per_branch && branch_no + 1 < BRANCHES {
            branch_no += 1;
            branch = store.create_branch(&format!("deep{branch_no}"), branch.into())?;
            ops_on_branch = 0;
        }
        let update = !keys.is_empty() && rng.below(100) < p.update_pct as u64;
        if update {
            let key = keys[rng.below_usize(keys.len())];
            store.update(branch, Record::new(key, gen_fields(&mut rng, p.cols)))?;
        } else {
            store.insert(branch, Record::new(next_key, gen_fields(&mut rng, p.cols)))?;
            keys.push(next_key);
            next_key += 1;
        }
        ops_on_branch += 1;
        since_commit += 1;
        if since_commit >= ops_per_commit {
            let start = Instant::now();
            commit_ids.push(store.commit(branch)?);
            commit_times.push(start.elapsed().as_secs_f64() * 1e3);
            since_commit = 0;
        }
    }
    let mut checkout_times = Vec::new();
    let samples = commit_ids.len().min(50);
    for _ in 0..samples {
        let id = commit_ids[rng.below_usize(commit_ids.len())];
        let start = Instant::now();
        store.checkout_version(id)?;
        checkout_times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let stats = store.stats();
    Ok(CmpRow {
        mode: "Decibel (HY)".to_string(),
        data_bytes: stats.data_bytes,
        repo_bytes: stats.commit_store_bytes,
        repack_secs: None,
        commit_ms: mean_std(&commit_times),
        checkout_ms: mean_std(&checkout_times),
    })
}

fn run_table(ctx: &Ctx, update_pct: u32, title: &str) -> Result<Table> {
    let p = GitCmpParams {
        records: (4_000.0 * ctx.scale) as u64,
        commits: ((100.0 * ctx.scale) as u64).max(10),
        update_pct,
        cols: 20,
    };
    let mut table = Table::new(
        format!(
            "{title} (deep, {BRANCHES} branches, {} records, {} commits)",
            p.records, p.commits
        ),
        &[
            "mode",
            "data MB",
            "repo MB",
            "repack s",
            "commit ms (μ±σ)",
            "checkout ms (μ±σ)",
        ],
    );
    let modes = [
        (TableLayout::OneFile, TableEncoding::Binary),
        (TableLayout::OneFile, TableEncoding::Csv),
        (TableLayout::FilePerTuple, TableEncoding::Binary),
        (TableLayout::FilePerTuple, TableEncoding::Csv),
    ];
    let mut rows = Vec::new();
    for (layout, encoding) in modes {
        let dir = tempfile::tempdir().expect("tempdir");
        rows.push(run_git(layout, encoding, &p, dir.path())?);
    }
    let dir = tempfile::tempdir().expect("tempdir");
    rows.push(run_decibel(&p, dir.path())?);
    for r in rows {
        table.row(vec![
            r.mode,
            mb(r.data_bytes),
            mb(r.repo_bytes),
            r.repack_secs
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "N/A".to_string()),
            format!("{:.1} ± {:.1}", r.commit_ms.0, r.commit_ms.1),
            format!("{:.1} ± {:.1}", r.checkout_ms.0, r.checkout_ms.1),
        ]);
    }
    Ok(table)
}

/// Table 6: git vs Decibel, 100% inserts.
pub fn table6(ctx: &Ctx) -> Result<Table> {
    run_table(ctx, 0, "Table 6: git vs Decibel, 100% inserts")
}

/// Table 7: git vs Decibel, 50% updates.
pub fn table7(ctx: &Ctx) -> Result<Table> {
    run_table(ctx, 50, "Table 7: git vs Decibel, 50% updates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gitcmp_smoke() {
        let ctx = Ctx::smoke();
        let t = table6(&ctx).unwrap();
        let r = t.render();
        assert!(r.contains("git 1 file (bin)"));
        assert!(r.contains("Decibel (HY)"));
        assert_eq!(r.lines().count(), 3 + 5);
    }
}
