//! Table 3: merge performance (§5.4).
//!
//! Curation workload, 50 branches; merge throughput (MB/s) "relative to
//! the size of the diff between each pair of branches being merged", in
//! aggregate over the merges of the build phase, for both two-way
//! (tuple-level) and three-way (field-level) merge strategies.

use decibel_common::Result;
use decibel_core::types::{EngineKind, MergePolicy};

use crate::experiments::{build_loaded, Ctx};
use crate::report::Table;
use crate::spec::WorkloadSpec;
use crate::strategy::Strategy;

/// Branch count (50 in the paper).
pub const BRANCHES: usize = 50;

fn throughput(ctx: &Ctx, policy: MergePolicy, kind: EngineKind) -> Result<(f64, u64)> {
    let mut spec = WorkloadSpec::scaled(Strategy::Curation, BRANCHES, ctx.scale);
    spec.merge_policy = policy;
    let dir = tempfile::tempdir().expect("tempdir");
    let (_store, report) = build_loaded(kind, &spec, dir.path())?;
    let secs = report.merge_time.as_secs_f64();
    let mbps = if secs > 0.0 {
        report.merge_bytes as f64 / (1024.0 * 1024.0) / secs
    } else {
        0.0
    };
    Ok((mbps, report.merges))
}

/// Table 3: merge throughput (MB/s) by engine and merge strategy.
pub fn table3(ctx: &Ctx) -> Result<Table> {
    let mut table = Table::new(
        format!(
            "Table 3: merge throughput (MB/s, CUR, {BRANCHES} branches, scale={})",
            ctx.scale
        ),
        &["engine", "two-way MB/s", "three-way MB/s", "merges"],
    );
    for kind in [
        EngineKind::VersionFirst,
        EngineKind::TupleFirstBranch,
        EngineKind::Hybrid,
    ] {
        let (two, merges) = throughput(ctx, MergePolicy::TwoWay { prefer_left: false }, kind)?;
        let (three, _) = throughput(ctx, MergePolicy::ThreeWay { prefer_left: false }, kind)?;
        table.row(vec![
            kind.label().to_string(),
            format!("{two:.1}"),
            format!("{three:.1}"),
            merges.to_string(),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_smoke() {
        let t = table3(&Ctx::smoke()).unwrap();
        let r = t.render();
        assert!(r.contains("VF"));
        assert!(r.contains("HY"));
    }
}
