//! Table 5: build (load) times (§5.6).
//!
//! "This time includes inserting records, creating branches, updating
//! records, merging branches, and creating commits." All strategies, 10
//! and 50 branches, per engine, with the deterministic seed so each engine
//! performs identical operations.

use decibel_common::Result;
use decibel_core::types::EngineKind;

use crate::experiments::{build_loaded, Ctx};
use crate::report::{mb, Table};
use crate::spec::WorkloadSpec;
use crate::strategy::Strategy;

/// Branch counts (10 and 50 in the paper).
pub const BRANCH_COUNTS: [usize; 2] = [10, 50];

/// Table 5: load duration per strategy × branch count × engine, plus the
/// dataset size actually produced (the paper's science/curation sizes vary
/// with the random generation, as do ours).
pub fn table5(ctx: &Ctx) -> Result<Table> {
    let mut table = Table::new(
        format!("Table 5: build times (seconds, scale={})", ctx.scale),
        &["strategy", "branches", "TF", "VF", "HY", "data (MB)"],
    );
    for strategy in Strategy::all() {
        for &branches in &BRANCH_COUNTS {
            let spec = WorkloadSpec::scaled(strategy, branches, ctx.scale);
            let mut cells = vec![strategy.label().to_string(), branches.to_string()];
            let mut size = 0u64;
            for kind in EngineKind::headline() {
                let dir = tempfile::tempdir().expect("tempdir");
                let (store, report) = build_loaded(kind, &spec, dir.path())?;
                cells.push(format!("{:.2}", report.duration.as_secs_f64()));
                if kind == EngineKind::Hybrid {
                    size = store.stats().data_bytes;
                }
            }
            cells.push(mb(size));
            table.row(cells);
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_smoke() {
        let t = table5(&Ctx::smoke()).unwrap();
        // 4 strategies x 2 branch counts.
        assert_eq!(t.render().lines().count(), 3 + 8);
    }
}
