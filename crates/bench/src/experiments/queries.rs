//! Figures 7–10: the four query classes across branching strategies
//! (§5.2; 50 branches in the paper).

use decibel_common::rng::DetRng;
use decibel_common::Result;
use decibel_core::store::VersionedStore;
use decibel_core::types::EngineKind;

use crate::experiments::{build_loaded_many, mean_ms, Ctx};
use crate::loader::LoadReport;
use crate::queries::{all_heads, pick_branch, q1, q2, q3, q4, Pick};
use crate::report::{ms, Table};
use crate::spec::WorkloadSpec;
use crate::strategy::Strategy;

/// Branch count used by the §5.2 experiments (50 in the paper).
pub const BRANCHES: usize = 50;

/// The Figure 7 bars: (label, strategy, which branch is scanned).
pub const Q1_CASES: [(&str, Strategy, Pick); 7] = [
    ("deep/tail", Strategy::Deep, Pick::DeepTail),
    ("flat/child", Strategy::Flat, Pick::FlatChild),
    ("sci/young", Strategy::Science, Pick::SciYoungest),
    ("sci/old", Strategy::Science, Pick::SciOldest),
    ("cur/feature", Strategy::Curation, Pick::CurFeature),
    ("cur/dev", Strategy::Curation, Pick::CurDev),
    ("cur/mainline", Strategy::Curation, Pick::Mainline),
];

/// The Figure 8/9 version pairs: (label, strategy, left, right).
pub const PAIR_CASES: [(&str, Strategy, Pick, Pick); 4] = [
    (
        "deep tail-parent",
        Strategy::Deep,
        Pick::DeepTail,
        Pick::DeepParent,
    ),
    (
        "flat child-parent",
        Strategy::Flat,
        Pick::FlatChild,
        Pick::FlatParent,
    ),
    (
        "sci old-mainline",
        Strategy::Science,
        Pick::SciOldest,
        Pick::Mainline,
    ),
    (
        "cur mainline-dev",
        Strategy::Curation,
        Pick::Mainline,
        Pick::CurDev,
    ),
];

/// Loads one store per engine (plus the clustered tuple-first variant when
/// `with_clustered`) for a strategy.
struct Loaded {
    stores: Vec<(String, Box<dyn VersionedStore>, LoadReport)>,
}

fn load_engines(
    strategy: Strategy,
    ctx: &Ctx,
    dir: &std::path::Path,
    with_clustered: bool,
) -> Result<Loaded> {
    let spec = WorkloadSpec::scaled(strategy, BRANCHES, ctx.scale);
    let cdir = dir.join("clustered");
    let mut labels: Vec<String> = Vec::new();
    let mut entries: Vec<(EngineKind, WorkloadSpec, &std::path::Path)> = Vec::new();
    for kind in EngineKind::headline() {
        labels.push(kind.label().to_string());
        entries.push((kind, spec.clone(), dir));
    }
    if with_clustered {
        let mut cspec = spec.clone();
        cspec.clustered = true;
        std::fs::create_dir_all(&cdir).expect("mkdir");
        labels.push("TF-clust".to_string());
        entries.push((EngineKind::TupleFirstBranch, cspec, cdir.as_path()));
    }
    // All engines load concurrently on the shared pool (one dataset per
    // engine, same deterministic op stream).
    let stores = labels
        .into_iter()
        .zip(build_loaded_many(&entries)?)
        .map(|(label, (store, report))| (label, store, report))
        .collect();
    Ok(Loaded { stores })
}

/// Figure 7: Q1 (single-branch scan) across strategies and branches,
/// including the clustered tuple-first variant.
pub fn fig7(ctx: &Ctx) -> Result<Table> {
    let mut table = Table::new(
        format!(
            "Figure 7: Q1 single-branch scan (ms, {BRANCHES} branches, scale={})",
            ctx.scale
        ),
        &["case", "TF", "VF", "HY", "TF-clust", "rows"],
    );
    let strategies = [
        Strategy::Deep,
        Strategy::Flat,
        Strategy::Science,
        Strategy::Curation,
    ];
    for strategy in strategies {
        let dir = tempfile::tempdir().expect("tempdir");
        let loaded = load_engines(strategy, ctx, dir.path(), true)?;
        for &(label, s, pick) in Q1_CASES.iter().filter(|(_, s, _)| *s == strategy) {
            let _ = s;
            let mut cells = vec![label.to_string()];
            let mut rows = 0u64;
            for name in ["TF", "VF", "HY", "TF-clust"] {
                let (_, store, report) = loaded
                    .stores
                    .iter()
                    .find(|(n, _, _)| n == name)
                    .expect("engine loaded");
                let mut rng = DetRng::seed_from_u64(11);
                let v = mean_ms(ctx.repeats, || {
                    let b = pick_branch(report, pick, &mut rng)?;
                    let t = q1(store.as_ref(), b.into(), ctx.cold)?;
                    rows = t.rows;
                    Ok(t.ms())
                })?;
                cells.push(ms(v));
            }
            cells.push(rows.to_string());
            table.row(cells);
        }
    }
    Ok(table)
}

fn pair_figure(
    ctx: &Ctx,
    title: String,
    run: impl Fn(
        &dyn VersionedStore,
        decibel_core::types::VersionRef,
        decibel_core::types::VersionRef,
        bool,
    ) -> Result<crate::queries::Timing>,
) -> Result<Table> {
    let mut table = Table::new(title, &["case", "TF", "VF", "HY", "rows"]);
    for &(label, strategy, left, right) in &PAIR_CASES {
        let dir = tempfile::tempdir().expect("tempdir");
        let loaded = load_engines(strategy, ctx, dir.path(), false)?;
        let mut cells = vec![label.to_string()];
        let mut rows = 0u64;
        for (_, store, report) in &loaded.stores {
            let mut rng = DetRng::seed_from_u64(13);
            let v = mean_ms(ctx.repeats, || {
                let l = pick_branch(report, left, &mut rng)?;
                let r = pick_branch(report, right, &mut rng)?;
                let t = run(store.as_ref(), l.into(), r.into(), ctx.cold)?;
                rows = t.rows;
                Ok(t.ms())
            })?;
            cells.push(ms(v));
        }
        cells.push(rows.to_string());
        table.row(cells);
    }
    Ok(table)
}

/// Figure 8: Q2 (positive diff between two versions).
pub fn fig8(ctx: &Ctx) -> Result<Table> {
    pair_figure(
        ctx,
        format!(
            "Figure 8: Q2 positive diff (ms, {BRANCHES} branches, scale={})",
            ctx.scale
        ),
        |s, a, b, cold| q2(s, a, b, cold),
    )
}

/// Figure 9: Q3 (primary-key join of two versions with a predicate).
pub fn fig9(ctx: &Ctx) -> Result<Table> {
    pair_figure(
        ctx,
        format!(
            "Figure 9: Q3 multi-version join (ms, {BRANCHES} branches, scale={})",
            ctx.scale
        ),
        |s, a, b, cold| q3(s, a, b, cold),
    )
}

/// Figure 10: Q4 (head scan with a non-selective predicate).
pub fn fig10(ctx: &Ctx) -> Result<Table> {
    let mut table = Table::new(
        format!(
            "Figure 10: Q4 head scan (ms, {BRANCHES} branches, scale={})",
            ctx.scale
        ),
        &["strategy", "TF", "VF", "HY", "rows"],
    );
    for strategy in Strategy::all() {
        let dir = tempfile::tempdir().expect("tempdir");
        let loaded = load_engines(strategy, ctx, dir.path(), false)?;
        let mut cells = vec![strategy.label().to_string()];
        let mut rows = 0u64;
        for (_, store, _) in &loaded.stores {
            let heads = all_heads(store.as_ref());
            let v = mean_ms(ctx.repeats, || {
                let t = q4(store.as_ref(), &heads, ctx.cold)?;
                rows = t.rows;
                Ok(t.ms())
            })?;
            cells.push(ms(v));
        }
        cells.push(rows.to_string());
        table.row(cells);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_smoke_rows_agree_across_engines() {
        // Row counts are printed per case; engine agreement is asserted by
        // the integration suite. Here: the table renders for all
        // strategies at smoke scale.
        let t = fig10(&Ctx::smoke()).unwrap();
        let r = t.render();
        for s in Strategy::all() {
            assert!(r.contains(s.label()), "{r}");
        }
    }
}
