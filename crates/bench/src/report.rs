//! Fixed-width table formatting for experiment output.

/// A printable results table with a title, column headers, and rows.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

/// Formats a millisecond value compactly.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a byte count as MB with one decimal.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.contains("longer"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(250.4), "250");
        assert_eq!(ms(2.54), "2.5");
        assert_eq!(ms(0.1234), "0.123");
        assert_eq!(mb(10 * 1024 * 1024), "10.0");
    }
}
