//! Fixed-width table formatting for experiment output.

use decibel_obs::Snapshot;

/// A printable results table with a title, column headers, and rows,
/// plus an optional machine-readable metrics document riding alongside.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    metrics: Option<String>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            metrics: None,
        }
    }

    /// Attaches a metrics-snapshot JSON document to the table. With
    /// `--json DIR` the driver writes it next to the table's own JSON as
    /// `DIR/<experiment>_metrics.json` (the CI metrics artifact).
    pub fn attach_metrics(&mut self, json: String) {
        self.metrics = Some(json);
    }

    /// The attached metrics document, if any.
    pub fn metrics_json(&self) -> Option<&str> {
        self.metrics.as_deref()
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Renders the table as machine-readable JSON: an object with the
    /// title and an array of row objects keyed by header. Cells that parse
    /// as numbers are emitted as JSON numbers so downstream tooling (the
    /// `smoke` subcommand's baseline files, CI trend scripts) can consume
    /// them without re-parsing strings.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"title\": ");
        out.push_str(&json_string(&self.title));
        out.push_str(",\n  \"rows\": [");
        for (r, row) in self.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            for (i, (h, cell)) in self.headers.iter().zip(row).enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(h));
                out.push_str(": ");
                out.push_str(&json_cell(cell));
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Quotes and escapes a string for JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A cell becomes a JSON number only when it already *is* one in JSON's
/// grammar (Rust's float parser is laxer — it accepts `+1.5`, `.5`, `1.`,
/// `007` — and emitting those unquoted would corrupt the output).
fn json_cell(cell: &str) -> String {
    if is_json_number(cell) {
        cell.to_string()
    } else {
        json_string(cell)
    }
}

/// RFC 8259 `number` grammar: `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
fn is_json_number(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0;
    if b.first() == Some(&b'-') {
        i += 1;
    }
    let int_start = i;
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    let int_len = i - int_start;
    if int_len == 0 || (int_len > 1 && b[int_start] == b'0') {
        return false;
    }
    if i < b.len() && b[i] == b'.' {
        i += 1;
        let frac_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == frac_start {
            return false;
        }
    }
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        i += 1;
        if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
            i += 1;
        }
        let exp_start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == exp_start {
            return false;
        }
    }
    i == b.len()
}

/// Renders per-row registry deltas plus a cumulative snapshot as the
/// metrics artifact document ([`Table::attach_metrics`]): each timing row
/// pairs with the metric movement it caused, and `cumulative` is the full
/// end-of-run snapshot whose schema the CI golden-file check audits.
pub fn metrics_artifact(deltas: &[(String, Snapshot)], cumulative: &Snapshot) -> String {
    let mut out = String::from("{\n  \"rows\": [");
    for (i, (name, delta)) in deltas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"bench\": {}, \"delta\": {}}}",
            json_string(name),
            delta.to_json()
        ));
    }
    out.push_str("\n  ],\n  \"cumulative\": ");
    out.push_str(&cumulative.to_json());
    out.push_str("\n}\n");
    out
}

/// Formats a millisecond value compactly.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a byte count as MB with one decimal.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.contains("longer"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn json_rows_type_cells() {
        let mut t = Table::new("J \"quoted\"", &["name", "ms"]);
        t.row(vec!["q1".into(), "12.5".into()]);
        t.row(vec!["q2".into(), "n/a".into()]);
        let j = t.to_json();
        assert!(j.contains("\"title\": \"J \\\"quoted\\\"\""));
        assert!(j.contains("{\"name\": \"q1\", \"ms\": 12.5}"));
        assert!(j.contains("{\"name\": \"q2\", \"ms\": \"n/a\"}"));
    }

    #[test]
    fn json_numbers_follow_json_grammar_not_rusts() {
        for ok in ["0", "-1", "12.5", "1e9", "1.25E-3", "0.5"] {
            assert_eq!(super::json_cell(ok), ok, "{ok} is a JSON number");
        }
        // Parseable by Rust's f64::from_str, but not JSON numbers — must
        // be quoted or the emitted document is invalid.
        for bad in ["+1.5", ".5", "1.", "007", "inf", "NaN", "1e", "--1", ""] {
            assert!(
                super::json_cell(bad).starts_with('"'),
                "{bad:?} must be quoted"
            );
        }
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(250.4), "250");
        assert_eq!(ms(2.54), "2.5");
        assert_eq!(ms(0.1234), "0.123");
        assert_eq!(mb(10 * 1024 * 1024), "10.0");
    }
}
