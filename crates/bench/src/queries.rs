//! Timed runners for the benchmark's four query classes (§4.3) and the
//! branch selectors the evaluation uses (§5.2).

use std::time::{Duration, Instant};

use decibel_common::ids::BranchId;
use decibel_common::rng::DetRng;
use decibel_common::{DbError, Result};
use decibel_core::query::Predicate;
use decibel_core::store::VersionedStore;
use decibel_core::types::VersionRef;

use crate::loader::{BranchRole, LoadReport};

/// Which branch a measured query targets — the selections §5.2 describes
/// per strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pick {
    /// Master / the mainline.
    Mainline,
    /// Deep: the latest link ("the tail").
    DeepTail,
    /// Deep: the tail's parent link.
    DeepParent,
    /// Flat: a random child ("this choice is arbitrary as all children are
    /// equivalent").
    FlatChild,
    /// Flat: the single common parent.
    FlatParent,
    /// Science: the youngest still-active working branch.
    SciYoungest,
    /// Science: the oldest still-active working branch.
    SciOldest,
    /// Curation: an active development branch.
    CurDev,
    /// Curation: an active feature branch.
    CurFeature,
}

/// Resolves a [`Pick`] against a load report.
pub fn pick_branch(report: &LoadReport, pick: Pick, rng: &mut DetRng) -> Result<BranchId> {
    let missing = |what: &str| DbError::Invalid(format!("no {what} branch in this workload"));
    match pick {
        Pick::Mainline => Ok(BranchId::MASTER),
        Pick::DeepTail => report
            .branches
            .iter()
            .filter_map(|b| match b.role {
                BranchRole::DeepLink(l) => Some((l, b.id)),
                _ => None,
            })
            .max_by_key(|&(l, _)| l)
            .map(|(_, id)| id)
            .ok_or_else(|| missing("deep tail")),
        Pick::DeepParent => {
            let mut links: Vec<(u32, BranchId)> = report
                .branches
                .iter()
                .filter_map(|b| match b.role {
                    BranchRole::DeepLink(l) => Some((l, b.id)),
                    _ => None,
                })
                .collect();
            links.sort_unstable();
            if links.len() < 2 {
                return Err(missing("deep parent"));
            }
            Ok(links[links.len() - 2].1)
        }
        Pick::FlatChild => {
            let children = report.with_role(|r| matches!(r, BranchRole::FlatChild));
            if children.is_empty() {
                return Err(missing("flat child"));
            }
            Ok(children[rng.below_usize(children.len())].id)
        }
        Pick::FlatParent => Ok(BranchId::MASTER),
        Pick::SciYoungest | Pick::SciOldest => {
            let mut active: Vec<(u32, BranchId)> = report
                .branches
                .iter()
                .filter_map(|b| match b.role {
                    BranchRole::Science {
                        order,
                        retired: false,
                    } => Some((order, b.id)),
                    _ => None,
                })
                .collect();
            // Fall back to retired branches if none stayed active.
            if active.is_empty() {
                active = report
                    .branches
                    .iter()
                    .filter_map(|b| match b.role {
                        BranchRole::Science { order, .. } => Some((order, b.id)),
                        _ => None,
                    })
                    .collect();
            }
            active.sort_unstable();
            let picked = match pick {
                Pick::SciYoungest => active.last(),
                _ => active.first(),
            };
            picked.map(|&(_, id)| id).ok_or_else(|| missing("science"))
        }
        Pick::CurDev => {
            let devs = report.with_role(|r| matches!(r, BranchRole::CurationDev { merged: false }));
            let devs = if devs.is_empty() {
                report.with_role(|r| matches!(r, BranchRole::CurationDev { .. }))
            } else {
                devs
            };
            if devs.is_empty() {
                return Err(missing("curation dev"));
            }
            Ok(devs[rng.below_usize(devs.len())].id)
        }
        Pick::CurFeature => {
            let feats = report
                .with_role(|r| matches!(r, BranchRole::CurationFeature { merged: false, .. }));
            let feats = if feats.is_empty() {
                report.with_role(|r| matches!(r, BranchRole::CurationFeature { .. }))
            } else {
                feats
            };
            if feats.is_empty() {
                return Err(missing("curation feature"));
            }
            Ok(feats[rng.below_usize(feats.len())].id)
        }
    }
}

/// Result of a timed query run.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Wall-clock duration.
    pub wall: Duration,
    /// Output rows (integrity check across engines).
    pub rows: u64,
}

impl Timing {
    /// Milliseconds as f64.
    pub fn ms(&self) -> f64 {
        self.wall.as_secs_f64() * 1e3
    }
}

fn maybe_cold(store: &dyn VersionedStore, cold: bool) {
    if cold {
        // "We flush disk caches prior to each operation" (§5).
        store.drop_caches();
    }
}

/// Q1: "Scan and emit the active records in a single branch."
pub fn q1(store: &dyn VersionedStore, version: VersionRef, cold: bool) -> Result<Timing> {
    maybe_cold(store, cold);
    let start = Instant::now();
    let mut rows = 0u64;
    for item in store.scan(version)? {
        let _rec = item?;
        rows += 1;
    }
    Ok(Timing {
        wall: start.elapsed(),
        rows,
    })
}

/// Q2: "Compute the difference between two branches ... Emit the records
/// in B1 that do not appear in B2."
pub fn q2(
    store: &dyn VersionedStore,
    b1: VersionRef,
    b2: VersionRef,
    cold: bool,
) -> Result<Timing> {
    maybe_cold(store, cold);
    let start = Instant::now();
    let diff = store.diff(b1, b2)?;
    Ok(Timing {
        wall: start.elapsed(),
        rows: diff.left_only.len() as u64,
    })
}

/// Q3: "Scan and emit the active records in a primary-key join of two
/// branches ... that satisfy some predicate." The predicate keeps ~50% of
/// rows, matching the paper's non-selective setting.
pub fn q3(
    store: &dyn VersionedStore,
    b1: VersionRef,
    b2: VersionRef,
    cold: bool,
) -> Result<Timing> {
    maybe_cold(store, cold);
    let predicate = Predicate::ColMod(0, 2, 0);
    let start = Instant::now();
    // Hash join: build on b2, probe with filtered b1 (§5.2).
    let mut build = decibel_common::hash::FxHashMap::default();
    for item in store.scan(b2)? {
        let rec = item?;
        build.insert(rec.key(), rec);
    }
    let mut rows = 0u64;
    for item in store.scan(b1)? {
        let rec = item?;
        if predicate.eval(&rec) && build.contains_key(&rec.key()) {
            rows += 1;
        }
    }
    Ok(Timing {
        wall: start.elapsed(),
        rows,
    })
}

/// Q4: "A full dataset scan that emits all records in the head of any
/// branch that satisfy a predicate", with "a very non-selective predicate".
pub fn q4(store: &dyn VersionedStore, branches: &[BranchId], cold: bool) -> Result<Timing> {
    maybe_cold(store, cold);
    let predicate = Predicate::ColNe(0, u64::MAX); // passes everything real
    let start = Instant::now();
    let mut rows = 0u64;
    for item in store.multi_scan(branches)? {
        let (rec, live) = item?;
        if !live.is_empty() && predicate.eval(&rec) {
            rows += 1;
        }
    }
    Ok(Timing {
        wall: start.elapsed(),
        rows,
    })
}

/// Every head branch in the store (Q4's default target set).
pub fn all_heads(store: &dyn VersionedStore) -> Vec<BranchId> {
    store
        .graph()
        .heads(false)
        .into_iter()
        .map(|(b, _)| b)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::load;
    use crate::spec::WorkloadSpec;
    use crate::strategy::Strategy;

    fn loaded(strategy: Strategy) -> (tempfile::TempDir, Box<dyn VersionedStore>, LoadReport) {
        let dir = tempfile::tempdir().unwrap();
        let mut spec = WorkloadSpec::scaled(strategy, 5, 0.05);
        spec.cols = 4;
        let mut store = decibel_core::Database::build_store(
            decibel_core::EngineKind::Hybrid,
            dir.path().join("hy"),
            spec.schema(),
            &spec.store_config(),
        )
        .unwrap();
        let report = load(store.as_mut(), &spec).unwrap();
        (dir, store, report)
    }

    #[test]
    fn picks_resolve_per_strategy() {
        let mut rng = DetRng::seed_from_u64(1);
        let (_d, _s, deep) = loaded(Strategy::Deep);
        let tail = pick_branch(&deep, Pick::DeepTail, &mut rng).unwrap();
        let parent = pick_branch(&deep, Pick::DeepParent, &mut rng).unwrap();
        assert_ne!(tail, parent);

        let (_d, _s, flat) = loaded(Strategy::Flat);
        pick_branch(&flat, Pick::FlatChild, &mut rng).unwrap();
        assert_eq!(
            pick_branch(&flat, Pick::FlatParent, &mut rng).unwrap(),
            BranchId::MASTER
        );

        let (_d, _s, sci) = loaded(Strategy::Science);
        pick_branch(&sci, Pick::SciYoungest, &mut rng).unwrap();
        pick_branch(&sci, Pick::SciOldest, &mut rng).unwrap();

        let (_d, _s, cur) = loaded(Strategy::Curation);
        pick_branch(&cur, Pick::CurDev, &mut rng).unwrap();
        pick_branch(&cur, Pick::CurFeature, &mut rng).unwrap();
        // Mismatched picks error.
        assert!(pick_branch(&deep, Pick::FlatChild, &mut rng).is_err());
    }

    #[test]
    fn queries_run_and_count_rows() {
        let (_d, store, report) = loaded(Strategy::Flat);
        let mut rng = DetRng::seed_from_u64(2);
        let child = pick_branch(&report, Pick::FlatChild, &mut rng).unwrap();
        let t1 = q1(store.as_ref(), child.into(), true).unwrap();
        assert!(t1.rows > 0);
        let t2 = q2(store.as_ref(), child.into(), BranchId::MASTER.into(), true).unwrap();
        // The child has its own inserts not in the parent.
        assert!(t2.rows > 0);
        let t3 = q3(store.as_ref(), child.into(), BranchId::MASTER.into(), true).unwrap();
        assert!(t3.rows > 0);
        assert!(t3.rows <= t1.rows);
        let heads = all_heads(store.as_ref());
        let t4 = q4(store.as_ref(), &heads, true).unwrap();
        assert!(t4.rows >= t1.rows);
    }
}
