//! The deterministic workload driver (§4.2).
//!
//! "The benchmark is designed as a single-threaded client that loads and
//! updates data according to branching strategy, and measures query
//! latency." The loader issues an 80/20 insert/update mix per branch,
//! commits at fixed per-branch intervals, creates/merges branches per the
//! strategy, and supports the two loading modes: *interleaved* ("each
//! insert is performed to a randomly selected branch in line with the
//! selected branching strategy" — the evaluation default) and *clustered*
//! ("inserts into a particular branch are batched together").
//!
//! Updates must target keys visible in the chosen branch; visibility is
//! tracked generator-side with per-branch key views (own inserts plus
//! prefix references into ancestors' key lists), so the same operation
//! stream drives every engine identically (§5.6's determinism requirement).

use std::time::{Duration, Instant};

use decibel_common::ids::BranchId;
use decibel_common::record::Record;
use decibel_common::rng::DetRng;
use decibel_common::Result;
use decibel_core::store::VersionedStore;

use crate::spec::WorkloadSpec;
use crate::strategy::Strategy;

/// What part a branch plays in its strategy (query selectors key off this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BranchRole {
    /// The master/mainline branch.
    Mainline,
    /// A link in the deep chain (0 = master ... highest = tail).
    DeepLink(u32),
    /// One of the flat strategy's children.
    FlatChild,
    /// A science working branch (creation order; retired when its lifetime
    /// elapsed).
    Science {
        /// Creation order among science branches.
        order: u32,
        /// Whether the branch reached its lifetime and was retired.
        retired: bool,
    },
    /// A curation development branch.
    CurationDev {
        /// Whether it has been merged back into mainline.
        merged: bool,
    },
    /// A curation feature/fix branch.
    CurationFeature {
        /// The branch it forked from and merges back into.
        parent: BranchId,
        /// Whether it has been merged back.
        merged: bool,
    },
}

/// Metadata about one branch created during loading.
#[derive(Debug, Clone)]
pub struct BranchInfo {
    /// The branch id in the store.
    pub id: BranchId,
    /// The branch name.
    pub name: String,
    /// Its role in the strategy.
    pub role: BranchRole,
}

/// Everything the experiments need to know about a loaded dataset.
#[derive(Debug)]
pub struct LoadReport {
    /// Branch roster with roles.
    pub branches: Vec<BranchInfo>,
    /// Wall-clock load duration (Table 5's "build time").
    pub duration: Duration,
    /// Operation counts.
    pub inserts: u64,
    /// Number of updates issued.
    pub updates: u64,
    /// Commits made (explicit cadence commits only).
    pub commits: u64,
    /// Merges performed (curation only).
    pub merges: u64,
    /// Aggregate MB/s throughput of merges, by diff bytes (Table 3).
    pub merge_bytes: u64,
    /// Total wall time spent inside merge calls.
    pub merge_time: Duration,
}

impl LoadReport {
    /// Branches matching a predicate on their role.
    pub fn with_role(&self, f: impl Fn(&BranchRole) -> bool) -> Vec<&BranchInfo> {
        self.branches.iter().filter(|b| f(&b.role)).collect()
    }
}

/// Generator-side view of the keys visible in a branch: prefixes of
/// ancestors' own-key lists plus the branch's own inserts.
#[derive(Clone, Default)]
struct KeyView {
    /// `(branch index, prefix length)` — inherited visibility.
    inherited: Vec<(usize, usize)>,
    /// Total inherited key count (sum of prefix lengths).
    inherited_total: u64,
}

struct BranchState {
    id: BranchId,
    view: KeyView,
    /// Keys inserted on this branch, in order.
    own: Vec<u64>,
    /// Ops applied since the last commit.
    since_commit: u64,
    /// Total ops applied to this branch.
    ops: u64,
}

struct Loader<'a> {
    store: &'a mut dyn VersionedStore,
    spec: &'a WorkloadSpec,
    rng: DetRng,
    next_key: u64,
    branches: Vec<BranchState>,
    infos: Vec<BranchInfo>,
    inserts: u64,
    updates: u64,
    commits: u64,
    merges: u64,
    merge_bytes: u64,
    merge_time: Duration,
}

/// Loads `store` according to `spec`; the store must be freshly
/// initialized (only master, no data).
pub fn load(store: &mut dyn VersionedStore, spec: &WorkloadSpec) -> Result<LoadReport> {
    let start = Instant::now();
    let mut loader = Loader {
        store,
        spec,
        rng: DetRng::seed_from_u64(spec.seed),
        next_key: 0,
        branches: vec![BranchState {
            id: BranchId::MASTER,
            view: KeyView::default(),
            own: Vec::new(),
            since_commit: 0,
            ops: 0,
        }],
        infos: vec![BranchInfo {
            id: BranchId::MASTER,
            name: "master".to_string(),
            role: BranchRole::Mainline,
        }],
        inserts: 0,
        updates: 0,
        commits: 0,
        merges: 0,
        merge_bytes: 0,
        merge_time: Duration::ZERO,
    };
    match spec.strategy {
        Strategy::Deep => loader.load_deep()?,
        Strategy::Flat => loader.load_flat()?,
        Strategy::Science => loader.load_science()?,
        Strategy::Curation => loader.load_curation()?,
    }
    // Final commit on every branch so heads are recorded versions.
    for i in 0..loader.branches.len() {
        if loader.branches[i].since_commit > 0 {
            let id = loader.branches[i].id;
            loader.store.commit(id)?;
            loader.branches[i].since_commit = 0;
            loader.commits += 1;
        }
    }
    loader.store.flush()?;
    Ok(LoadReport {
        branches: loader.infos,
        duration: start.elapsed(),
        inserts: loader.inserts,
        updates: loader.updates,
        commits: loader.commits,
        merges: loader.merges,
        merge_bytes: loader.merge_bytes,
        merge_time: loader.merge_time,
    })
}

impl Loader<'_> {
    fn gen_record(&mut self, key: u64) -> Record {
        let fields = (0..self.spec.cols)
            .map(|_| self.rng.next_u32() as u64)
            .collect();
        Record::new(key, fields)
    }

    /// Applies one operation (insert or update, per the configured mix) to
    /// branch `idx` and handles the commit cadence.
    fn one_op(&mut self, idx: usize) -> Result<()> {
        let total_visible =
            self.branches[idx].view.inherited_total + self.branches[idx].own.len() as u64;
        let do_update = total_visible > 0 && self.rng.below(100) < self.spec.update_pct as u64;
        let branch_id = self.branches[idx].id;
        if do_update {
            let key = self.pick_visible_key(idx);
            let rec = self.gen_record(key);
            self.store.update(branch_id, rec)?;
            self.updates += 1;
        } else {
            let key = self.next_key;
            self.next_key += 1;
            let rec = self.gen_record(key);
            self.store.insert(branch_id, rec)?;
            self.branches[idx].own.push(key);
            self.inserts += 1;
        }
        self.branches[idx].ops += 1;
        self.branches[idx].since_commit += 1;
        if self.branches[idx].since_commit >= self.spec.commit_every {
            self.store.commit(branch_id)?;
            self.branches[idx].since_commit = 0;
            self.commits += 1;
        }
        Ok(())
    }

    /// Uniformly samples a key visible in branch `idx`.
    fn pick_visible_key(&mut self, idx: usize) -> u64 {
        let b = &self.branches[idx];
        let total = b.view.inherited_total + b.own.len() as u64;
        let mut pos = self.rng.below(total);
        if pos >= b.view.inherited_total {
            return b.own[(pos - b.view.inherited_total) as usize];
        }
        for &(anc, prefix) in &b.view.inherited {
            if pos < prefix as u64 {
                return self.branches[anc].own[pos as usize];
            }
            pos -= prefix as u64;
        }
        unreachable!("inherited_total matches prefix sum");
    }

    /// Creates a branch in the store and registers generator-side state.
    fn fork(&mut self, name: &str, parent_idx: usize, role: BranchRole) -> Result<usize> {
        let parent_id = self.branches[parent_idx].id;
        let id = self.store.create_branch(name, parent_id.into())?;
        self.commits += 1; // forking commits the parent's working state
        let mut view = self.branches[parent_idx].view.clone();
        view.inherited
            .push((parent_idx, self.branches[parent_idx].own.len()));
        view.inherited_total += self.branches[parent_idx].own.len() as u64;
        self.branches.push(BranchState {
            id,
            view,
            own: Vec::new(),
            since_commit: 0,
            ops: 0,
        });
        self.infos.push(BranchInfo {
            id,
            name: name.to_string(),
            role,
        });
        Ok(self.branches.len() - 1)
    }

    /// Merges branch `from_idx` into `into_idx` (three-way, source wins
    /// conflicting fields — curation "applies fixes back").
    fn merge(&mut self, into_idx: usize, from_idx: usize) -> Result<()> {
        let into = self.branches[into_idx].id;
        let from = self.branches[from_idx].id;
        let t = Instant::now();
        let res = self.store.merge(into, from, self.spec.merge_policy)?;
        self.merge_time += t.elapsed();
        self.merge_bytes += res.bytes_compared;
        self.merges += 1;
        // The destination now sees the source's inserts.
        let from_own = self.branches[from_idx].own.len();
        let (head, tail) = self.branches.split_at_mut(from_idx.max(into_idx));
        let _ = (head, tail);
        let view_add = (from_idx, from_own);
        self.branches[into_idx].view.inherited.push(view_add);
        self.branches[into_idx].view.inherited_total += from_own as u64;
        Ok(())
    }

    // ----------------------------------------------------------------
    // Strategies
    // ----------------------------------------------------------------

    /// Deep: a linear chain; ops always go to the newest link.
    fn load_deep(&mut self) -> Result<()> {
        let mut tail = 0usize;
        for level in 0..self.spec.branches {
            if level > 0 {
                tail = self.fork(
                    &format!("deep{level}"),
                    tail,
                    BranchRole::DeepLink(level as u32),
                )?;
            } else {
                self.infos[0].role = BranchRole::DeepLink(0);
            }
            for _ in 0..self.spec.ops_per_branch {
                self.one_op(tail)?;
            }
        }
        Ok(())
    }

    /// Flat: one parent, many children, ops spread across the children.
    fn load_flat(&mut self) -> Result<()> {
        // The common parent's data first.
        for _ in 0..self.spec.ops_per_branch {
            self.one_op(0)?;
        }
        let n_children = self.spec.branches.saturating_sub(1).max(1);
        let mut children = Vec::with_capacity(n_children);
        for c in 0..n_children {
            children.push(self.fork(&format!("flat{c}"), 0, BranchRole::FlatChild)?);
        }
        let total = n_children as u64 * self.spec.ops_per_branch;
        if self.spec.clustered {
            // Clustered: each child's ops batched together.
            for &c in &children {
                for _ in 0..self.spec.ops_per_branch {
                    self.one_op(c)?;
                }
            }
        } else {
            // Interleaved: "all child branches are selected uniformly at
            // random".
            for _ in 0..total {
                let c = children[self.rng.below_usize(children.len())];
                self.one_op(c)?;
            }
        }
        Ok(())
    }

    /// Science: evolving mainline, working branches with a fixed lifetime,
    /// no merges, 2:1 insert skew to mainline.
    fn load_science(&mut self) -> Result<()> {
        let n_branches = self.spec.branches;
        let total_ops = self.spec.total_ops();
        // Space branch creations evenly through the op stream.
        let create_every = (total_ops / (n_branches as u64 + 1)).max(1);
        let mut created = 0usize;
        let mut active: Vec<usize> = Vec::new();
        let mut issued = 0u64;
        while issued < total_ops {
            if created < n_branches && issued >= (created as u64 + 1) * create_every {
                // "each new branch either starts from some commit of the
                // master branch ('mainline'), or from the head of some
                // existing active working branch."
                let parent = if active.is_empty() || self.rng.chance(7, 10) {
                    0
                } else {
                    *self.rng.choose(&active)
                };
                let idx = self.fork(
                    &format!("sci{created}"),
                    parent,
                    BranchRole::Science {
                        order: created as u32,
                        retired: false,
                    },
                )?;
                active.push(idx);
                created += 1;
            }
            // Retire branches past their lifetime.
            let lifetime = self.spec.science_lifetime;
            let mut i = 0;
            while i < active.len() {
                let idx = active[i];
                if self.branches[idx].ops >= lifetime {
                    active.swap_remove(i);
                    let id = self.branches[idx].id;
                    if self.branches[idx].since_commit > 0 {
                        self.store.commit(id)?;
                        self.branches[idx].since_commit = 0;
                        self.commits += 1;
                    }
                    if let BranchRole::Science { retired, .. } = &mut self.infos[idx].role {
                        *retired = true;
                    }
                } else {
                    i += 1;
                }
            }
            // Weighted target choice: mainline counts `mainline_weight`.
            let weight_total = self.spec.mainline_weight + active.len() as u64;
            let pick = self.rng.below(weight_total);
            let target = if pick < self.spec.mainline_weight {
                0
            } else {
                active[(pick - self.spec.mainline_weight) as usize]
            };
            self.one_op(target)?;
            issued += 1;
        }
        Ok(())
    }

    /// Curation: mainline + dev branches merged back, short feature/fix
    /// branches off mainline or dev merged back into their parents.
    fn load_curation(&mut self) -> Result<()> {
        let n_branches = self.spec.branches;
        let mut created = 0usize;
        let mut active_devs: Vec<usize> = Vec::new();
        let mut active_feats: Vec<(usize, usize)> = Vec::new(); // (idx, parent idx)
        loop {
            // Create branches while budget remains: keep one or two devs
            // and up to two features in flight.
            while created < n_branches && (active_devs.len() < 2 || active_feats.len() < 2) {
                if active_devs.len() < 2 && (active_feats.len() >= 2 || self.rng.chance(3, 5)) {
                    let idx = self.fork(
                        &format!("dev{created}"),
                        0,
                        BranchRole::CurationDev { merged: false },
                    )?;
                    active_devs.push(idx);
                } else {
                    // "short-lived 'feature' or 'fix' branches may be
                    // created off the mainline or a development branch".
                    let parent = if active_devs.is_empty() || self.rng.chance(1, 2) {
                        0
                    } else {
                        *self.rng.choose(&active_devs)
                    };
                    let idx = self.fork(
                        &format!("feat{created}"),
                        parent,
                        BranchRole::CurationFeature {
                            parent: self.branches[parent].id,
                            merged: false,
                        },
                    )?;
                    active_feats.push((idx, parent));
                }
                created += 1;
            }
            // Merge branches that reached their lifetimes — unless they
            // are the last of their kind, kept active so post-load queries
            // have dev/feature targets (§5.2 reads active branches).
            let last_generation = created >= n_branches;
            let mut f = 0;
            while f < active_feats.len() {
                let (idx, parent) = active_feats[f];
                let done = self.branches[idx].ops >= self.spec.feature_lifetime;
                if done && !(last_generation && active_feats.len() == 1) {
                    active_feats.swap_remove(f);
                    self.merge(parent, idx)?;
                    if let BranchRole::CurationFeature { merged, .. } = &mut self.infos[idx].role {
                        *merged = true;
                    }
                } else {
                    f += 1;
                }
            }
            let mut d = 0;
            while d < active_devs.len() {
                let idx = active_devs[d];
                let done = self.branches[idx].ops >= self.spec.dev_lifetime;
                // A dev with an unmerged feature child must wait for it.
                let has_child = active_feats.iter().any(|&(_, p)| p == idx);
                if done && !has_child && !(last_generation && active_devs.len() == 1) {
                    active_devs.swap_remove(d);
                    self.merge(0, idx)?;
                    if let BranchRole::CurationDev { merged } = &mut self.infos[idx].role {
                        *merged = true;
                    }
                } else {
                    d += 1;
                }
            }
            // Stop once every branch is created and in-flight work is
            // down to the kept-active survivors.
            if last_generation {
                let feats_busy = active_feats
                    .iter()
                    .any(|&(idx, _)| self.branches[idx].ops < self.spec.feature_lifetime);
                let devs_busy = active_devs
                    .iter()
                    .any(|&idx| self.branches[idx].ops < self.spec.dev_lifetime);
                if !feats_busy && !devs_busy && active_devs.len() <= 1 && active_feats.len() <= 1 {
                    break;
                }
            }
            // "Data modifications are done randomly across the heads of
            // the mainline branch or any of the active ... branches."
            let mut heads = vec![0usize];
            heads.extend(active_devs.iter().copied());
            heads.extend(active_feats.iter().map(|&(i, _)| i));
            let target = *self.rng.choose(&heads);
            self.one_op(target)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use decibel_core::types::{EngineKind, VersionRef};
    use decibel_core::Database;

    fn spec(strategy: Strategy, branches: usize) -> WorkloadSpec {
        let mut s = WorkloadSpec::scaled(strategy, branches, 0.05);
        s.cols = 4;
        s
    }

    fn tf(dir: &std::path::Path, spec: &WorkloadSpec) -> Box<dyn VersionedStore> {
        Database::build_store(
            EngineKind::TupleFirstBranch,
            dir.join("tf"),
            spec.schema(),
            &spec.store_config(),
        )
        .unwrap()
    }

    #[test]
    fn deep_builds_a_chain() {
        let dir = tempfile::tempdir().unwrap();
        let spec = spec(Strategy::Deep, 5);
        let mut store = tf(dir.path(), &spec);
        let report = load(store.as_mut(), &spec).unwrap();
        assert_eq!(report.branches.len(), 5);
        assert_eq!(report.merges, 0);
        // Tail sees everything inserted anywhere in the chain.
        let tail = report.branches.last().unwrap().id;
        let live = store.live_count(VersionRef::Branch(tail)).unwrap();
        assert_eq!(live, report.inserts);
        // Root sees only its own inserts (~ops_per_branch at 80% inserts).
        let root_live = store
            .live_count(VersionRef::Branch(BranchId::MASTER))
            .unwrap();
        assert!(root_live < live);
        assert!(report.inserts + report.updates >= 5 * spec.ops_per_branch);
    }

    #[test]
    fn flat_children_share_the_parent_data() {
        let dir = tempfile::tempdir().unwrap();
        let spec = spec(Strategy::Flat, 5);
        let mut store = tf(dir.path(), &spec);
        let report = load(store.as_mut(), &spec).unwrap();
        let children = report.with_role(|r| matches!(r, BranchRole::FlatChild));
        assert_eq!(children.len(), 4);
        let parent_live = store
            .live_count(VersionRef::Branch(BranchId::MASTER))
            .unwrap();
        for c in &children {
            let live = store.live_count(VersionRef::Branch(c.id)).unwrap();
            assert!(live >= parent_live * 8 / 10, "child inherits parent data");
        }
    }

    #[test]
    fn science_retires_branches_without_merging() {
        let dir = tempfile::tempdir().unwrap();
        let spec = spec(Strategy::Science, 6);
        let mut store = tf(dir.path(), &spec);
        let report = load(store.as_mut(), &spec).unwrap();
        assert_eq!(report.merges, 0);
        let sci = report.with_role(|r| matches!(r, BranchRole::Science { .. }));
        assert_eq!(sci.len(), 6);
        let retired = report
            .with_role(|r| matches!(r, BranchRole::Science { retired: true, .. }))
            .len();
        assert!(retired >= 1, "some branches retire");
    }

    #[test]
    fn curation_merges_back() {
        let dir = tempfile::tempdir().unwrap();
        let spec = spec(Strategy::Curation, 8);
        let mut store = tf(dir.path(), &spec);
        let report = load(store.as_mut(), &spec).unwrap();
        assert!(
            report.merges >= 4,
            "most branches merge back (got {})",
            report.merges
        );
        assert!(report.merge_bytes > 0);
        // At least one dev and one feature stay active for queries.
        assert!(!report
            .with_role(|r| matches!(r, BranchRole::CurationDev { merged: false }))
            .is_empty());
        assert!(!report
            .with_role(|r| matches!(r, BranchRole::CurationFeature { merged: false, .. }))
            .is_empty());
    }

    #[test]
    fn same_seed_same_stream_across_engines() {
        let dir = tempfile::tempdir().unwrap();
        let spec = spec(Strategy::Curation, 6);
        let mut a = tf(dir.path(), &spec);
        let ra = load(a.as_mut(), &spec).unwrap();
        let mut b = Database::build_store(
            EngineKind::VersionFirst,
            dir.path().join("vf"),
            spec.schema(),
            &spec.store_config(),
        )
        .unwrap();
        let rb = load(b.as_mut(), &spec).unwrap();
        let mut c = Database::build_store(
            EngineKind::Hybrid,
            dir.path().join("hy"),
            spec.schema(),
            &spec.store_config(),
        )
        .unwrap();
        let rc = load(c.as_mut(), &spec).unwrap();
        assert_eq!(ra.inserts, rb.inserts);
        assert_eq!(ra.updates, rb.updates);
        assert_eq!(ra.merges, rb.merges);
        assert_eq!(ra.inserts, rc.inserts);
        // All engines agree on every branch's live set.
        for info in &ra.branches {
            let la = a.live_count(VersionRef::Branch(info.id)).unwrap();
            let lb = b.live_count(VersionRef::Branch(info.id)).unwrap();
            let lc = c.live_count(VersionRef::Branch(info.id)).unwrap();
            assert_eq!(la, lb, "TF vs VF live count on {}", info.name);
            assert_eq!(la, lc, "TF vs HY live count on {}", info.name);
        }
    }

    #[test]
    fn clustered_flat_loads_equivalent_data() {
        let dir = tempfile::tempdir().unwrap();
        let mut spec_c = spec(Strategy::Flat, 4);
        spec_c.clustered = true;
        let mut store = tf(dir.path(), &spec_c);
        let report = load(store.as_mut(), &spec_c).unwrap();
        assert_eq!(report.inserts + report.updates, 4 * spec_c.ops_per_branch);
    }
}
