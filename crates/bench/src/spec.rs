//! Workload parameters (§4.2 "Data Generation and Loading").

use decibel_common::schema::{ColumnType, Schema};
use decibel_core::types::MergePolicy;
use decibel_pagestore::StoreConfig;

use crate::strategy::Strategy;

/// Full parameterization of one benchmark dataset.
///
/// Paper defaults: 1 KB records (250 × 4-byte columns), 4 MB pages, commits
/// every 10,000 operations per branch, 20% updates / 80% inserts, 100 GB
/// datasets. The reproduction keeps every ratio but scales absolute sizes
/// with [`WorkloadSpec::scaled`] so the full suite runs on a laptop; the
/// paper geometry is available via [`WorkloadSpec::paper`].
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// The branching strategy.
    pub strategy: Strategy,
    /// Number of branches to create (beyond master for flat/sci/cur;
    /// including the chain links for deep).
    pub branches: usize,
    /// Insert/update operations charged to each branch.
    pub ops_per_branch: u64,
    /// Number of integer data columns per record.
    pub cols: usize,
    /// Percentage of operations that are updates (paper: 20).
    pub update_pct: u32,
    /// Operations per branch between commits (paper: 10,000).
    pub commit_every: u64,
    /// RNG seed — "we deterministically seed the random number generator
    /// to ensure each scheme performs the same set of operations in the
    /// same order" (§5.6).
    pub seed: u64,
    /// Clustered loading batches each branch's ops; interleaved (the
    /// evaluation default) mixes branches op by op.
    pub clustered: bool,
    /// Science: ops a working branch stays active for before retiring.
    pub science_lifetime: u64,
    /// Science: mainline weight for the 2:1 insert skew.
    pub mainline_weight: u64,
    /// Curation: ops a development branch receives before merging back.
    pub dev_lifetime: u64,
    /// Curation: ops a feature/fix branch receives before merging back.
    pub feature_lifetime: u64,
    /// Conflict policy for curation merges (Table 3 compares two-way and
    /// three-way).
    pub merge_policy: MergePolicy,
}

impl WorkloadSpec {
    /// A laptop-scale spec: ratios match the paper, absolute volume scales
    /// with `scale` (1.0 ≈ a few thousand records per branch).
    pub fn scaled(strategy: Strategy, branches: usize, scale: f64) -> WorkloadSpec {
        let ops = ((2_000.0 * scale).max(50.0)) as u64;
        WorkloadSpec {
            strategy,
            branches,
            ops_per_branch: ops,
            cols: 60,
            update_pct: 20,
            commit_every: (ops / 4).max(25),
            seed: 0x0DEC_1BE1,
            clustered: false,
            science_lifetime: (ops / 2).max(25),
            mainline_weight: 2,
            dev_lifetime: ops,
            feature_lifetime: (ops / 4).max(10),
            merge_policy: MergePolicy::ThreeWay { prefer_left: false },
        }
    }

    /// The paper's geometry (250 columns, commits every 10k ops). Dataset
    /// volume still comes from `branches × ops_per_branch`.
    pub fn paper(strategy: Strategy, branches: usize, ops_per_branch: u64) -> WorkloadSpec {
        WorkloadSpec {
            strategy,
            branches,
            ops_per_branch,
            cols: 250,
            update_pct: 20,
            commit_every: 10_000,
            seed: 0x0DEC_1BE1,
            clustered: false,
            science_lifetime: ops_per_branch,
            mainline_weight: 2,
            dev_lifetime: ops_per_branch,
            feature_lifetime: (ops_per_branch / 4).max(10),
            merge_policy: MergePolicy::ThreeWay { prefer_left: false },
        }
    }

    /// The relation schema this spec generates.
    pub fn schema(&self) -> Schema {
        Schema::new(self.cols, ColumnType::U32)
    }

    /// A store configuration sized for this spec (pages scaled with the
    /// record size to keep records-per-page near the paper's ~4,000).
    pub fn store_config(&self) -> StoreConfig {
        let mut cfg = StoreConfig::bench_default();
        cfg.page_size = (self.schema().record_size() * 256).next_power_of_two();
        cfg
    }

    /// Approximate total operations the load will issue.
    pub fn total_ops(&self) -> u64 {
        self.branches as u64 * self.ops_per_branch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_keeps_ratios() {
        let s = WorkloadSpec::scaled(Strategy::Flat, 10, 1.0);
        assert_eq!(s.update_pct, 20);
        assert!(s.commit_every >= 25);
        assert_eq!(s.total_ops(), 10 * s.ops_per_branch);
    }

    #[test]
    fn paper_geometry() {
        let s = WorkloadSpec::paper(Strategy::Deep, 10, 10_000);
        assert_eq!(s.cols, 250);
        assert_eq!(s.schema().record_size(), 1009);
        assert_eq!(s.commit_every, 10_000);
    }

    #[test]
    fn store_config_tracks_record_size() {
        let small = WorkloadSpec::scaled(Strategy::Flat, 10, 1.0);
        let big = WorkloadSpec::paper(Strategy::Flat, 10, 100);
        assert!(big.store_config().page_size > small.store_config().page_size);
    }
}
