//! The four branching strategies (§4.1).

use std::fmt;

/// How the synthetic version graph evolves during loading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// "A single, linear branch chain. Each branch is created from the end
    /// of the previous branch ... inserts and updates always occur in the
    /// branch that was created last."
    Deep,
    /// "Creates many child branches from a single initial parent" — ops go
    /// uniformly to the children.
    Flat,
    /// The data-science pattern: an evolving mainline; working branches
    /// fork from mainline commits or other active branches, live a fixed
    /// lifetime, then retire. No merges. Inserts skew 2:1 to mainline.
    Science,
    /// The data-curation pattern: development branches fork from mainline
    /// and merge back; short-lived feature/fix branches fork from mainline
    /// or a development branch and merge back into their parents.
    Curation,
}

impl Strategy {
    /// All four strategies in the paper's presentation order.
    pub fn all() -> [Strategy; 4] {
        [
            Strategy::Deep,
            Strategy::Flat,
            Strategy::Science,
            Strategy::Curation,
        ]
    }

    /// The short label used in the paper's tables (DEEP/FLAT/SCI/CUR).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Deep => "DEEP",
            Strategy::Flat => "FLAT",
            Strategy::Science => "SCI",
            Strategy::Curation => "CUR",
        }
    }

    /// Whether this strategy performs merges during loading.
    pub fn has_merges(self) -> bool {
        matches!(self, Strategy::Curation)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_merge_flags() {
        assert_eq!(Strategy::Deep.label(), "DEEP");
        assert_eq!(Strategy::all().len(), 4);
        assert!(Strategy::Curation.has_merges());
        assert!(!Strategy::Science.has_merges());
    }
}
