//! The Decibel versioning benchmark (§4) and experiment harness (§5).
//!
//! "To evaluate Decibel, we developed a new versioning benchmark to measure
//! the performance of our versioned storage systems ... The benchmark
//! consists of four types of queries run on a synthetic versioned dataset,
//! generated using one of four branching strategies" (§4). This crate
//! provides:
//!
//! * [`spec::WorkloadSpec`] + [`strategy::Strategy`] — the four branching
//!   strategies (deep, flat, science, curation) with the paper's knobs
//!   (80/20 insert/update mix, commit interval, 2:1 science skew,
//!   interleaved vs clustered loading);
//! * [`loader`] — the deterministic single-threaded driver that loads a
//!   [`VersionedStore`](decibel_core::VersionedStore) and records the
//!   branch roles queries select from;
//! * [`queries`] — timed runners for the benchmark's Q1–Q4 (§4.3);
//! * [`experiments`] — one module per paper table/figure, each printing
//!   the paper-style rows (see DESIGN.md's experiment index);
//! * [`report`] — fixed-width table formatting.

pub mod experiments;
pub mod loader;
pub mod queries;
pub mod report;
pub mod spec;
pub mod strategy;

pub use loader::{load, BranchRole, LoadReport};
pub use spec::WorkloadSpec;
pub use strategy::Strategy;
