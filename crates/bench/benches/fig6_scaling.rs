//! Criterion bench for Figure 6 (§5.1): Q1 and Q4 latency on the flat
//! strategy as the branch count scales. `decibel-bench fig6a`/`fig6b`
//! print the full paper-style table; this bench tracks the same cells at
//! a fixed small scale for regression monitoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decibel_bench::experiments::build_loaded;
use decibel_bench::queries::{all_heads, pick_branch, q1, q4, Pick};
use decibel_bench::{Strategy, WorkloadSpec};
use decibel_common::rng::DetRng;
use decibel_core::types::EngineKind;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for &branches in &[10usize, 50] {
        let total = 4_000u64;
        let mut spec = WorkloadSpec::scaled(Strategy::Flat, branches, 0.2);
        spec.ops_per_branch = (total / branches as u64).max(20);
        for kind in EngineKind::headline() {
            let dir = tempfile::tempdir().unwrap();
            let (store, report) = build_loaded(kind, &spec, dir.path()).unwrap();
            let mut rng = DetRng::seed_from_u64(7);
            let child = pick_branch(&report, Pick::FlatChild, &mut rng).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("q1_{}", kind.label()), branches),
                &branches,
                |b, _| b.iter(|| q1(store.as_ref(), child.into(), true).unwrap().rows),
            );
            let heads = all_heads(store.as_ref());
            group.bench_with_input(
                BenchmarkId::new(format!("q4_{}", kind.label()), branches),
                &branches,
                |b, _| b.iter(|| q4(store.as_ref(), &heads, true).unwrap().rows),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
