//! Criterion bench for Tables 6 & 7 (§5.7): the full git-vs-Decibel
//! comparison run (deep structure) at small scale. One iteration = one
//! complete load + repack + checkout-sampling run, so the per-iteration
//! time tracks the end-to-end cost the paper tabulates.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use decibel_bench::experiments::gitcmp::{run_decibel, run_git, GitCmpParams};
use gitlike::table::{TableEncoding, TableLayout};

fn bench_table6(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_git");
    group.sample_size(10);
    let p = GitCmpParams {
        records: 400,
        commits: 10,
        update_pct: 0,
        cols: 8,
    };
    for (label, layout, encoding) in [
        (
            "git_1file_bin",
            Some(TableLayout::OneFile),
            TableEncoding::Binary,
        ),
        (
            "git_1file_csv",
            Some(TableLayout::OneFile),
            TableEncoding::Csv,
        ),
        (
            "git_tup_bin",
            Some(TableLayout::FilePerTuple),
            TableEncoding::Binary,
        ),
        ("decibel_hy", None, TableEncoding::Binary),
    ] {
        group.bench_with_input(BenchmarkId::new("run", label), &label, |b, _| {
            b.iter_batched(
                tempfile::tempdir,
                |dir| {
                    let dir = dir.unwrap();
                    let row = match layout {
                        Some(l) => run_git(l, encoding, &p, dir.path()).unwrap(),
                        None => run_decibel(&p, dir.path()).unwrap(),
                    };
                    drop(dir);
                    row.data_bytes
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
