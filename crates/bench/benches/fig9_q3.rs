//! Criterion bench for Figure 9 (§5.2): Q3 multi-version primary-key joins
//! between the paper's version pairs, per engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decibel_bench::experiments::build_loaded;
use decibel_bench::experiments::queries::PAIR_CASES;
use decibel_bench::queries::{pick_branch, q3};
use decibel_bench::WorkloadSpec;
use decibel_common::rng::DetRng;
use decibel_core::types::EngineKind;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_q3");
    group.sample_size(10);
    for &(label, strategy, left, right) in &PAIR_CASES {
        let spec = WorkloadSpec::scaled(strategy, 10, 0.2);
        for kind in EngineKind::headline() {
            let dir = tempfile::tempdir().unwrap();
            let (store, report) = build_loaded(kind, &spec, dir.path()).unwrap();
            let mut rng = DetRng::seed_from_u64(17);
            let l = pick_branch(&report, left, &mut rng).unwrap();
            let r = pick_branch(&report, right, &mut rng).unwrap();
            group.bench_with_input(BenchmarkId::new(kind.label(), label), &label, |b, _| {
                b.iter(|| q3(store.as_ref(), l.into(), r.into(), true).unwrap().rows)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
