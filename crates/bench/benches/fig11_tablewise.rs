//! Criterion bench for Figure 11 (§5.5): Q1 latency before and after a
//! table-wise update, per engine (deep strategy shown; the harness prints
//! all four strategies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decibel_bench::experiments::build_loaded;
use decibel_bench::experiments::tablewise::table_wise_update;
use decibel_bench::queries::{pick_branch, q1, Pick};
use decibel_bench::{Strategy, WorkloadSpec};
use decibel_common::rng::DetRng;
use decibel_core::types::EngineKind;

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_tablewise");
    group.sample_size(10);
    let spec = WorkloadSpec::scaled(Strategy::Deep, 10, 0.2);
    for kind in EngineKind::headline() {
        let dir = tempfile::tempdir().unwrap();
        let (mut store, report) = build_loaded(kind, &spec, dir.path()).unwrap();
        let mut rng = DetRng::seed_from_u64(3);
        let target = pick_branch(&report, Pick::DeepTail, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new(kind.label(), "pre"), &kind, |b, _| {
            b.iter(|| q1(store.as_ref(), target.into(), true).unwrap().rows)
        });
        table_wise_update(store.as_mut(), target, spec.cols, 99).unwrap();
        group.bench_with_input(BenchmarkId::new(kind.label(), "post"), &kind, |b, _| {
            b.iter(|| q1(store.as_ref(), target.into(), true).unwrap().rows)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
