//! Criterion bench for Table 5 (§5.6): full build (load) time per strategy
//! and engine at a small fixed scale.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use decibel_bench::experiments::build_store;
use decibel_bench::loader::load;
use decibel_bench::{Strategy, WorkloadSpec};
use decibel_core::types::EngineKind;

fn bench_table5(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_load");
    group.sample_size(10);
    for strategy in Strategy::all() {
        let spec = WorkloadSpec::scaled(strategy, 10, 0.1);
        for kind in EngineKind::headline() {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), strategy.label()),
                &kind,
                |b, _| {
                    b.iter_batched(
                        || {
                            let dir = tempfile::tempdir().unwrap();
                            let store = build_store(kind, &spec, dir.path()).unwrap();
                            (dir, store)
                        },
                        |(dir, mut store)| {
                            let report = load(store.as_mut(), &spec).unwrap();
                            drop(store);
                            drop(dir);
                            report.inserts
                        },
                        BatchSize::PerIteration,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
