//! Criterion bench for Table 3 (§5.4): merge cost per engine and policy.
//!
//! Each iteration creates a fresh fork pair with divergent modifications
//! and merges it (merges mutate the store, so setup happens per batch).
//! The harness (`decibel-bench table3`) reports the aggregate MB/s over
//! the curation build's ~dozens of merges.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use decibel_bench::experiments::build_store;
use decibel_bench::{Strategy, WorkloadSpec};
use decibel_common::ids::BranchId;
use decibel_common::record::Record;
use decibel_common::rng::DetRng;
use decibel_core::store::VersionedStore;
use decibel_core::types::{EngineKind, MergePolicy};

fn setup(
    kind: EngineKind,
    spec: &WorkloadSpec,
    tag: u64,
) -> (tempfile::TempDir, Box<dyn VersionedStore>, BranchId) {
    let dir = tempfile::tempdir().unwrap();
    let mut store = build_store(kind, spec, dir.path()).unwrap();
    let mut rng = DetRng::seed_from_u64(tag);
    for k in 0..400u64 {
        let fields = (0..spec.cols).map(|_| rng.next_u32() as u64).collect();
        store
            .insert(BranchId::MASTER, Record::new(k, fields))
            .unwrap();
    }
    let dev = store.create_branch("dev", BranchId::MASTER.into()).unwrap();
    // Divergent updates on both sides plus fresh inserts on dev.
    for k in 0..100u64 {
        let fields = (0..spec.cols).map(|_| rng.next_u32() as u64).collect();
        store
            .update(BranchId::MASTER, Record::new(k, fields))
            .unwrap();
    }
    for k in 50..150u64 {
        let fields = (0..spec.cols).map(|_| rng.next_u32() as u64).collect();
        store.update(dev, Record::new(k, fields)).unwrap();
    }
    for k in 400..450u64 {
        let fields = (0..spec.cols).map(|_| rng.next_u32() as u64).collect();
        store.insert(dev, Record::new(k, fields)).unwrap();
    }
    (dir, store, dev)
}

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_merge");
    group.sample_size(10);
    let spec = WorkloadSpec::scaled(Strategy::Curation, 10, 0.2);
    for kind in [
        EngineKind::VersionFirst,
        EngineKind::TupleFirstBranch,
        EngineKind::Hybrid,
    ] {
        for (policy_label, policy) in [
            ("two-way", MergePolicy::TwoWay { prefer_left: false }),
            ("three-way", MergePolicy::ThreeWay { prefer_left: false }),
        ] {
            group.bench_with_input(
                BenchmarkId::new(policy_label, kind.label()),
                &kind,
                |b, _| {
                    b.iter_batched(
                        || setup(kind, &spec, 101),
                        |(dir, mut store, dev)| {
                            let res = store.merge(BranchId::MASTER, dev, policy).unwrap();
                            drop(store);
                            drop(dir);
                            res.records_changed
                        },
                        BatchSize::PerIteration,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
