//! Criterion bench for Figure 7 (§5.2): Q1 single-branch scans across the
//! four branching strategies and three engines (plus clustered TF via
//! `decibel-bench fig7`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decibel_bench::experiments::build_loaded;
use decibel_bench::queries::{pick_branch, q1, Pick};
use decibel_bench::{Strategy, WorkloadSpec};
use decibel_common::rng::DetRng;
use decibel_core::types::EngineKind;

fn pick_for(strategy: Strategy) -> Pick {
    match strategy {
        Strategy::Deep => Pick::DeepTail,
        Strategy::Flat => Pick::FlatChild,
        Strategy::Science => Pick::SciYoungest,
        Strategy::Curation => Pick::CurDev,
    }
}

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_q1");
    group.sample_size(10);
    for strategy in Strategy::all() {
        let spec = WorkloadSpec::scaled(strategy, 10, 0.2);
        for kind in EngineKind::headline() {
            let dir = tempfile::tempdir().unwrap();
            let (store, report) = build_loaded(kind, &spec, dir.path()).unwrap();
            let mut rng = DetRng::seed_from_u64(11);
            let target = pick_branch(&report, pick_for(strategy), &mut rng).unwrap();
            group.bench_with_input(
                BenchmarkId::new(kind.label(), strategy.label()),
                &strategy,
                |b, _| b.iter(|| q1(store.as_ref(), target.into(), true).unwrap().rows),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
