//! Criterion bench for Table 2 (§5.3): commit creation and checkout
//! latency for tuple-first vs hybrid on a loaded curation dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decibel_bench::experiments::build_loaded;
use decibel_bench::{Strategy, WorkloadSpec};
use decibel_common::ids::CommitId;
use decibel_common::record::Record;
use decibel_common::rng::DetRng;
use decibel_core::types::EngineKind;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_commit");
    group.sample_size(10);
    let spec = WorkloadSpec::scaled(Strategy::Curation, 10, 0.2);
    for kind in [EngineKind::TupleFirstBranch, EngineKind::Hybrid] {
        let dir = tempfile::tempdir().unwrap();
        let (store, _report) = build_loaded(kind, &spec, dir.path()).unwrap();
        let mut rng = DetRng::seed_from_u64(21);
        let mut next_key = 1u64 << 40;
        group.bench_with_input(BenchmarkId::new("commit", kind.label()), &kind, |b, _| {
            b.iter(|| {
                // A handful of fresh ops, then the timed commit.
                for _ in 0..5 {
                    let fields = (0..spec.cols).map(|_| rng.next_u32() as u64).collect();
                    store
                        .insert(
                            decibel_common::ids::BranchId::MASTER,
                            Record::new(next_key, fields),
                        )
                        .unwrap();
                    next_key += 1;
                }
                store.commit(decibel_common::ids::BranchId::MASTER).unwrap()
            })
        });
        let n = store.graph().num_commits();
        group.bench_with_input(BenchmarkId::new("checkout", kind.label()), &kind, |b, _| {
            b.iter(|| {
                let target = CommitId(rng.below(n));
                store.checkout_version(target).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
