//! Criterion bench for Figure 10 (§5.2): Q4 head scans (all branches,
//! non-selective predicate) per strategy and engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decibel_bench::experiments::build_loaded;
use decibel_bench::queries::{all_heads, q4};
use decibel_bench::{Strategy, WorkloadSpec};
use decibel_core::types::EngineKind;

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_q4");
    group.sample_size(10);
    for strategy in Strategy::all() {
        let spec = WorkloadSpec::scaled(strategy, 10, 0.2);
        for kind in EngineKind::headline() {
            let dir = tempfile::tempdir().unwrap();
            let (store, _report) = build_loaded(kind, &spec, dir.path()).unwrap();
            let heads = all_heads(store.as_ref());
            group.bench_with_input(
                BenchmarkId::new(kind.label(), strategy.label()),
                &strategy,
                |b, _| b.iter(|| q4(store.as_ref(), &heads, true).unwrap().rows),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
