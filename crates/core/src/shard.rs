//! Branch-sharded commit locks.
//!
//! The sharded commit path (see the [`db`](crate::db) module docs) lets
//! commits to *disjoint* branches run their apply/prepare work
//! concurrently while commits to the *same* branch still serialize. The
//! unit of exclusion is a [`ShardSet`]: a fixed pool of reader-writer
//! locks, with each branch hashed onto one of them. Two branches on the
//! same shard falsely conflict (they serialize even though they are
//! disjoint), which is harmless for correctness and rare for realistic
//! branch counts; two branches on different shards never contend.
//!
//! The lock hierarchy (outermost first) is: store lock (shared for
//! commits, exclusive for admin/flush) → shard lock → the WAL/graph
//! sequencing mutex → engine-internal structure locks. Shard locks are
//! always acquired while holding the store lock in *shared* mode, so any
//! path that takes the store lock exclusively ([`Database::flush`],
//! branch/merge admin operations) has automatically quiesced every shard.
//! [`ShardSet::quiesce`] additionally acquires every shard write lock in
//! fixed index order, for callers that must pin all shards without the
//! store-exclusive shortcut.

use decibel_common::ids::BranchId;
use decibel_common::record::Record;
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of commit-lock shards. Branches hash onto shards by
/// `branch % SHARDS`, so up to this many disjoint-branch commits can be in
/// their critical sections at once. A small fixed power of two keeps the
/// set allocation-free and the quiesce order trivial.
pub const SHARDS: usize = 32;

/// A fixed pool of per-branch commit locks (hash-sharded by branch id).
///
/// The [`Database`](crate::db::Database) owns one `ShardSet`; its commit
/// path takes the writing branch's shard lock exclusively around apply +
/// prepare + sequence, so disjoint branches (different shards) overlap and
/// same-branch commits serialize.
pub struct ShardSet {
    locks: Vec<RwLock<()>>,
}

impl Default for ShardSet {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardSet {
    /// Creates the full shard pool.
    pub fn new() -> ShardSet {
        ShardSet {
            locks: (0..SHARDS).map(|_| RwLock::new(())).collect(),
        }
    }

    /// The shard index `branch` hashes to.
    pub fn shard_of(&self, branch: BranchId) -> usize {
        branch.raw() as usize % self.locks.len()
    }

    /// Exclusive commit lock for `branch`'s shard: held by a committing
    /// session across apply, prepare, and sequencing.
    pub fn write(&self, branch: BranchId) -> RwLockWriteGuard<'_, ()> {
        self.locks[self.shard_of(branch)].write()
    }

    /// Non-blocking [`ShardSet::write`]: `None` when the shard is
    /// currently held. The commit path probes with this first so it can
    /// count contended acquisitions before falling back to blocking.
    pub fn try_write(&self, branch: BranchId) -> Option<RwLockWriteGuard<'_, ()>> {
        self.locks[self.shard_of(branch)].try_write()
    }

    /// Shared lock for `branch`'s shard: held by readers that need a
    /// commit-free snapshot of the branch head (non-session queries).
    pub fn read(&self, branch: BranchId) -> RwLockReadGuard<'_, ()> {
        self.locks[self.shard_of(branch)].read()
    }

    /// Shared locks for several branches' shards, acquired in ascending
    /// shard order (deduplicated) so concurrent quiescers cannot deadlock.
    pub fn read_many(&self, branches: &[BranchId]) -> Vec<RwLockReadGuard<'_, ()>> {
        let mut shards: Vec<usize> = branches.iter().map(|&b| self.shard_of(b)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards.into_iter().map(|s| self.locks[s].read()).collect()
    }

    /// Acquires *every* shard write lock in fixed (index) order, blocking
    /// out all committers — the checkpoint/shutdown quiesce step. Holding
    /// the returned guards guarantees no commit is inside its critical
    /// section, so the id watermark (`next_txn - 1`) is torn-free.
    pub fn quiesce(&self) -> Vec<RwLockWriteGuard<'_, ()>> {
        self.locks.iter().map(|l| l.write()).collect()
    }
}

/// One buffered session write, in the shape the commit path applies to an
/// engine (see [`VersionedStore::apply_ops`](crate::store::VersionedStore::apply_ops)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOp {
    /// Insert a new record.
    Insert(Record),
    /// Replace the live copy of the record's key.
    Update(Record),
    /// Remove a key.
    Delete(u64),
}

/// An engine's commit snapshot, built under the shard lock *before* the
/// global sequencing section.
///
/// `prepare_commit` does the per-branch heavy lifting (bitmap snapshot,
/// commit-store append) concurrently with other shards;
/// `finalize_commit` then consumes the token inside the sequencing
/// critical section to stamp the commit into the shared version graph in
/// transaction-id order. The payload is engine-private: a list of
/// `(slot, ordinal)` pairs locating the prepared snapshot(s).
#[derive(Debug)]
pub struct PreparedCommit(pub Vec<(u64, u64)>);
