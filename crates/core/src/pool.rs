//! A persistent work-stealing pool for parallel segment scans.
//!
//! The hybrid engine's branch-segment bitmap "allows for parallelization
//! of segment scanning" (§3.4). Earlier revisions realized that with
//! crossbeam scoped threads spawned *per call* and a fixed
//! `chunks(n / threads)` split of the segment list — so every scan paid
//! thread spawn/join, and a skewed segment-size distribution serialized on
//! whichever thread drew the largest chunk. This pool fixes both: workers
//! are spawned once per engine and parked between calls, and scans submit
//! one task per *segment* to a work-stealing deque (`crossbeam::deque`),
//! so idle workers steal the tail of a skewed distribution instead of
//! waiting it out.
//!
//! [`ScanPool::run`] is scoped: tasks may borrow from the caller's stack
//! (the engine's segments, a scan plan) because `run` does not return
//! until every submitted task has completed — the same guarantee
//! `std::thread::scope` provides, enforced here with a completion latch.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};

/// A type-erased, lifetime-erased task. Safety: see [`ScanPool::run`].
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    shutdown: AtomicBool,
    /// Wakeup channel for parked workers: the generation counter bumps on
    /// every submission batch and on shutdown.
    gen: Mutex<u64>,
    wake: Condvar,
}

impl Shared {
    /// Steals one job from the injector or any sibling deque. `Retry`
    /// outcomes (contention races in the real lock-free crossbeam deques;
    /// never produced by the mutex shim) are looped on, per the
    /// crossbeam-deque contract — treating `Retry` as "empty" could strand
    /// queued jobs behind a waiting caller.
    fn find_job(&self, skip: Option<usize>) -> Option<Job> {
        loop {
            let mut contended = false;
            match self.injector.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Retry => contended = true,
                Steal::Empty => {}
            }
            for (i, stealer) in self.stealers.iter().enumerate() {
                if Some(i) == skip {
                    continue;
                }
                match stealer.steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Retry => contended = true,
                    Steal::Empty => {}
                }
            }
            if !contended {
                return None;
            }
        }
    }

    fn notify(&self) {
        let mut gen = self.gen.lock().unwrap();
        *gen += 1;
        drop(gen);
        self.wake.notify_all();
    }
}

/// Tracks outstanding tasks of one `run` batch.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().unwrap() == 0
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap();
        while *left > 0 {
            left = self.done.wait(left).unwrap();
        }
    }
}

/// A fixed set of worker threads executing scan tasks, sized once per
/// engine and reused across every `par_multi_scan` call.
pub struct ScanPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ScanPool {
    /// Creates a pool with `threads` workers. Zero workers is valid: the
    /// calling thread of [`ScanPool::run`] always participates, so a
    /// zero-worker pool executes batches inline with no cross-thread
    /// traffic — the right configuration on single-core machines.
    pub fn new(threads: usize) -> ScanPool {
        let deques: Vec<Worker<Job>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            gen: Mutex::new(0),
            wake: Condvar::new(),
        });
        let workers = deques
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("decibel-scan-{i}"))
                    .spawn(move || worker_loop(i, local, shared))
                    .expect("spawning scan worker")
            })
            .collect();
        ScanPool { shared, workers }
    }

    /// Default worker count: the machine's available parallelism minus the
    /// calling thread (which executes tasks too while it waits), so a scan
    /// never runs more executors than cores. Zero on single-core machines.
    pub fn default_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get() - 1)
            .unwrap_or(1)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs every task to completion, in the pool plus the calling thread,
    /// and returns their results in task order. Panics from tasks are
    /// resumed on the caller.
    ///
    /// Tasks may borrow the caller's stack (`'env` outlives this call but
    /// not `'static`): the lifetime is erased when the task is queued, which
    /// is sound because this function blocks on a completion latch until
    /// every queued task has run — no task can outlive the borrowed data.
    pub fn run<'env, T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send + 'env,
        T: Send + 'env,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let latch = Latch::new(n);
        let results: Vec<Mutex<Option<std::thread::Result<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        {
            let latch = &latch;
            let results = &results;
            for (i, task) in tasks.into_iter().enumerate() {
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(task));
                    *results[i].lock().unwrap() = Some(outcome);
                    latch.count_down();
                });
                // SAFETY: the latch wait below keeps every borrow in `job`
                // alive until the job has finished executing.
                let job: Job = unsafe { std::mem::transmute(job) };
                self.shared.injector.push(job);
            }
        }
        self.shared.notify();
        // The caller participates instead of blocking: with one task or a
        // single-core pool this degrades gracefully to inline execution.
        while !latch.is_done() {
            match self.shared.find_job(None) {
                Some(job) => job(),
                None => latch.wait(),
            }
        }
        results
            .into_iter()
            .map(|cell| {
                match cell
                    .into_inner()
                    .unwrap()
                    .expect("scan task completed without storing a result")
                {
                    Ok(v) => v,
                    Err(panic) => resume_unwind(panic),
                }
            })
            .collect()
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.notify();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// How many extra jobs a worker moves from the injector into its local
/// deque per refill. Keeping a small local run lets siblings steal the
/// surplus instead of contending on the injector for every job.
const REFILL_BATCH: usize = 4;

/// Takes one job to run now plus up to `REFILL_BATCH` more into `local`
/// for this worker (or a stealing sibling) to consume next.
fn refill(local: &Worker<Job>, shared: &Shared) -> Option<Job> {
    let first = loop {
        match shared.injector.steal() {
            Steal::Success(job) => break job,
            Steal::Retry => continue,
            Steal::Empty => return None,
        }
    };
    for _ in 0..REFILL_BATCH {
        match shared.injector.steal() {
            Steal::Success(job) => local.push(job),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    Some(first)
}

fn worker_loop(index: usize, local: Worker<Job>, shared: Arc<Shared>) {
    loop {
        let job = local
            .pop()
            .or_else(|| refill(&local, &shared))
            .or_else(|| shared.find_job(Some(index)));
        match job {
            Some(job) => job(),
            None => {
                let mut gen = shared.gen.lock().unwrap();
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Re-check under the lock: a batch submitted between the
                // failed steal above and acquiring the lock must not be
                // slept through (`notify` bumps the generation under this
                // lock, after its pushes).
                if !shared.injector.is_empty() {
                    continue;
                }
                let seen = *gen;
                while *gen == seen && !shared.shutdown.load(Ordering::SeqCst) {
                    gen = shared.wake.wait(gen).unwrap();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_borrowing_tasks_in_order() {
        let pool = ScanPool::new(3);
        let data = [10u64, 20, 30, 40, 50, 60, 70];
        let tasks: Vec<_> = data.iter().map(|&x| move || x * 2).collect();
        assert_eq!(pool.run(tasks), vec![20, 40, 60, 80, 100, 120, 140]);
        // The pool is reusable: a second batch sees fresh results.
        let tasks: Vec<_> = data.iter().map(|&x| move || x + 1).collect();
        assert_eq!(pool.run(tasks), vec![11, 21, 31, 41, 51, 61, 71]);
    }

    #[test]
    fn skewed_tasks_complete() {
        let pool = ScanPool::new(2);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..64usize)
            .map(|i| {
                let counter = &counter;
                move || {
                    // One task much heavier than the rest.
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    counter.fetch_add(1, Ordering::SeqCst) + i - i
                }
            })
            .collect();
        let out = pool.run(tasks);
        assert_eq!(out.len(), 64);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn empty_batch_is_noop() {
        let pool = ScanPool::new(1);
        let out: Vec<u32> = pool.run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = ScanPool::new(0);
        assert_eq!(pool.threads(), 0);
        let caller = std::thread::current().id();
        let out = pool.run(vec![move || std::thread::current().id() == caller; 5]);
        assert_eq!(out, vec![true; 5]);
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let pool = ScanPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| 1u32) as Box<dyn FnOnce() -> u32 + Send>,
                Box::new(|| panic!("scan task boom")),
            ])
        }));
        assert!(result.is_err());
        // The pool survives a panicking batch.
        assert_eq!(pool.run(vec![|| 7u32]), vec![7]);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ScanPool::new(4);
        assert_eq!(pool.threads(), 4);
        drop(pool); // must not hang
    }
}
