//! Row predicates.

use decibel_common::record::Record;

/// A boolean expression over a record's key and data columns.
///
/// Kept deliberately first-order (no subqueries): the paper pushes scans,
/// diffs and joins into the storage layer and leaves general SQL to the
/// query planner above it (§2.1); predicates are what the storage layer
/// itself evaluates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true (the paper's Q4 uses "a very non-selective predicate").
    True,
    /// Key equality.
    KeyEq(u64),
    /// Key in `[lo, hi)`.
    KeyRange(u64, u64),
    /// Column equals a constant.
    ColEq(usize, u64),
    /// Column not equal to a constant.
    ColNe(usize, u64),
    /// Column strictly less than a constant.
    ColLt(usize, u64),
    /// Column greater than or equal to a constant.
    ColGe(usize, u64),
    /// Column value modulo `m` equals `r` — handy for calibrated
    /// selectivities in benchmarks.
    ColMod(usize, u64, u64),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Default for Predicate {
    /// The vacuous filter.
    fn default() -> Self {
        Predicate::True
    }
}

impl Predicate {
    /// Collects the data-column indexes the predicate reads into `out`
    /// (key comparisons contribute nothing) — the planner's input for
    /// computing a scan's required column set.
    pub fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Predicate::True | Predicate::KeyEq(_) | Predicate::KeyRange(_, _) => {}
            Predicate::ColEq(c, _)
            | Predicate::ColNe(c, _)
            | Predicate::ColLt(c, _)
            | Predicate::ColGe(c, _)
            | Predicate::ColMod(c, _, _) => out.push(*c),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(a) => a.collect_columns(out),
        }
    }

    /// Evaluates the predicate against a record.
    pub fn eval(&self, r: &Record) -> bool {
        match self {
            Predicate::True => true,
            Predicate::KeyEq(k) => r.key() == *k,
            Predicate::KeyRange(lo, hi) => (*lo..*hi).contains(&r.key()),
            Predicate::ColEq(c, v) => r.field(*c) == *v,
            Predicate::ColNe(c, v) => r.field(*c) != *v,
            Predicate::ColLt(c, v) => r.field(*c) < *v,
            Predicate::ColGe(c, v) => r.field(*c) >= *v,
            Predicate::ColMod(c, m, rem) => r.field(*c) % *m == *rem,
            Predicate::And(a, b) => a.eval(r) && b.eval(r),
            Predicate::Or(a, b) => a.eval(r) || b.eval(r),
            Predicate::Not(a) => !a.eval(r),
        }
    }

    /// Convenience conjunction.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Convenience disjunction.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Convenience negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Record {
        Record::new(42, vec![10, 20, 30])
    }

    #[test]
    fn atoms() {
        let r = rec();
        assert!(Predicate::True.eval(&r));
        assert!(Predicate::KeyEq(42).eval(&r));
        assert!(!Predicate::KeyEq(41).eval(&r));
        assert!(Predicate::KeyRange(40, 43).eval(&r));
        assert!(!Predicate::KeyRange(43, 50).eval(&r));
        assert!(Predicate::ColEq(1, 20).eval(&r));
        assert!(Predicate::ColNe(1, 21).eval(&r));
        assert!(Predicate::ColLt(0, 11).eval(&r));
        assert!(!Predicate::ColLt(0, 10).eval(&r));
        assert!(Predicate::ColGe(2, 30).eval(&r));
        assert!(Predicate::ColMod(0, 5, 0).eval(&r));
        assert!(!Predicate::ColMod(0, 7, 0).eval(&r));
    }

    #[test]
    fn combinators() {
        let r = rec();
        assert!(Predicate::KeyEq(42).and(Predicate::ColEq(0, 10)).eval(&r));
        assert!(!Predicate::KeyEq(42).and(Predicate::ColEq(0, 11)).eval(&r));
        assert!(Predicate::KeyEq(0).or(Predicate::ColEq(0, 10)).eval(&r));
        assert!(Predicate::KeyEq(0).not().eval(&r));
    }
}
