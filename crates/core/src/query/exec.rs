//! Query execution against any [`VersionedStore`].

use decibel_common::hash::FxHashMap;
use decibel_common::ids::BranchId;
use decibel_common::record::Record;
use decibel_common::{DbError, Projection, Result};
use decibel_obs::{family, Counter, Histogram, Registry};

use crate::query::plan::ScanPlan;
use crate::query::{AggKind, Query};
use crate::store::VersionedStore;

/// Read-path instruments (the `scan` metric family), shared by the
/// materializing executor and the chunked cursors.
///
/// `rows_scanned` counts rows the engine pipelines yielded to the query
/// layer (candidates that survived page-level filtering, including rows a
/// later liveness/overlay check drops); `rows_emitted` counts rows actually
/// returned to the caller. Their ratio is the post-pipeline selectivity;
/// `selectivity_pct` records it per materialized query. Counting happens in
/// per-query locals and is flushed to the shared counters once per query
/// (or once per cursor chunk), so the per-row cost is a register increment.
#[derive(Clone)]
pub struct ScanMetrics {
    pub(crate) queries: Counter,
    pub(crate) rows_scanned: Counter,
    pub(crate) rows_emitted: Counter,
    pub(crate) plans_pushdown: Counter,
    pub(crate) plans_full_decode: Counter,
    pub(crate) query_us: Histogram,
    pub(crate) selectivity_pct: Histogram,
}

impl ScanMetrics {
    /// Registers the scan-family instruments in `metrics`.
    pub fn register(metrics: &Registry) -> ScanMetrics {
        ScanMetrics {
            queries: metrics.counter(family::SCAN, "queries"),
            rows_scanned: metrics.counter(family::SCAN, "rows_scanned"),
            rows_emitted: metrics.counter(family::SCAN, "rows_emitted"),
            plans_pushdown: metrics.counter(family::SCAN, "plans_pushdown"),
            plans_full_decode: metrics.counter(family::SCAN, "plans_full_decode"),
            query_us: metrics.histogram(family::SCAN, "query_us"),
            selectivity_pct: metrics.histogram(family::SCAN, "selectivity_pct"),
        }
    }

    /// Instruments bound to no registry — for callers executing queries
    /// outside a [`Database`](crate::db::Database) (engine-level tests,
    /// the benchmark's raw-store harness).
    pub fn detached() -> ScanMetrics {
        ScanMetrics {
            queries: Counter::detached(),
            rows_scanned: Counter::detached(),
            rows_emitted: Counter::detached(),
            plans_pushdown: Counter::detached(),
            plans_full_decode: Counter::detached(),
            query_us: Histogram::detached(),
            selectivity_pct: Histogram::detached(),
        }
    }

    /// Records which way a scan plan lowered (once per scan, at planning).
    pub(crate) fn plan_lowered(&self, pushdown: bool) {
        if pushdown {
            self.plans_pushdown.inc();
        } else {
            self.plans_full_decode.inc();
        }
    }

    /// Flushes one query's row tallies into the shared counters.
    fn finish_rows(&self, scanned: u64, emitted: u64) {
        self.rows_scanned.add(scanned);
        self.rows_emitted.add(emitted);
        if let Some(pct) = (emitted * 100).checked_div(scanned) {
            self.selectivity_pct.record(pct);
        }
    }
}

/// The result of executing a [`Query`].
#[derive(Debug, Clone)]
pub enum QueryOutput {
    /// Plain record rows (Q1, Q2).
    Records(Vec<Record>),
    /// Records annotated with their containing branches (Q4).
    Annotated(Vec<(Record, Vec<BranchId>)>),
    /// Joined record pairs (Q3).
    Joined(Vec<(Record, Record)>),
    /// A single aggregate value.
    Scalar(f64),
}

impl QueryOutput {
    /// Number of output rows (1 for scalars).
    pub fn len(&self) -> usize {
        match self {
            QueryOutput::Records(v) => v.len(),
            QueryOutput::Annotated(v) => v.len(),
            QueryOutput::Joined(v) => v.len(),
            QueryOutput::Scalar(_) => 1,
        }
    }

    /// True if no rows qualified.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unwraps plain records, panicking on other shapes (test helper).
    pub fn into_records(self) -> Vec<Record> {
        match self {
            QueryOutput::Records(v) => v,
            other => panic!("expected Records, got {other:?}"),
        }
    }
}

/// Executes a query against a store.
///
/// Scan-shaped queries (`ScanVersion`, `HeadScan`, `MultiBranchScan`,
/// `Aggregate`) route through the planned pipeline
/// ([`VersionedStore::scan_pipeline`]): fixed-width predicates are
/// evaluated against pinned page bytes and only the projected column set
/// is decoded. Aggregates project just the aggregated column (nothing at
/// all for `Count`).
pub fn execute(store: &dyn VersionedStore, query: &Query) -> Result<QueryOutput> {
    execute_metered(store, query, &ScanMetrics::detached())
}

/// [`execute`] with row/plan/latency tallies recorded in `m` — the path
/// behind [`Database::query`](crate::db::Database::query). Tallies are
/// accumulated in locals and flushed once per query.
pub fn execute_metered(
    store: &dyn VersionedStore,
    query: &Query,
    m: &ScanMetrics,
) -> Result<QueryOutput> {
    m.queries.inc();
    let span = m.query_us.start();
    let mut scanned = 0u64;
    let out = match query {
        Query::ScanVersion {
            version,
            predicate,
            projection,
        } => {
            projection.validate(store.schema())?;
            let plan = ScanPlan::new(predicate.clone(), projection.clone());
            m.plan_lowered(plan.page_predicate().is_some());
            let mut out = Vec::new();
            for item in store.scan_pipeline(*version, &plan, 0)? {
                let (_, rec) = item?;
                scanned += 1;
                out.push(rec);
            }
            QueryOutput::Records(out)
        }
        Query::PositiveDiff { left, right } => {
            QueryOutput::Records(store.diff(*left, *right)?.left_only)
        }
        Query::VersionJoin {
            left,
            right,
            predicate,
        } => {
            // Hash join on the primary key: build on the right version,
            // probe with the (filtered) left version — the shape the paper
            // uses for Q3 ("we perform a hash join ... and report the
            // intersection incrementally", §5.2).
            let mut build: FxHashMap<u64, Record> = FxHashMap::default();
            for item in store.scan(*right)? {
                let rec = item?;
                scanned += 1;
                build.insert(rec.key(), rec);
            }
            let mut out = Vec::new();
            for item in store.scan(*left)? {
                let rec = item?;
                scanned += 1;
                if predicate.eval(&rec) {
                    if let Some(other) = build.get(&rec.key()) {
                        out.push((rec, other.clone()));
                    }
                }
            }
            QueryOutput::Joined(out)
        }
        Query::HeadScan {
            predicate,
            active_only,
            projection,
        } => {
            projection.validate(store.schema())?;
            let branches: Vec<BranchId> = store
                .graph()
                .heads(*active_only)
                .into_iter()
                .map(|(b, _)| b)
                .collect();
            let plan = ScanPlan::new(predicate.clone(), projection.clone());
            m.plan_lowered(plan.page_predicate().is_some());
            let mut out = Vec::new();
            for item in store.multi_scan_pipeline(&branches, &plan, 0)? {
                let (_, rec, live) = item?;
                scanned += 1;
                if !live.is_empty() {
                    out.push((rec, live));
                }
            }
            QueryOutput::Annotated(out)
        }
        Query::MultiBranchScan {
            branches,
            predicate,
            parallel,
            projection,
        } => {
            projection.validate(store.schema())?;
            let plan = ScanPlan::new(predicate.clone(), projection.clone());
            if *parallel > 1 {
                // Fan the scan out over the engine's parallel path (the
                // hybrid engine's work-stealing per-segment scan; other
                // engines fall back to a materialized sequential scan).
                // This path decodes whole records; filter + project after.
                m.plan_lowered(false);
                let rows = store.par_multi_scan(branches, *parallel)?;
                scanned += rows.len() as u64;
                QueryOutput::Annotated(
                    rows.into_iter()
                        .filter(|(_, live)| !live.is_empty())
                        .filter_map(|(rec, live)| plan.apply(rec).map(|rec| (rec, live)))
                        .collect(),
                )
            } else {
                m.plan_lowered(plan.page_predicate().is_some());
                let mut out = Vec::new();
                for item in store.multi_scan_pipeline(branches, &plan, 0)? {
                    let (_, rec, live) = item?;
                    scanned += 1;
                    if !live.is_empty() {
                        out.push((rec, live));
                    }
                }
                QueryOutput::Annotated(out)
            }
        }
        Query::Aggregate {
            version,
            column,
            agg,
            predicate,
        } => {
            // Decode only the aggregated column — nothing at all for a
            // bare count (the predicate still sees every column through
            // the page-level evaluator).
            let projection = if *agg == AggKind::Count {
                Projection::of(&[])
            } else {
                if *column >= store.schema().num_columns() {
                    return Err(DbError::Invalid(format!(
                        "aggregate column {column} out of range"
                    )));
                }
                Projection::of(&[*column])
            };
            let plan = ScanPlan::new(predicate.clone(), projection);
            m.plan_lowered(plan.page_predicate().is_some());
            let mut count = 0u64;
            let mut sum = 0f64;
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for item in store.scan_pipeline(*version, &plan, 0)? {
                let (_, rec) = item?;
                count += 1;
                if *agg != AggKind::Count {
                    let v = rec.field(*column) as f64;
                    sum += v;
                    min = min.min(v);
                    max = max.max(v);
                }
            }
            scanned += count;
            let value = match agg {
                AggKind::Count => count as f64,
                AggKind::Sum => sum,
                AggKind::Min => {
                    if count == 0 {
                        f64::NAN
                    } else {
                        min
                    }
                }
                AggKind::Max => {
                    if count == 0 {
                        f64::NAN
                    } else {
                        max
                    }
                }
                AggKind::Avg => {
                    if count == 0 {
                        f64::NAN
                    } else {
                        sum / count as f64
                    }
                }
            };
            QueryOutput::Scalar(value)
        }
    };
    span.finish();
    m.finish_rows(scanned, out.len() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TupleFirstBranchEngine;
    use crate::query::Predicate;
    use crate::types::VersionRef;
    use decibel_common::ids::BranchId;
    use decibel_common::schema::{ColumnType, Schema};
    use decibel_pagestore::StoreConfig;

    fn store() -> (tempfile::TempDir, TupleFirstBranchEngine, BranchId) {
        let dir = tempfile::tempdir().unwrap();
        let mut eng = TupleFirstBranchEngine::init(
            dir.path().join("q"),
            Schema::new(2, ColumnType::U32),
            &StoreConfig::test_default(),
        )
        .unwrap();
        for k in 0..10u64 {
            eng.insert(BranchId::MASTER, Record::new(k, vec![k * 10, k % 3]))
                .unwrap();
        }
        let dev = eng.create_branch("dev", BranchId::MASTER.into()).unwrap();
        eng.insert(dev, Record::new(100, vec![1000, 0])).unwrap();
        eng.update(dev, Record::new(3, vec![999, 9])).unwrap();
        (dir, eng, dev)
    }

    #[test]
    fn q1_scan_with_predicate() {
        let (_d, eng, _) = store();
        let out = execute(
            &eng,
            &Query::ScanVersion {
                version: VersionRef::Branch(BranchId::MASTER),
                predicate: Predicate::ColEq(1, 0),
                projection: Projection::all(),
            },
        )
        .unwrap();
        // Keys with k % 3 == 0: 0, 3, 6, 9.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn q2_positive_diff() {
        let (_d, eng, dev) = store();
        let out = execute(
            &eng,
            &Query::PositiveDiff {
                left: VersionRef::Branch(dev),
                right: VersionRef::Branch(BranchId::MASTER),
            },
        )
        .unwrap();
        let mut keys: Vec<u64> = out.into_records().iter().map(|r| r.key()).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![3, 100]);
    }

    #[test]
    fn q3_version_join() {
        let (_d, eng, dev) = store();
        let out = execute(
            &eng,
            &Query::VersionJoin {
                left: VersionRef::Branch(dev),
                right: VersionRef::Branch(BranchId::MASTER),
                predicate: Predicate::ColGe(0, 900),
            },
        )
        .unwrap();
        match out {
            QueryOutput::Joined(pairs) => {
                // Only key 3 passes the predicate on dev AND exists in
                // master (100 does not exist in master).
                assert_eq!(pairs.len(), 1);
                assert_eq!(pairs[0].0.key(), 3);
                assert_eq!(pairs[0].0.field(0), 999);
                assert_eq!(pairs[0].1.field(0), 30);
            }
            other => panic!("expected join output, got {other:?}"),
        }
    }

    #[test]
    fn q4_head_scan() {
        let (_d, eng, dev) = store();
        let out = execute(
            &eng,
            &Query::HeadScan {
                predicate: Predicate::True,
                active_only: true,
                projection: Projection::all(),
            },
        )
        .unwrap();
        match out {
            QueryOutput::Annotated(rows) => {
                // 9 unchanged records live in both branches, key 3 has two
                // distinct copies, key 100 in dev only: 12 rows.
                assert_eq!(rows.len(), 12);
                let both = rows.iter().filter(|(_, b)| b.len() == 2).count();
                assert_eq!(both, 9);
                let dev_only: Vec<u64> = rows
                    .iter()
                    .filter(|(_, b)| b == &vec![dev])
                    .map(|(r, _)| r.key())
                    .collect();
                assert_eq!(dev_only.len(), 2);
                assert!(dev_only.contains(&100));
                assert!(dev_only.contains(&3));
            }
            other => panic!("expected annotated output, got {other:?}"),
        }
    }

    #[test]
    fn aggregates() {
        let (_d, eng, _) = store();
        let v = VersionRef::Branch(BranchId::MASTER);
        let run = |agg, column| match execute(
            &eng,
            &Query::Aggregate {
                version: v,
                column,
                agg,
                predicate: Predicate::True,
            },
        )
        .unwrap()
        {
            QueryOutput::Scalar(x) => x,
            _ => unreachable!(),
        };
        assert_eq!(run(AggKind::Count, 0), 10.0);
        assert_eq!(run(AggKind::Sum, 0), 450.0);
        assert_eq!(run(AggKind::Min, 0), 0.0);
        assert_eq!(run(AggKind::Max, 0), 90.0);
        assert_eq!(run(AggKind::Avg, 0), 45.0);
    }

    #[test]
    fn aggregate_empty_set_is_nan() {
        let (_d, eng, _) = store();
        let out = execute(
            &eng,
            &Query::Aggregate {
                version: VersionRef::Branch(BranchId::MASTER),
                column: 0,
                agg: AggKind::Avg,
                predicate: Predicate::ColGe(0, 1_000_000),
            },
        )
        .unwrap();
        match out {
            QueryOutput::Scalar(x) => assert!(x.is_nan()),
            _ => unreachable!(),
        }
    }
}
