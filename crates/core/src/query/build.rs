//! The fluent query builder — the primary read surface of
//! [`Database`](crate::db::Database).
//!
//! Builders assemble the internal [`Query`] plan and execute it under the
//! database's shared read lock, so concurrent readers proceed in parallel.
//! [`MultiReadBuilder::parallel`] additionally requests *intra*-query
//! parallelism: the plan routes through
//! [`VersionedStore::par_multi_scan`](crate::store::VersionedStore::par_multi_scan)
//! (the hybrid engine's work-stealing per-segment scan) without any
//! downcasting.
//!
//! Each terminal is a single-statement **read-committed snapshot**:
//! transactions apply atomically under the store's write lock, so a
//! terminal never observes a partial transaction — but builders take no
//! branch-level 2PL lock, so two consecutive terminals may observe
//! different commits. For multi-statement reads that must be stable
//! against concurrent committers, use a
//! [`Session`](crate::session::Session), whose reads take the shared
//! branch lock.
//!
//! ```
//! use decibel_core::query::Predicate;
//! use decibel_core::{Database, EngineKind, VersionRef};
//! use decibel_common::ids::BranchId;
//! use decibel_common::record::Record;
//! use decibel_common::schema::{ColumnType, Schema};
//! use decibel_pagestore::StoreConfig;
//!
//! let dir = tempfile::tempdir().unwrap();
//! let db = Database::create(
//!     dir.path(),
//!     EngineKind::Hybrid,
//!     Schema::new(2, ColumnType::U32),
//!     &StoreConfig::default(),
//! )
//! .unwrap();
//! let mut session = db.session();
//! for k in 0..10u64 {
//!     session.insert(Record::new(k, vec![k, k % 2])).unwrap();
//! }
//! session.commit().unwrap();
//! let dev = session.branch("dev").unwrap();
//! session.insert(Record::new(100, vec![7, 1])).unwrap();
//! session.commit().unwrap();
//!
//! // Single-version read with a filter.
//! let evens = db
//!     .read(VersionRef::Branch(BranchId::MASTER))
//!     .filter(Predicate::ColEq(1, 0))
//!     .collect()
//!     .unwrap();
//! assert_eq!(evens.len(), 5);
//!
//! // Multi-branch annotated read, fanned out over 4 scan threads.
//! let rows = db
//!     .read_branches(&[BranchId::MASTER, dev])
//!     .parallel(4)
//!     .annotated()
//!     .unwrap();
//! assert_eq!(rows.len(), 11); // 10 shared rows + 1 dev-only row
//! assert!(rows.iter().any(|(r, live)| r.key() == 100 && live == &vec![dev]));
//! ```

use decibel_common::ids::BranchId;
use decibel_common::record::Record;
use decibel_common::{Projection, Result};

use crate::db::Database;
use crate::query::{execute, AggKind, Predicate, Query, QueryOutput};
use crate::store::VersionedStore;
use crate::types::VersionRef;

/// Combines filters: chaining `.filter(a).filter(b)` means `a AND b`.
fn and(current: Predicate, next: Predicate) -> Predicate {
    if matches!(current, Predicate::True) {
        next
    } else {
        Predicate::And(Box::new(current), Box::new(next))
    }
}

/// A fluent single-version read: created by
/// [`Database::read`](crate::db::Database::read), finished by a terminal
/// ([`collect`](ReadBuilder::collect), [`count`](ReadBuilder::count),
/// [`aggregate`](ReadBuilder::aggregate), [`minus`](ReadBuilder::minus),
/// [`join`](ReadBuilder::join)) that executes under the shared read lock.
#[must_use = "builders do nothing until a terminal method runs them"]
pub struct ReadBuilder<'a> {
    db: &'a Database,
    version: VersionRef,
    predicate: Predicate,
    projection: Projection,
}

impl<'a> ReadBuilder<'a> {
    pub(crate) fn new(db: &'a Database, version: VersionRef) -> Self {
        ReadBuilder {
            db,
            version,
            predicate: Predicate::True,
            projection: Projection::All,
        }
    }

    /// Adds a row filter (chained filters are ANDed).
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = and(self.predicate, predicate);
        self
    }

    /// Restricts [`collect`](ReadBuilder::collect) to the given data
    /// columns: the scan decodes only those columns from page bytes, and
    /// non-projected fields of the returned records read `0`. Chained
    /// selects union. Filters still see every column (the predicate runs
    /// against raw page bytes before materialization); an out-of-range
    /// column fails the terminal with
    /// [`DbError::Invalid`](decibel_common::DbError::Invalid).
    pub fn select(mut self, cols: &[usize]) -> Self {
        self.projection = self.projection.narrow(cols);
        self
    }

    /// The internal plan this builder executes (the benchmark's Q1 shape).
    pub fn plan(self) -> Query {
        Query::ScanVersion {
            version: self.version,
            predicate: self.predicate,
            projection: self.projection,
        }
    }

    /// Materializes the qualifying records.
    pub fn collect(self) -> Result<Vec<Record>> {
        let db = self.db;
        match db.query(&self.plan())? {
            QueryOutput::Records(rows) => Ok(rows),
            _ => unreachable!("ScanVersion returns records"),
        }
    }

    /// Counts the qualifying records without materializing them.
    pub fn count(self) -> Result<u64> {
        let q = Query::Aggregate {
            version: self.version,
            column: 0,
            agg: AggKind::Count,
            predicate: self.predicate,
        };
        match self.db.query(&q)? {
            QueryOutput::Scalar(x) => Ok(x as u64),
            _ => unreachable!("Aggregate returns a scalar"),
        }
    }

    /// Runs a single aggregate over data column `column`.
    pub fn aggregate(self, column: usize, agg: AggKind) -> Result<f64> {
        let q = Query::Aggregate {
            version: self.version,
            column,
            agg,
            predicate: self.predicate,
        };
        match self.db.query(&q)? {
            QueryOutput::Scalar(x) => Ok(x),
            _ => unreachable!("Aggregate returns a scalar"),
        }
    }

    /// Positive diff (the benchmark's Q2): qualifying records of this
    /// version whose copy is not live in `right`.
    pub fn minus(self, right: impl Into<VersionRef>) -> Result<Vec<Record>> {
        let q = Query::PositiveDiff {
            left: self.version,
            right: right.into(),
        };
        let rows = match self.db.query(&q)? {
            QueryOutput::Records(rows) => rows,
            _ => unreachable!("PositiveDiff returns records"),
        };
        Ok(rows
            .into_iter()
            .filter(|r| self.predicate.eval(r))
            .collect())
    }

    /// Primary-key join against `right` (the benchmark's Q3); the filter
    /// applies to this (left) side.
    pub fn join(self, right: impl Into<VersionRef>) -> Result<Vec<(Record, Record)>> {
        let q = Query::VersionJoin {
            left: self.version,
            right: right.into(),
            predicate: self.predicate,
        };
        match self.db.query(&q)? {
            QueryOutput::Joined(pairs) => Ok(pairs),
            _ => unreachable!("VersionJoin returns pairs"),
        }
    }
}

/// Which branches a [`MultiReadBuilder`] scans.
pub(crate) enum BranchSel {
    /// An explicit branch list (the generalized Q4).
    Explicit(Vec<BranchId>),
    /// Every branch head, resolved at execution time under the same read
    /// lock as the scan (the paper's Q4).
    Heads {
        /// Restrict to non-retired branches.
        active_only: bool,
    },
}

/// A fluent multi-branch annotated read: created by
/// [`Database::read_branches`](crate::db::Database::read_branches) or
/// [`Database::read_heads`](crate::db::Database::read_heads).
#[must_use = "builders do nothing until a terminal method runs them"]
pub struct MultiReadBuilder<'a> {
    db: &'a Database,
    sel: BranchSel,
    predicate: Predicate,
    parallel: usize,
    projection: Projection,
}

impl<'a> MultiReadBuilder<'a> {
    pub(crate) fn new(db: &'a Database, sel: BranchSel) -> Self {
        MultiReadBuilder {
            db,
            sel,
            predicate: Predicate::True,
            parallel: 1,
            projection: Projection::All,
        }
    }

    /// Adds a row filter (chained filters are ANDed).
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = and(self.predicate, predicate);
        self
    }

    /// Restricts [`annotated`](MultiReadBuilder::annotated) to the given
    /// data columns — same semantics as
    /// [`ReadBuilder::select`](ReadBuilder::select). Branch annotations
    /// are computed before projection and are unaffected by it.
    pub fn select(mut self, cols: &[usize]) -> Self {
        self.projection = self.projection.narrow(cols);
        self
    }

    /// Requests intra-query parallelism: fan the scan out over up to
    /// `threads` workers (values ≤ 1 scan sequentially). Engines without a
    /// parallel scan fall back to the sequential path with identical
    /// results.
    pub fn parallel(mut self, threads: usize) -> Self {
        self.parallel = threads;
        self
    }

    /// Materializes the scan: every qualifying record annotated with the
    /// branches it is live in (the paper's Q4 output shape).
    pub fn annotated(self) -> Result<Vec<(Record, Vec<BranchId>)>> {
        let MultiReadBuilder {
            db,
            sel,
            predicate,
            parallel,
            projection,
        } = self;
        db.with_store(|store| {
            let branches = resolve(store, &sel);
            let q = Query::MultiBranchScan {
                branches,
                predicate,
                parallel,
                projection,
            };
            match execute(store, &q)? {
                QueryOutput::Annotated(rows) => Ok(rows),
                _ => unreachable!("MultiBranchScan returns annotated rows"),
            }
        })
    }

    /// Counts the qualifying (record, branch-set) rows by streaming the
    /// sequential scan with an empty projection (rows are counted, never
    /// decoded) — the [`parallel`](MultiReadBuilder::parallel) hint (which
    /// exists to parallelize materialization) does not apply here.
    pub fn count(self) -> Result<u64> {
        let MultiReadBuilder {
            db, sel, predicate, ..
        } = self;
        db.with_store(|store| {
            let branches = resolve(store, &sel);
            let plan = crate::query::plan::ScanPlan::new(predicate, Projection::of(&[]));
            let mut n = 0u64;
            for item in store.multi_scan_pipeline(&branches, &plan, 0)? {
                let (_, _, live) = item?;
                if !live.is_empty() {
                    n += 1;
                }
            }
            Ok(n)
        })
    }
}

fn resolve(store: &dyn VersionedStore, sel: &BranchSel) -> Vec<BranchId> {
    match sel {
        BranchSel::Explicit(branches) => branches.clone(),
        BranchSel::Heads { active_only } => store
            .graph()
            .heads(*active_only)
            .into_iter()
            .map(|(b, _)| b)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EngineKind;
    use decibel_common::schema::{ColumnType, Schema};
    use decibel_pagestore::StoreConfig;
    use std::sync::Arc;

    fn setup() -> (tempfile::TempDir, Arc<Database>, BranchId) {
        let dir = tempfile::tempdir().unwrap();
        let db = Database::create(
            dir.path().join("db"),
            EngineKind::Hybrid,
            Schema::new(2, ColumnType::U32),
            &StoreConfig::test_default(),
        )
        .unwrap();
        let mut s = db.session();
        for k in 0..20u64 {
            s.insert(Record::new(k, vec![k * 10, k % 4])).unwrap();
        }
        s.commit().unwrap();
        let dev = s.branch("dev").unwrap();
        s.update(Record::new(3, vec![999, 9])).unwrap();
        s.insert(Record::new(100, vec![1000, 0])).unwrap();
        s.commit().unwrap();
        (dir, db, dev)
    }

    #[test]
    fn filter_chaining_is_conjunction() {
        let (_d, db, _) = setup();
        let rows = db
            .read(VersionRef::Branch(BranchId::MASTER))
            .filter(Predicate::ColGe(0, 50))
            .filter(Predicate::ColEq(1, 0))
            .collect()
            .unwrap();
        // keys 8, 12, 16 (k*10 >= 50 and k % 4 == 0).
        let keys: Vec<u64> = rows.iter().map(|r| r.key()).collect();
        assert_eq!(keys, vec![8, 12, 16]);
    }

    #[test]
    fn count_and_aggregate_agree_with_collect() {
        let (_d, db, _) = setup();
        let b = || db.read(VersionRef::Branch(BranchId::MASTER));
        assert_eq!(b().count().unwrap(), 20);
        assert_eq!(b().collect().unwrap().len() as u64, b().count().unwrap());
        assert_eq!(b().aggregate(0, AggKind::Max).unwrap(), 190.0);
    }

    #[test]
    fn minus_is_positive_diff() {
        let (_d, db, dev) = setup();
        let mut keys: Vec<u64> = db
            .read(VersionRef::Branch(dev))
            .minus(BranchId::MASTER)
            .unwrap()
            .iter()
            .map(|r| r.key())
            .collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![3, 100]);
    }

    #[test]
    fn join_filters_left_side() {
        let (_d, db, dev) = setup();
        let pairs = db
            .read(VersionRef::Branch(dev))
            .filter(Predicate::ColGe(0, 900))
            .join(BranchId::MASTER)
            .unwrap();
        // Key 3 qualifies on dev and exists in master; key 100 does not
        // exist in master.
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0.field(0), 999);
        assert_eq!(pairs[0].1.field(0), 30);
    }

    #[test]
    fn parallel_annotated_matches_sequential() {
        let (_d, db, dev) = setup();
        let seq = db
            .read_branches(&[BranchId::MASTER, dev])
            .annotated()
            .unwrap();
        for threads in [2usize, 4, 16] {
            let par = db
                .read_branches(&[BranchId::MASTER, dev])
                .parallel(threads)
                .annotated()
                .unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn read_heads_covers_every_branch() {
        let (_d, db, dev) = setup();
        let rows = db.read_heads(true).parallel(4).annotated().unwrap();
        // 19 unchanged rows live in both, key 3 has two copies, key 100 in
        // dev only: 22 rows.
        assert_eq!(rows.len(), 22);
        assert!(rows
            .iter()
            .any(|(r, live)| r.key() == 100 && live == &vec![dev]));
    }
}
