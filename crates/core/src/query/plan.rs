//! Scan planning: column projection and page-level predicate pushdown.
//!
//! This module is the split between *planning* and *execution* on the read
//! path. A [`ScanPlan`] pairs the row filter with the column subset the
//! query materializes; [`PagePredicate`] is the filter lowered into a form
//! evaluable directly against pinned page bytes — fixed-width comparisons
//! read only the compared column's bytes per slot
//! ([`PinnedCursor::read_field`]) and produce word-aligned match bitmaps
//! that fuse straight into the liveness words driving a scan
//! ([`Bitmap::try_retain_words`](decibel_bitmap::Bitmap::try_retain_words)).
//!
//! # When pushdown applies
//!
//! Every predicate whose atoms compare the key or a fixed-width data
//! column against constants lowers ([`PagePredicate::lower`]); with the
//! current [`Predicate`] grammar that is *all* of them. The engines keep a
//! full-decode fallback (decode the record, [`Predicate::eval`], then
//! [`Record::project`]) for any future predicate shape `lower` declines —
//! the fallback is semantically the reference: the property tests assert
//! pushdown ≡ full-decode-then-filter-then-project on every engine.

use decibel_common::error::Result;
use decibel_common::projection::Projection;
use decibel_common::record::Record;
use decibel_pagestore::PinnedCursor;

use super::predicate::Predicate;

/// A planned scan: the row filter plus the column subset to materialize.
///
/// Built by the fluent builder (`db.read(v).select(&cols).filter(p)`) and
/// consumed by
/// [`VersionedStore::scan_pipeline`](crate::store::VersionedStore::scan_pipeline).
/// Non-projected fields of yielded records read as `0` (see [`Projection`]).
#[derive(Debug, Clone, Default)]
pub struct ScanPlan {
    /// Row filter, kept in source form for the full-decode fallback.
    pub predicate: Predicate,
    /// Columns the caller wants materialized.
    pub projection: Projection,
}

impl ScanPlan {
    /// Plans a scan filtering by `predicate` and materializing `projection`.
    pub fn new(predicate: Predicate, projection: Projection) -> ScanPlan {
        ScanPlan {
            predicate,
            projection,
        }
    }

    /// Plans a whole-record scan filtering by `predicate`.
    pub fn filter_only(predicate: Predicate) -> ScanPlan {
        ScanPlan::new(predicate, Projection::All)
    }

    /// Lowers the filter for page-level evaluation, or `None` when the
    /// engines must fall back to full decode.
    pub fn page_predicate(&self) -> Option<PagePredicate> {
        PagePredicate::lower(&self.predicate)
    }

    /// The columns a scan must decode per matching row: just the
    /// projection under pushdown (the predicate reads its columns off the
    /// page, not off the record), everything under fallback.
    pub fn decode_projection(&self) -> Projection {
        if self.page_predicate().is_some() {
            self.projection.clone()
        } else {
            Projection::All
        }
    }

    /// Reference semantics: full-decode filter-then-project. The engines'
    /// fallback path, and what the pushdown path must be equivalent to.
    pub fn apply(&self, mut record: Record) -> Option<Record> {
        if self.predicate.eval(&record) {
            record.project(&self.projection);
            Some(record)
        } else {
            None
        }
    }

    /// The engine-side lowering decision, made once per scan: under
    /// pushdown, filter chunks with `pred` and decode only `projection`;
    /// under fallback, decode everything and run the `residual` plan
    /// (filter + project) on each materialized record.
    pub fn lower(&self) -> LoweredPlan {
        match self.page_predicate() {
            Some(pred) => LoweredPlan {
                pred: Some(pred),
                projection: self.projection.clone(),
                residual: None,
            },
            None => LoweredPlan {
                pred: None,
                projection: Projection::All,
                residual: Some(self.clone()),
            },
        }
    }
}

/// A [`ScanPlan`] resolved into what an engine's scan loop needs — see
/// [`ScanPlan::lower`].
pub struct LoweredPlan {
    /// Page-level filter for the scan's chunk refinement (`None` under
    /// fallback: no page-level filtering, every live slot decodes).
    pub pred: Option<PagePredicate>,
    /// Columns the scan decodes per surviving slot.
    pub projection: Projection,
    /// `Some` under fallback: apply to each decoded record.
    pub residual: Option<ScanPlan>,
}

/// A row filter lowered for evaluation against pinned page bytes.
///
/// Column atoms read exactly one fixed-width field per slot
/// ([`PinnedCursor::read_field`]); key atoms read the 8-byte key. Nothing
/// is materialized: [`PagePredicate::eval_word`] turns 64 slots at a time
/// into a match word, and conjunctions narrow the candidate mask left to
/// right so the right side only ever touches slots the left side passed.
#[derive(Debug, Clone)]
pub enum PagePredicate {
    /// Matches every slot.
    True,
    /// Key equality.
    KeyEq(u64),
    /// Key in `[lo, hi)`.
    KeyRange(u64, u64),
    /// Column comparison against a constant.
    Col(usize, ColOp),
    /// Both sides match (right side sees only the left side's matches).
    And(Box<PagePredicate>, Box<PagePredicate>),
    /// Either side matches (right side sees only the left side's misses).
    Or(Box<PagePredicate>, Box<PagePredicate>),
    /// The inner predicate misses.
    Not(Box<PagePredicate>),
}

/// A fixed-width column comparison.
#[derive(Debug, Clone, Copy)]
pub enum ColOp {
    /// `col == v`
    Eq(u64),
    /// `col != v`
    Ne(u64),
    /// `col < v`
    Lt(u64),
    /// `col >= v`
    Ge(u64),
    /// `col % m == r`
    Mod(u64, u64),
}

impl ColOp {
    #[inline]
    fn test(self, x: u64) -> bool {
        match self {
            ColOp::Eq(v) => x == v,
            ColOp::Ne(v) => x != v,
            ColOp::Lt(v) => x < v,
            ColOp::Ge(v) => x >= v,
            ColOp::Mod(m, r) => m != 0 && x % m == r,
        }
    }
}

impl PagePredicate {
    /// Lowers a [`Predicate`] for page-level evaluation. Returns `None`
    /// when any atom cannot be evaluated against fixed-width page bytes
    /// (no such atom exists in the current grammar, so this presently
    /// always succeeds; the `Option` is the fallback contract).
    pub fn lower(p: &Predicate) -> Option<PagePredicate> {
        Some(match p {
            Predicate::True => PagePredicate::True,
            Predicate::KeyEq(k) => PagePredicate::KeyEq(*k),
            Predicate::KeyRange(lo, hi) => PagePredicate::KeyRange(*lo, *hi),
            Predicate::ColEq(c, v) => PagePredicate::Col(*c, ColOp::Eq(*v)),
            Predicate::ColNe(c, v) => PagePredicate::Col(*c, ColOp::Ne(*v)),
            Predicate::ColLt(c, v) => PagePredicate::Col(*c, ColOp::Lt(*v)),
            Predicate::ColGe(c, v) => PagePredicate::Col(*c, ColOp::Ge(*v)),
            Predicate::ColMod(c, m, r) => PagePredicate::Col(*c, ColOp::Mod(*m, *r)),
            Predicate::And(a, b) => {
                PagePredicate::And(Box::new(Self::lower(a)?), Box::new(Self::lower(b)?))
            }
            Predicate::Or(a, b) => {
                PagePredicate::Or(Box::new(Self::lower(a)?), Box::new(Self::lower(b)?))
            }
            Predicate::Not(a) => PagePredicate::Not(Box::new(Self::lower(a)?)),
        })
    }

    /// Evaluates one atom against slot `idx`.
    #[inline]
    fn eval_leaf(&self, cursor: &mut PinnedCursor<'_>, idx: u64) -> Result<bool> {
        match self {
            PagePredicate::True => Ok(true),
            PagePredicate::KeyEq(k) => Ok(cursor.peek_key(idx)?.0 == *k),
            PagePredicate::KeyRange(lo, hi) => {
                let key = cursor.peek_key(idx)?.0;
                Ok((*lo..*hi).contains(&key))
            }
            PagePredicate::Col(c, op) => Ok(op.test(cursor.read_field(idx, *c)?)),
            _ => unreachable!("eval_leaf called on a combinator"),
        }
    }

    /// Evaluates the predicate against slot `idx` — the per-slot shape the
    /// version-first engine uses (its scan order is per-record, newest
    /// first, so there is no 64-slot chunk to batch over).
    pub fn eval_slot(&self, cursor: &mut PinnedCursor<'_>, idx: u64) -> Result<bool> {
        match self {
            PagePredicate::And(a, b) => Ok(a.eval_slot(cursor, idx)? && b.eval_slot(cursor, idx)?),
            PagePredicate::Or(a, b) => Ok(a.eval_slot(cursor, idx)? || b.eval_slot(cursor, idx)?),
            PagePredicate::Not(a) => Ok(!a.eval_slot(cursor, idx)?),
            leaf => leaf.eval_leaf(cursor, idx),
        }
    }

    /// Evaluates the predicate over the 64 slots starting at `base`,
    /// restricted to the candidate mask `live`, returning the match word
    /// (`bit i` set ⇔ slot `base + i` is a candidate and passes).
    ///
    /// Combinators work on whole words: `And` narrows the candidate mask
    /// through both sides, `Or` sends only the left side's misses to the
    /// right, `Not` subtracts from the candidates — so a conjunction's
    /// second column is read only for slots the first column passed.
    pub fn eval_word(&self, cursor: &mut PinnedCursor<'_>, base: u64, live: u64) -> Result<u64> {
        if live == 0 {
            return Ok(0);
        }
        match self {
            PagePredicate::True => Ok(live),
            PagePredicate::And(a, b) => {
                let m = a.eval_word(cursor, base, live)?;
                b.eval_word(cursor, base, m)
            }
            PagePredicate::Or(a, b) => {
                let m = a.eval_word(cursor, base, live)?;
                Ok(m | b.eval_word(cursor, base, live & !m)?)
            }
            PagePredicate::Not(a) => Ok(live & !a.eval_word(cursor, base, live)?),
            leaf => {
                let mut out = 0u64;
                let mut cur = live;
                while cur != 0 {
                    let bit = cur.trailing_zeros();
                    cur &= cur - 1;
                    if leaf.eval_leaf(cursor, base + bit as u64)? {
                        out |= 1u64 << bit;
                    }
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decibel_common::schema::{ColumnType, Schema};
    use decibel_pagestore::{BufferPool, HeapFile};
    use std::sync::Arc;

    fn heap_fixture() -> (tempfile::TempDir, HeapFile) {
        let dir = tempfile::tempdir().unwrap();
        let pool = Arc::new(BufferPool::new(256, 8));
        let schema = Schema::new(3, ColumnType::U32);
        let heap = HeapFile::create(pool, dir.path().join("h"), schema).unwrap();
        for k in 0..100u64 {
            heap.append(&Record::new(k, vec![k % 7, k * 2, 100 - k]))
                .unwrap();
        }
        (dir, heap)
    }

    fn preds() -> Vec<Predicate> {
        vec![
            Predicate::True,
            Predicate::KeyEq(17),
            Predicate::KeyRange(10, 40),
            Predicate::ColEq(0, 3),
            Predicate::ColNe(0, 3),
            Predicate::ColLt(1, 50),
            Predicate::ColGe(2, 60),
            Predicate::ColMod(1, 6, 2),
            Predicate::ColLt(1, 80).and(Predicate::ColGe(2, 40)),
            Predicate::KeyRange(0, 20).or(Predicate::ColEq(0, 5)),
            Predicate::ColGe(1, 100).not(),
            Predicate::KeyRange(5, 95)
                .and(Predicate::ColMod(0, 2, 1).or(Predicate::ColLt(2, 30).not())),
        ]
    }

    #[test]
    fn eval_word_matches_record_eval() {
        let (_d, heap) = heap_fixture();
        for p in preds() {
            let pp = PagePredicate::lower(&p).unwrap();
            let mut cursor = heap.pinned_cursor();
            for (word_i, mask) in [
                (0usize, u64::MAX),
                (1, u64::MAX),
                (0, 0x0f0f_0f0f_dead_beef),
            ] {
                let base = word_i as u64 * 64;
                // Candidate masks come from liveness bitmaps and are
                // in-bounds by invariant; keep the fixture honest.
                let in_bounds = if base + 64 <= heap.len() {
                    u64::MAX
                } else {
                    (1u64 << (heap.len() - base)) - 1
                };
                let live = mask & in_bounds;
                let got = pp.eval_word(&mut cursor, base, live).unwrap();
                let mut expect = 0u64;
                for bit in 0..64u64 {
                    let idx = base + bit;
                    if live >> bit & 1 == 1 && idx < heap.len() {
                        let rec = heap.get(decibel_common::RecordIdx(idx)).unwrap();
                        if p.eval(&rec) {
                            expect |= 1 << bit;
                        }
                    }
                }
                assert_eq!(got, expect, "{p:?} word {word_i}");
            }
        }
    }

    #[test]
    fn eval_slot_matches_record_eval() {
        let (_d, heap) = heap_fixture();
        for p in preds() {
            let pp = PagePredicate::lower(&p).unwrap();
            let mut cursor = heap.pinned_cursor();
            for idx in 0..heap.len() {
                let rec = heap.get(decibel_common::RecordIdx(idx)).unwrap();
                assert_eq!(
                    pp.eval_slot(&mut cursor, idx).unwrap(),
                    p.eval(&rec),
                    "{p:?} slot {idx}"
                );
            }
        }
    }

    #[test]
    fn plan_apply_is_filter_then_project() {
        let plan = ScanPlan::new(Predicate::ColGe(1, 10), Projection::of(&[1]));
        assert_eq!(plan.apply(Record::new(1, vec![7, 9, 3])), None);
        assert_eq!(
            plan.apply(Record::new(1, vec![7, 11, 3])),
            Some(Record::new(1, vec![0, 11, 0]))
        );
        assert!(plan.decode_projection() == Projection::of(&[1]));
    }

    #[test]
    fn every_grammar_shape_lowers() {
        for p in preds() {
            assert!(PagePredicate::lower(&p).is_some(), "{p:?}");
        }
    }
}
