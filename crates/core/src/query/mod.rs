//! The versioned query layer.
//!
//! Decibel "can support arbitrary declarative queries comparing multiple
//! versions" (§2.2.3) through VQuel \[7\]; the paper evaluates the four query
//! classes of Table 1 / §4.3. This module provides a small declarative
//! query AST covering those classes (plus aggregates), executed against any
//! [`VersionedStore`](crate::store::VersionedStore):
//!
//! * [`Query::ScanVersion`] — Table 1 #1 / benchmark Q1: all records of one
//!   version satisfying a predicate;
//! * [`Query::PositiveDiff`] — Table 1 #2 / Q2: records in the left version
//!   whose copy is not in the right;
//! * [`Query::VersionJoin`] — Table 1 #3 / Q3: primary-key join of two
//!   versions with a predicate on the left side;
//! * [`Query::HeadScan`] — Table 1 #4 / Q4: records live in the head of any
//!   branch, annotated with their branches;
//! * [`Query::Aggregate`] — grouped-by-nothing aggregates over a version.
//!
//! The enum is the *internal plan representation*; the primary entry point
//! is the fluent [`build`] module reached through
//! [`Database::read`](crate::db::Database::read) and friends, which
//! assembles these plans and executes them under the database's shared
//! read lock.

pub mod build;
pub mod exec;
pub mod plan;
pub mod predicate;

pub use build::{MultiReadBuilder, ReadBuilder};
pub use exec::{execute, execute_metered, QueryOutput, ScanMetrics};
pub use plan::{PagePredicate, ScanPlan};
pub use predicate::Predicate;

use decibel_common::ids::BranchId;
use decibel_common::Projection;

use crate::types::VersionRef;

/// Aggregate functions over a data column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Number of qualifying records.
    Count,
    /// Sum of the column.
    Sum,
    /// Minimum of the column.
    Min,
    /// Maximum of the column.
    Max,
    /// Mean of the column.
    Avg,
}

/// A declarative query against a versioned store.
#[derive(Debug, Clone)]
pub enum Query {
    /// `SELECT <projection> FROM R WHERE R.Version = v AND <predicate>`.
    ScanVersion {
        /// The version to scan.
        version: VersionRef,
        /// Row filter.
        predicate: Predicate,
        /// Columns to materialize (non-projected fields read `0`).
        projection: Projection,
    },
    /// `SELECT * FROM R WHERE Version = left AND id NOT IN (SELECT id FROM
    /// R WHERE Version = right)` — by record copy, as the engines diff.
    PositiveDiff {
        /// Version whose exclusive records are returned.
        left: VersionRef,
        /// Version subtracted from the left.
        right: VersionRef,
    },
    /// `SELECT * FROM R r1, R r2 WHERE r1.Version = left AND r2.Version =
    /// right AND r1.id = r2.id AND <predicate>(r1)`.
    VersionJoin {
        /// Left (probe/filter) version.
        left: VersionRef,
        /// Right (build) version.
        right: VersionRef,
        /// Predicate applied to the left record (Table 1 #3 filters one
        /// side, `R1.Name = 'Sam'`).
        predicate: Predicate,
    },
    /// `SELECT * FROM R WHERE HEAD(R.Version) = true AND <predicate>`,
    /// annotated with each record's containing branches.
    HeadScan {
        /// Row filter.
        predicate: Predicate,
        /// Restrict to non-retired branches.
        active_only: bool,
        /// Columns to materialize (non-projected fields read `0`).
        projection: Projection,
    },
    /// A single aggregate over one version.
    Aggregate {
        /// The version to aggregate.
        version: VersionRef,
        /// Data-column index (ignored for `Count`).
        column: usize,
        /// The aggregate function.
        agg: AggKind,
        /// Row filter applied before aggregation.
        predicate: Predicate,
    },
    /// Multi-branch scan over an explicit branch list (the generalized Q4
    /// the storage engines expose).
    MultiBranchScan {
        /// The branches to scan.
        branches: Vec<BranchId>,
        /// Row filter.
        predicate: Predicate,
        /// Intra-query parallelism hint: values > 1 route through
        /// [`VersionedStore::par_multi_scan`](crate::store::VersionedStore::par_multi_scan)
        /// with this many workers; ≤ 1 streams sequentially. Results are
        /// identical either way.
        parallel: usize,
        /// Columns to materialize (non-projected fields read `0`).
        projection: Projection,
    },
}
