//! Engine-agnostic merge planning.
//!
//! All three engines detect merge candidates the same way — "we perform a
//! diff to find modified records in each branch. For each record, we check
//! to see if its key exists in the other branch's table. If it does, the
//! record with this key has been modified in both branches and must be
//! checked for conflict. To do so, we find the common ancestor tuple and do
//! a three-way merge to identify if overlapping fields have been updated
//! through field level comparisons" (§3.2) — they differ only in *how* they
//! obtain the per-branch modified sets (bitmap XOR vs segment scans) and in
//! how they apply the outcome. This module hosts the shared decision logic,
//! which also guarantees all engines produce identical merge states — a
//! property the cross-engine tests assert.

use decibel_common::hash::FxHashMap;
use decibel_common::record::Record;
use decibel_common::Result;

use crate::types::{Conflict, MergePolicy};

/// What the merge decides to do with one key in the destination branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeAction {
    /// Keep the destination branch's current copy (no storage change).
    KeepLeft,
    /// Adopt the source branch's live copy.
    TakeRight(Record),
    /// Write a freshly merged record (field-level three-way merge output).
    Materialize(Record),
    /// Remove the key from the destination (a delete wins).
    Delete,
}

/// The full plan for a merge: per-key actions plus resolved conflicts.
#[derive(Debug, Default)]
pub struct MergePlan {
    /// Actions keyed by primary key. Keys absent from the map are
    /// untouched in the destination.
    pub actions: Vec<(u64, MergeAction)>,
    /// Conflicts encountered (already resolved by precedence).
    pub conflicts: Vec<Conflict>,
    /// Total record bytes compared while planning (throughput accounting).
    pub bytes_compared: u64,
}

/// A branch's change to one key relative to the merge base: the new live
/// copy, or `None` for a deletion.
pub type ChangeSet = FxHashMap<u64, Option<Record>>;

/// Computes the merge plan from the two branches' change sets relative to
/// their lowest common ancestor.
///
/// `left` is the destination branch, `right` the source. `fetch_base`
/// retrieves the LCA's live copy of a key (only called for keys changed on
/// both sides, mirroring §3.2's "reduces the amount of data that needs to
/// be scanned from the lca").
pub fn plan_merge(
    policy: MergePolicy,
    left: &ChangeSet,
    right: &ChangeSet,
    record_size: usize,
    mut fetch_base: impl FnMut(u64) -> Result<Option<Record>>,
) -> Result<MergePlan> {
    let mut plan = MergePlan::default();
    let prefer_left = policy.prefer_left();

    // Keys changed only in the source: adopt them wholesale.
    for (&key, change) in right {
        if left.contains_key(&key) {
            continue;
        }
        plan.bytes_compared += record_size as u64;
        match change {
            Some(rec) => plan
                .actions
                .push((key, MergeAction::TakeRight(rec.clone()))),
            None => plan.actions.push((key, MergeAction::Delete)),
        }
    }

    // Keys changed in both: conflict candidates.
    let mut both: Vec<u64> = left
        .keys()
        .filter(|k| right.contains_key(k))
        .copied()
        .collect();
    both.sort_unstable(); // deterministic plan order across engines
    for key in both {
        let l = &left[&key];
        let r = &right[&key];
        plan.bytes_compared += 2 * record_size as u64;
        match (l, r) {
            (None, None) => {
                // Deleted on both sides: agreement.
                plan.actions.push((key, MergeAction::Delete));
            }
            (Some(lrec), Some(rrec)) if lrec == rrec => {
                // Identical copies: agreement, keep what we have.
                plan.actions.push((key, MergeAction::KeepLeft));
            }
            (None, Some(rrec)) => {
                // Delete/modify conflict ("a record that was deleted in one
                // version and modified in the other will generate a
                // conflict", §2.2.3).
                plan.conflicts.push(Conflict {
                    key,
                    fields: Vec::new(),
                    resolved_left: prefer_left,
                });
                if prefer_left {
                    plan.actions.push((key, MergeAction::Delete));
                } else {
                    plan.actions
                        .push((key, MergeAction::TakeRight(rrec.clone())));
                }
            }
            (Some(_), None) => {
                plan.conflicts.push(Conflict {
                    key,
                    fields: Vec::new(),
                    resolved_left: prefer_left,
                });
                if !prefer_left {
                    plan.actions.push((key, MergeAction::Delete));
                } else {
                    plan.actions.push((key, MergeAction::KeepLeft));
                }
            }
            (Some(lrec), Some(rrec)) => match policy {
                MergePolicy::TwoWay { prefer_left } => {
                    // Tuple-level conflict: whole-record precedence.
                    plan.conflicts.push(Conflict {
                        key,
                        fields: Vec::new(),
                        resolved_left: prefer_left,
                    });
                    if prefer_left {
                        plan.actions.push((key, MergeAction::KeepLeft));
                    } else {
                        plan.actions
                            .push((key, MergeAction::TakeRight(rrec.clone())));
                    }
                }
                MergePolicy::ThreeWay { prefer_left } => {
                    let base = fetch_base(key)?;
                    plan.bytes_compared += record_size as u64;
                    match base {
                        None => {
                            // Independently inserted on both sides with
                            // different values: no base to anchor a field
                            // merge; tuple-level precedence.
                            plan.conflicts.push(Conflict {
                                key,
                                fields: Vec::new(),
                                resolved_left: prefer_left,
                            });
                            if prefer_left {
                                plan.actions.push((key, MergeAction::KeepLeft));
                            } else {
                                plan.actions
                                    .push((key, MergeAction::TakeRight(rrec.clone())));
                            }
                        }
                        Some(base) => {
                            let (merged, overlap) =
                                three_way_fields(&base, lrec, rrec, prefer_left);
                            if !overlap.is_empty() {
                                plan.conflicts.push(Conflict {
                                    key,
                                    fields: overlap,
                                    resolved_left: prefer_left,
                                });
                            }
                            if &merged == lrec {
                                plan.actions.push((key, MergeAction::KeepLeft));
                            } else {
                                plan.actions.push((key, MergeAction::Materialize(merged)));
                            }
                        }
                    }
                }
            },
        }
    }
    Ok(plan)
}

/// Three-way field merge: fields changed on one side only adopt that side;
/// fields changed on both sides to different values are *overlapping*
/// conflicts resolved by precedence. Returns the merged record and the
/// overlapping field indexes.
pub fn three_way_fields(
    base: &Record,
    left: &Record,
    right: &Record,
    prefer_left: bool,
) -> (Record, Vec<usize>) {
    let mut fields = Vec::with_capacity(base.fields().len());
    let mut overlap = Vec::new();
    for i in 0..base.fields().len() {
        let b = base.field(i);
        let l = left.field(i);
        let r = right.field(i);
        let v = if l == b {
            r // only right changed (or nobody did)
        } else if r == b || r == l {
            l // only left changed, or both agree
        } else {
            // Both changed, to different values: overlapping conflict.
            overlap.push(i);
            if prefer_left {
                l
            } else {
                r
            }
        };
        fields.push(v);
    }
    (Record::new(base.key(), fields), overlap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: u64, fields: &[u64]) -> Record {
        Record::new(key, fields.to_vec())
    }

    fn changes(entries: &[(u64, Option<Record>)]) -> ChangeSet {
        entries.iter().cloned().collect()
    }

    fn action_for(plan: &MergePlan, key: u64) -> &MergeAction {
        &plan
            .actions
            .iter()
            .find(|(k, _)| *k == key)
            .expect("key has an action")
            .1
    }

    const THREE_L: MergePolicy = MergePolicy::ThreeWay { prefer_left: true };
    const THREE_R: MergePolicy = MergePolicy::ThreeWay { prefer_left: false };
    const TWO_L: MergePolicy = MergePolicy::TwoWay { prefer_left: true };

    #[test]
    fn right_only_changes_are_adopted() {
        let left = changes(&[]);
        let right = changes(&[(1, Some(rec(1, &[9, 9]))), (2, None)]);
        let plan = plan_merge(THREE_L, &left, &right, 10, |_| Ok(None)).unwrap();
        assert_eq!(
            action_for(&plan, 1),
            &MergeAction::TakeRight(rec(1, &[9, 9]))
        );
        assert_eq!(action_for(&plan, 2), &MergeAction::Delete);
        assert!(plan.conflicts.is_empty());
    }

    #[test]
    fn left_only_changes_are_untouched() {
        let left = changes(&[(1, Some(rec(1, &[5])))]);
        let right = changes(&[]);
        let plan = plan_merge(THREE_L, &left, &right, 10, |_| Ok(None)).unwrap();
        assert!(plan.actions.is_empty());
        assert!(plan.conflicts.is_empty());
    }

    #[test]
    fn disjoint_field_updates_auto_merge() {
        let base = rec(1, &[0, 0, 0]);
        let left = changes(&[(1, Some(rec(1, &[7, 0, 0])))]);
        let right = changes(&[(1, Some(rec(1, &[0, 0, 9])))]);
        let plan = plan_merge(THREE_L, &left, &right, 10, |_| Ok(Some(base.clone()))).unwrap();
        assert!(plan.conflicts.is_empty());
        assert_eq!(
            action_for(&plan, 1),
            &MergeAction::Materialize(rec(1, &[7, 0, 9]))
        );
    }

    #[test]
    fn overlapping_fields_conflict_with_precedence() {
        let base = rec(1, &[0, 0]);
        let left = changes(&[(1, Some(rec(1, &[7, 1])))]);
        let right = changes(&[(1, Some(rec(1, &[9, 0])))]);

        let plan = plan_merge(THREE_L, &left, &right, 10, |_| Ok(Some(base.clone()))).unwrap();
        assert_eq!(plan.conflicts.len(), 1);
        assert_eq!(plan.conflicts[0].fields, vec![0]);
        // Field 0 conflicts → left (7); field 1 changed only left → 1.
        assert_eq!(action_for(&plan, 1), &MergeAction::KeepLeft);

        let plan = plan_merge(THREE_R, &left, &right, 10, |_| Ok(Some(base.clone()))).unwrap();
        // Field 0 → right (9); field 1 → left's change still merges (1).
        assert_eq!(
            action_for(&plan, 1),
            &MergeAction::Materialize(rec(1, &[9, 1]))
        );
    }

    #[test]
    fn same_value_change_is_not_a_conflict() {
        let base = rec(1, &[0]);
        let left = changes(&[(1, Some(rec(1, &[4])))]);
        let right = changes(&[(1, Some(rec(1, &[4])))]);
        let plan = plan_merge(THREE_L, &left, &right, 10, |_| Ok(Some(base.clone()))).unwrap();
        assert!(plan.conflicts.is_empty());
        assert_eq!(action_for(&plan, 1), &MergeAction::KeepLeft);
    }

    #[test]
    fn delete_modify_conflicts() {
        let left = changes(&[(1, None)]);
        let right = changes(&[(1, Some(rec(1, &[3])))]);
        let plan = plan_merge(THREE_L, &left, &right, 10, |_| Ok(Some(rec(1, &[0])))).unwrap();
        assert_eq!(plan.conflicts.len(), 1);
        assert_eq!(action_for(&plan, 1), &MergeAction::Delete);

        let plan = plan_merge(THREE_R, &left, &right, 10, |_| Ok(Some(rec(1, &[0])))).unwrap();
        assert_eq!(action_for(&plan, 1), &MergeAction::TakeRight(rec(1, &[3])));
    }

    #[test]
    fn both_deleted_agree() {
        let left = changes(&[(1, None)]);
        let right = changes(&[(1, None)]);
        let plan = plan_merge(THREE_L, &left, &right, 10, |_| Ok(Some(rec(1, &[0])))).unwrap();
        assert!(plan.conflicts.is_empty());
        assert_eq!(action_for(&plan, 1), &MergeAction::Delete);
    }

    #[test]
    fn independent_identical_inserts_agree() {
        let left = changes(&[(1, Some(rec(1, &[2])))]);
        let right = changes(&[(1, Some(rec(1, &[2])))]);
        let plan = plan_merge(THREE_L, &left, &right, 10, |_| Ok(None)).unwrap();
        assert!(plan.conflicts.is_empty());
        assert_eq!(action_for(&plan, 1), &MergeAction::KeepLeft);
    }

    #[test]
    fn independent_divergent_inserts_conflict() {
        let left = changes(&[(1, Some(rec(1, &[2])))]);
        let right = changes(&[(1, Some(rec(1, &[3])))]);
        let plan = plan_merge(THREE_R, &left, &right, 10, |_| Ok(None)).unwrap();
        assert_eq!(plan.conflicts.len(), 1);
        assert_eq!(action_for(&plan, 1), &MergeAction::TakeRight(rec(1, &[3])));
    }

    #[test]
    fn two_way_treats_any_divergence_as_tuple_conflict() {
        // Even disjoint field updates conflict at tuple level.
        let left = changes(&[(1, Some(rec(1, &[7, 0])))]);
        let right = changes(&[(1, Some(rec(1, &[0, 9])))]);
        let plan = plan_merge(TWO_L, &left, &right, 10, |_| {
            panic!("two-way must not fetch the base")
        })
        .unwrap();
        assert_eq!(plan.conflicts.len(), 1);
        assert!(plan.conflicts[0].fields.is_empty());
        assert_eq!(action_for(&plan, 1), &MergeAction::KeepLeft);
    }

    #[test]
    fn three_way_field_merge_unit() {
        let base = rec(1, &[1, 2, 3, 4]);
        let left = rec(1, &[9, 2, 3, 5]);
        let right = rec(1, &[1, 8, 3, 6]);
        let (merged, overlap) = three_way_fields(&base, &left, &right, true);
        assert_eq!(overlap, vec![3]);
        assert_eq!(merged.fields(), &[9, 8, 3, 5]);
        let (merged, _) = three_way_fields(&base, &left, &right, false);
        assert_eq!(merged.fields(), &[9, 8, 3, 6]);
    }

    #[test]
    fn bytes_compared_accumulates() {
        let left = changes(&[(1, Some(rec(1, &[1])))]);
        let right = changes(&[(1, Some(rec(1, &[2]))), (2, Some(rec(2, &[3])))]);
        let plan = plan_merge(THREE_L, &left, &right, 100, |_| Ok(Some(rec(1, &[0])))).unwrap();
        // key 2: 100; key 1: 200 + 100 base fetch.
        assert_eq!(plan.bytes_compared, 400);
    }
}
