//! Shared types of the versioned storage API.

use decibel_common::ids::{BranchId, CommitId};
use decibel_common::record::Record;
use decibel_common::Result;

/// Names a version to read: either the working head of a branch or an
/// immutable committed version ("Any version (commit) on any branch may be
/// checked out", §2.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VersionRef {
    /// The current (possibly uncommitted) state of a branch.
    Branch(BranchId),
    /// A committed version.
    Commit(CommitId),
}

impl From<BranchId> for VersionRef {
    fn from(b: BranchId) -> Self {
        VersionRef::Branch(b)
    }
}

impl From<CommitId> for VersionRef {
    fn from(c: CommitId) -> Self {
        VersionRef::Commit(c)
    }
}

/// Streaming record iterator returned by single-version scans.
pub type RecordIter<'a> = Box<dyn Iterator<Item = Result<Record>> + 'a>;

/// Iterator returned by multi-branch scans: each record is annotated with
/// the branches it is live in (Query 4's output is "a list of records
/// annotated with their active branches", §4.3).
pub type AnnotatedIter<'a> = Box<dyn Iterator<Item = Result<(Record, Vec<BranchId>)>> + 'a>;

/// Iterator returned by the planned scan pipeline
/// ([`VersionedStore::scan_pipeline`](crate::store::VersionedStore::scan_pipeline)):
/// each record is paired with an engine-opaque *resume token* — pass a
/// yielded token back as the pipeline's `from` argument to continue the
/// scan immediately after that row (O(1) for the bitmap engines, key-peeks
/// only for version-first).
pub type PosRecordIter<'a> = Box<dyn Iterator<Item = Result<(u64, Record)>> + 'a>;

/// Resume-token-annotated variant of [`AnnotatedIter`] returned by
/// [`VersionedStore::multi_scan_pipeline`](crate::store::VersionedStore::multi_scan_pipeline).
pub type PosAnnotatedIter<'a> = Box<dyn Iterator<Item = Result<(u64, Record, Vec<BranchId>)>> + 'a>;

/// Result of a [`diff`](crate::store::VersionedStore::diff): the paper's two
/// "temporary tables" (§2.2.3 Difference).
#[derive(Debug, Clone, Default)]
pub struct DiffResult {
    /// Record copies live in the left version but not the right.
    pub left_only: Vec<Record>,
    /// Record copies live in the right version but not the left.
    pub right_only: Vec<Record>,
}

/// Conflict-resolution policy for merges (§2.2.3 Merge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Tuple-level conflicts: any key whose record copies differ between
    /// the two heads conflicts, and the preferred side's copy wins whole.
    TwoWay {
        /// When true the destination (left) branch takes precedence.
        prefer_left: bool,
    },
    /// Field-level conflicts anchored at the lowest common ancestor:
    /// "non-overlapping field updates are auto-merged and for conflicting
    /// field updates, one branch is given precedence" (§2.2.3).
    ThreeWay {
        /// When true the destination (left) branch wins conflicting fields.
        prefer_left: bool,
    },
}

impl MergePolicy {
    /// Whether the destination branch wins conflicts.
    pub fn prefer_left(self) -> bool {
        match self {
            MergePolicy::TwoWay { prefer_left } | MergePolicy::ThreeWay { prefer_left } => {
                prefer_left
            }
        }
    }
}

/// One conflicting key discovered during a merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The conflicting primary key.
    pub key: u64,
    /// Overlapping field indexes (empty for tuple-level conflicts and for
    /// delete/modify conflicts).
    pub fields: Vec<usize>,
    /// True if the destination branch's values were kept.
    pub resolved_left: bool,
}

/// Outcome of a merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeResult {
    /// The merge commit created on the destination branch.
    pub commit: CommitId,
    /// Conflicts found (already resolved per the policy's precedence).
    pub conflicts: Vec<Conflict>,
    /// Number of records whose destination state changed.
    pub records_changed: u64,
    /// Bytes of record data examined — Table 3 reports merge throughput
    /// "relative to the size of the diff between each pair of branches".
    pub bytes_compared: u64,
}

/// Storage accounting used by the experiment harness (Tables 2, 4, 5, 6).
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Bytes of record heap data on disk (including page padding).
    pub data_bytes: u64,
    /// In-memory footprint of live bitmap indexes.
    pub index_bytes: u64,
    /// Aggregate on-disk size of commit history ("pack") files.
    pub commit_store_bytes: u64,
    /// Number of segment files (1 for tuple-first).
    pub num_segments: u32,
    /// Number of commits recorded.
    pub num_commits: u64,
}

/// The storage scheme implemented by an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Tuple-first with a branch-oriented bitmap (§3.1, the paper's default
    /// for evaluation, §5).
    TupleFirstBranch,
    /// Tuple-first with a tuple-oriented bitmap (§3.1).
    TupleFirstTuple,
    /// Version-first segment files (§3.3).
    VersionFirst,
    /// Hybrid segments + bitmaps (§3.4).
    Hybrid,
}

impl EngineKind {
    /// Short label used in benchmark tables (the paper uses TF/VF/HY).
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::TupleFirstBranch => "TF",
            EngineKind::TupleFirstTuple => "TF(tuple)",
            EngineKind::VersionFirst => "VF",
            EngineKind::Hybrid => "HY",
        }
    }

    /// All four engine variants.
    pub fn all() -> [EngineKind; 4] {
        [
            EngineKind::TupleFirstBranch,
            EngineKind::TupleFirstTuple,
            EngineKind::VersionFirst,
            EngineKind::Hybrid,
        ]
    }

    /// Stable identifier used in on-disk manifests (round-trips through
    /// [`EngineKind::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::TupleFirstBranch => "tuple_first_branch",
            EngineKind::TupleFirstTuple => "tuple_first_tuple",
            EngineKind::VersionFirst => "version_first",
            EngineKind::Hybrid => "hybrid",
        }
    }

    /// Parses a manifest identifier written by [`EngineKind::name`].
    pub fn from_name(name: &str) -> Option<EngineKind> {
        EngineKind::all().into_iter().find(|k| k.name() == name)
    }

    /// The three headline engines the paper's figures compare (TF with its
    /// evaluation-default branch-oriented bitmap, §5).
    pub fn headline() -> [EngineKind; 3] {
        [
            EngineKind::TupleFirstBranch,
            EngineKind::VersionFirst,
            EngineKind::Hybrid,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_ref_conversions() {
        assert_eq!(
            VersionRef::from(BranchId(1)),
            VersionRef::Branch(BranchId(1))
        );
        assert_eq!(
            VersionRef::from(CommitId(2)),
            VersionRef::Commit(CommitId(2))
        );
    }

    #[test]
    fn policy_precedence() {
        assert!(MergePolicy::TwoWay { prefer_left: true }.prefer_left());
        assert!(!MergePolicy::ThreeWay { prefer_left: false }.prefer_left());
    }

    #[test]
    fn engine_names_round_trip() {
        for kind in EngineKind::all() {
            assert_eq!(EngineKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(EngineKind::from_name("no_such_engine"), None);
    }

    #[test]
    fn engine_labels_are_paper_labels() {
        assert_eq!(EngineKind::TupleFirstBranch.label(), "TF");
        assert_eq!(EngineKind::VersionFirst.label(), "VF");
        assert_eq!(EngineKind::Hybrid.label(), "HY");
        assert_eq!(EngineKind::all().len(), 4);
        assert_eq!(EngineKind::headline().len(), 3);
    }
}
