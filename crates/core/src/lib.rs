//! Decibel's versioned storage engines and database API.
//!
//! This crate is the paper's primary contribution: a relational storage
//! layer with git-like versioning — branches, commits, checkouts, diffs and
//! merges over tables of records tracked by primary key (§2) — implemented
//! in three interchangeable physical schemes (§3):
//!
//! * [`engine::TupleFirstEngine`] — one shared heap file plus a
//!   per-branch/per-tuple bitmap index (generic over the two bitmap
//!   orientations of §3.1);
//! * [`engine::VersionFirstEngine`] — per-branch segment files chained by
//!   branch points;
//! * [`engine::HybridEngine`] — version-first's segmented layout with
//!   tuple-first's bitmaps attached to each segment plus a global
//!   branch-segment bitmap.
//!
//! All three implement [`store::VersionedStore`]; [`db::Database`] wraps
//! any of them with sessions, branch-level two-phase locking, and the
//! versioned query layer ([`query`]) that expresses the benchmark's four
//! query classes (§4.3).

mod checkpoint;
pub mod cursor;
pub mod db;
pub mod engine;
mod journal;
pub mod merge;
pub mod pool;
pub mod query;
pub mod session;
pub mod shard;
pub mod store;
pub mod types;

pub use cursor::{MultiScanCursor, ScanCursor};
pub use db::{Database, JournalStats};
pub use engine::{
    HybridEngine, TupleFirstBranchEngine, TupleFirstEngine, TupleFirstTupleEngine,
    VersionFirstEngine,
};
pub use pool::ScanPool;
pub use query::{MultiReadBuilder, ReadBuilder};
pub use session::Session;
pub use shard::{PreparedCommit, SessionOp, ShardSet};
pub use store::VersionedStore;
pub use types::{
    AnnotatedIter, DiffResult, EngineKind, MergePolicy, MergeResult, RecordIter, StoreStats,
    VersionRef,
};
