//! Sessions: per-user checkout state and transactional writes.
//!
//! A session buffers its modifications and applies them to the store when
//! the transaction commits — "Updates made as a part of a commit are issued
//! as a part of a single transaction, such that they become atomically
//! visible at the time the commit is made, and are rolled back if the
//! client crashes or disconnects before committing" (§2.2.3). Buffered
//! writes are visible to the session itself (read-your-writes) through an
//! overlay, journaled to the WAL at commit, and guarded by branch-level
//! two-phase locks: the session takes a shared lock on every *branch* it
//! reads (momentary for auto-committed reads, held to transaction end
//! inside a transaction) and an exclusive lock on the branch it writes,
//! all released when the transaction ends. Reads of committed versions
//! (`VersionRef::Commit`) take no branch lock: commits are immutable
//! (§2.2.2), so there is nothing a concurrent writer could change under
//! the reader.
//!
//! Sessions own an `Arc` to their [`Database`] and are `Send + 'static`:
//! the server shape the paper describes — many users, one session each —
//! maps onto one session per thread, all sharing one database handle.
//! Read-only operations from different sessions run concurrently (the
//! store sits behind a reader-writer lock); writers serialize per branch
//! via 2PL, and commits to *disjoint* branches run their apply/prepare
//! work concurrently through the sharded commit path, meeting only in
//! the short global sequencing section and the shared group fsync (see
//! the [`db`](crate::db) module docs).

use std::sync::Arc;

use decibel_common::error::{DbError, Result};
use decibel_common::hash::FxHashMap;
use decibel_common::ids::{BranchId, CommitId};
use decibel_common::record::Record;
use decibel_pagestore::{LockMode, TxnLocks};

use crate::cursor::ScanCursor;
use crate::db::Database;
use crate::journal;
use crate::shard::SessionOp;
use crate::store::VersionedStore;
use crate::types::VersionRef;

/// A user session: a checkout position plus an optional open transaction.
///
/// ```
/// use decibel_core::{Database, EngineKind};
/// use decibel_common::record::Record;
/// use decibel_common::schema::{ColumnType, Schema};
/// use decibel_pagestore::StoreConfig;
///
/// let dir = tempfile::tempdir().unwrap();
/// let db = Database::create(
///     dir.path(),
///     EngineKind::Hybrid,
///     Schema::new(2, ColumnType::U32),
///     &StoreConfig::default(),
/// )
/// .unwrap();
///
/// // Sessions are Send + 'static: move one into each worker thread.
/// let handle = {
///     let mut session = db.session();
///     std::thread::spawn(move || {
///         session.insert(Record::new(1, vec![10, 20])).unwrap();
///         session.commit().unwrap();
///     })
/// };
/// handle.join().unwrap();
/// assert_eq!(db.session().get(1).unwrap().unwrap().field(0), 10);
/// ```
pub struct Session {
    db: Arc<Database>,
    /// What the session reads (and, for branches, writes).
    at: VersionRef,
    /// Open transaction state.
    txn: Option<Txn>,
}

struct Txn {
    locks: TxnLocks,
    ops: Vec<SessionOp>,
    /// Read-your-writes overlay: key → pending live copy (`None` =
    /// pending delete).
    overlay: FxHashMap<u64, Option<Record>>,
}

impl Session {
    pub(crate) fn new(db: Arc<Database>) -> Self {
        Session {
            db,
            at: VersionRef::Branch(BranchId::MASTER),
            txn: None,
        }
    }

    /// The database this session is connected to.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The session's current checkout position.
    pub fn current(&self) -> VersionRef {
        self.at
    }

    /// Checks out a branch by name ("which simply modifies the user's
    /// current session state to point to that version", §2.2.3).
    pub fn checkout_branch(&mut self, name: &str) -> Result<BranchId> {
        self.require_no_txn("checkout")?;
        let id = self.db.branch_id(name)?;
        self.at = VersionRef::Branch(id);
        Ok(id)
    }

    /// Checks out a historical commit (read-only position).
    pub fn checkout_commit(&mut self, commit: CommitId) -> Result<()> {
        self.require_no_txn("checkout")?;
        self.db
            .with_store(|s| s.graph().commit(commit).map(|_| ()))?;
        self.at = VersionRef::Commit(commit);
        Ok(())
    }

    /// Creates a branch rooted at the session's current position and checks
    /// it out (journaled through the database).
    pub fn branch(&mut self, name: &str) -> Result<BranchId> {
        self.require_no_txn("branch")?;
        let id = self.db.create_branch(name, self.at)?;
        self.at = VersionRef::Branch(id);
        Ok(id)
    }

    fn require_no_txn(&self, what: &str) -> Result<()> {
        if self.txn.is_some() {
            return Err(DbError::TxnOpen { what: what.into() });
        }
        Ok(())
    }

    fn write_branch(&self) -> Result<BranchId> {
        match self.at {
            VersionRef::Branch(b) => Ok(b),
            VersionRef::Commit(c) => Err(DbError::ReadOnlyCheckout { commit: c.raw() }),
        }
    }

    /// Opens a transaction explicitly (writes auto-begin one).
    pub fn begin(&mut self) -> Result<()> {
        if self.txn.is_some() {
            return Ok(());
        }
        let branch = self.write_branch()?;
        self.db.journal_writable()?;
        let mut locks = self.db.locks.begin();
        locks.lock(branch, LockMode::Exclusive)?;
        // The WAL transaction id is not allocated here: ids are handed out
        // inside the journal's critical section at commit time, so they
        // seal in increasing order (the checkpoint watermark depends on
        // this — see `Database::journaled`).
        self.txn = Some(Txn {
            locks,
            ops: Vec::new(),
            overlay: FxHashMap::default(),
        });
        Ok(())
    }

    /// Whether an explicit or auto-begun transaction is open. While this
    /// is `true` the session holds the branch's exclusive 2PL lock, so
    /// further writes and reads on this session cannot block on lock
    /// acquisition — callers (like the server's event loop) can use that
    /// to run them inline instead of parking them on a worker thread.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    fn txn_mut(&mut self) -> Result<&mut Txn> {
        if self.txn.is_none() {
            self.begin()?;
        }
        Ok(self.txn.as_mut().unwrap())
    }

    /// Runs a read against the store under the 2PL contract: branch reads
    /// take a shared lock on the branch — held to transaction end inside a
    /// transaction, momentary otherwise — while committed versions are
    /// immutable and read lock-free.
    fn locked_read<T>(&mut self, f: impl FnOnce(&dyn VersionedStore) -> Result<T>) -> Result<T> {
        match self.at {
            VersionRef::Branch(branch) => {
                if let Some(txn) = &mut self.txn {
                    // Growing phase: the lock joins the transaction's scope
                    // (a no-op when the exclusive write lock is held).
                    txn.locks.lock(branch, LockMode::Shared)?;
                    self.db.with_store(f)
                } else {
                    let mut locks = self.db.locks.begin();
                    locks.lock(branch, LockMode::Shared)?;
                    self.db.with_store(f)
                }
            }
            VersionRef::Commit(_) => self.db.with_store(f),
        }
    }

    /// Current value of `key` as this session sees it (overlay first).
    pub fn get(&mut self, key: u64) -> Result<Option<Record>> {
        if let Some(txn) = &self.txn {
            if let Some(pending) = txn.overlay.get(&key) {
                return Ok(pending.clone());
            }
        }
        let at = self.at;
        self.locked_read(|s| s.get(at, key))
    }

    /// Auto-begins a transaction around a buffered write. The transaction
    /// — and with it the exclusive branch lock — opens *before* `f`
    /// validates, so an existence check cannot go stale between validation
    /// and commit (2PL: the validating read is part of the transaction).
    /// If this call opened the transaction and `f` then buffered nothing
    /// (failed validation or a no-op), the empty transaction is rolled
    /// back: a rejected write must not leave the session silently holding
    /// the exclusive branch lock.
    fn buffered_write<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        let was_open = self.txn.is_some();
        self.begin()?;
        let result = f(self);
        if !was_open && self.txn.as_ref().is_some_and(|t| t.ops.is_empty()) {
            self.rollback();
        }
        result
    }

    /// Buffers an insert (validated against the session's view inside the
    /// transaction — see [`Session::buffered_write`]).
    pub fn insert(&mut self, record: Record) -> Result<()> {
        self.buffered_write(|session| {
            let key = record.key();
            if session.get(key)?.is_some() {
                return Err(DbError::DuplicateKey { key });
            }
            let txn = session.txn_mut()?;
            txn.overlay.insert(key, Some(record.clone()));
            txn.ops.push(SessionOp::Insert(record));
            Ok(())
        })
    }

    /// Buffers an update (the key must be visible to the session; like
    /// [`Session::insert`], validation happens inside the transaction).
    pub fn update(&mut self, record: Record) -> Result<()> {
        self.buffered_write(|session| {
            let key = record.key();
            if session.get(key)?.is_none() {
                return Err(DbError::KeyNotFound { key });
            }
            let txn = session.txn_mut()?;
            txn.overlay.insert(key, Some(record.clone()));
            txn.ops.push(SessionOp::Update(record));
            Ok(())
        })
    }

    /// Buffers a delete (like [`Session::insert`], validation happens
    /// inside the transaction; deleting an absent key is a no-op that does
    /// not hold the transaction open).
    pub fn delete(&mut self, key: u64) -> Result<bool> {
        self.buffered_write(|session| {
            let existed = session.get(key)?.is_some();
            if existed {
                let txn = session.txn_mut()?;
                txn.overlay.insert(key, None);
                txn.ops.push(SessionOp::Delete(key));
            }
            Ok(existed)
        })
    }

    /// Visits the session's view of every live record (base version merged
    /// with the transaction overlay).
    pub fn scan_with(&mut self, mut f: impl FnMut(&Record)) -> Result<u64> {
        let at = self.at;
        let overlay: FxHashMap<u64, Option<Record>> = match &self.txn {
            Some(t) => t.overlay.clone(),
            None => FxHashMap::default(),
        };
        let mut n = 0u64;
        self.locked_read(|s| -> Result<()> {
            for item in s.scan(at)? {
                let rec = item?;
                if !overlay.contains_key(&rec.key()) {
                    f(&rec);
                    n += 1;
                }
                // Keys in the overlay were replaced or deleted there.
            }
            Ok(())
        })?;
        for pending in overlay.values().flatten() {
            f(pending);
            n += 1;
        }
        Ok(n)
    }

    /// Opens a resumable chunked scan of the session's view: the base
    /// version merged with a *snapshot* of the transaction overlay, the
    /// same semantics as [`Session::scan_with`] but emitted in bounded
    /// chunks with no lock held between them (see [`crate::cursor`]).
    ///
    /// The cursor takes no branch-level 2PL lock — deliberately, so it
    /// works while this session holds the branch exclusively inside an
    /// open transaction — and is independent of the session afterwards:
    /// writes buffered after this call do not appear in later chunks.
    pub fn chunked_scan(&self) -> ScanCursor {
        let overlay = match &self.txn {
            Some(t) => t.overlay.clone(),
            None => FxHashMap::default(),
        };
        ScanCursor::with_overlay(Arc::clone(&self.db), self.at, overlay)
    }

    /// Materializes the session's view (convenience for tests/examples).
    pub fn scan_collect(&mut self) -> Result<Vec<Record>> {
        let mut out = Vec::new();
        self.scan_with(|r| out.push(r.clone()))?;
        Ok(out)
    }

    /// Applies the buffered transaction to the store, journals it, and
    /// creates a commit — the point of atomic visibility (§2.2.3).
    ///
    /// Commits go through the sharded group-commit path
    /// ([`Database::commit_txn`](crate::db::Database::commit_txn)): the
    /// journal entries are sealed inside the same critical section that
    /// stamps the commit into the version graph, so journal order always
    /// matches commit order (what
    /// [`Database::open`](crate::db::Database::open) replays is exactly
    /// what happened), while the apply/prepare work and the fsync run
    /// concurrently with commits on disjoint branches. Empty transactions
    /// are journaled too: they still create a commit, and replay must
    /// reproduce the commit-id sequence.
    pub fn commit(&mut self) -> Result<CommitId> {
        let branch = self.write_branch()?;
        let (ops, _locks) = match self.txn.take() {
            Some(t) => (t.ops, t.locks),
            None => {
                // Empty transaction: still a legal commit (snapshot point),
                // and still guarded by the branch's exclusive lock.
                let mut locks = self.db.locks.begin();
                locks.lock(branch, LockMode::Exclusive)?;
                (Vec::new(), locks)
            }
        };
        let schema = self.db.with_store(|s| s.schema().clone());
        let mut entries = Vec::with_capacity(ops.len() + 1);
        entries.push(journal::encode_begin(branch));
        for op in &ops {
            entries.push(match op {
                SessionOp::Insert(r) => journal::encode_insert(r, &schema)?,
                SessionOp::Update(r) => journal::encode_update(r, &schema)?,
                SessionOp::Delete(k) => journal::encode_delete(*k),
            });
        }
        self.db.commit_txn(branch, &entries, &ops)
        // _locks drop here: shrinking phase, after the commit is sealed
        // (the fsync wait inside commit_txn happens before we return, so
        // the exclusive branch lock outlives the durability point).
    }

    /// Discards the buffered transaction ("rolled back if the client
    /// crashes or disconnects before committing"). Nothing reaches the
    /// journal until commit, so rollback is purely local.
    pub fn rollback(&mut self) {
        if let Some(txn) = self.txn.take() {
            drop(txn.locks);
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Disconnect without commit: roll back.
        self.rollback();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EngineKind;
    use decibel_common::schema::{ColumnType, Schema};
    use decibel_pagestore::StoreConfig;

    fn db(kind: EngineKind) -> (tempfile::TempDir, Arc<Database>) {
        let dir = tempfile::tempdir().unwrap();
        let db = Database::create(
            dir.path().join("db"),
            kind,
            Schema::new(2, ColumnType::U32),
            &StoreConfig::test_default(),
        )
        .unwrap();
        (dir, db)
    }

    fn rec(k: u64, v: u64) -> Record {
        Record::new(k, vec![v, v])
    }

    #[test]
    fn writes_invisible_until_commit() {
        let (_d, database) = db(EngineKind::Hybrid);
        let mut writer = database.session();
        writer.insert(rec(1, 10)).unwrap();
        // The store itself has nothing yet.
        assert_eq!(
            database.with_store(|s| s.live_count(VersionRef::Branch(BranchId::MASTER)).unwrap()),
            0
        );
        // But the writing session reads its own write.
        assert_eq!(writer.get(1).unwrap().unwrap().field(0), 10);
        writer.commit().unwrap();
        assert_eq!(
            database.with_store(|s| s.live_count(VersionRef::Branch(BranchId::MASTER)).unwrap()),
            1
        );
    }

    #[test]
    fn rollback_discards_buffered_ops() {
        let (_d, database) = db(EngineKind::TupleFirstBranch);
        let mut s = database.session();
        s.insert(rec(1, 10)).unwrap();
        s.rollback();
        assert_eq!(s.get(1).unwrap(), None);
        s.commit().unwrap(); // empty commit is fine
        assert_eq!(
            database.with_store(|st| st.live_count(VersionRef::Branch(BranchId::MASTER)).unwrap()),
            0
        );
    }

    #[test]
    fn drop_rolls_back_and_releases_locks() {
        let (_d, database) = db(EngineKind::Hybrid);
        {
            let mut s = database.session();
            s.insert(rec(1, 1)).unwrap();
            // dropped without commit
        }
        let mut s2 = database.session();
        s2.insert(rec(1, 2)).unwrap(); // lock is free again, key never existed
        s2.commit().unwrap();
        assert_eq!(s2.get(1).unwrap().unwrap().field(0), 2);
    }

    #[test]
    fn session_scan_merges_overlay() {
        let (_d, database) = db(EngineKind::VersionFirst);
        let mut setup = database.session();
        setup.insert(rec(1, 1)).unwrap();
        setup.insert(rec(2, 2)).unwrap();
        setup.commit().unwrap();

        let mut s = database.session();
        s.update(rec(1, 99)).unwrap();
        s.delete(2).unwrap();
        s.insert(rec(3, 3)).unwrap();
        let mut view = s.scan_collect().unwrap();
        view.sort_by_key(|r| r.key());
        assert_eq!(view.len(), 2);
        assert_eq!(view[0].key(), 1);
        assert_eq!(view[0].field(0), 99);
        assert_eq!(view[1].key(), 3);
    }

    #[test]
    fn branch_and_checkout_flow() {
        let (_d, database) = db(EngineKind::Hybrid);
        let mut s = database.session();
        s.insert(rec(1, 1)).unwrap();
        let c1 = s.commit().unwrap();
        let dev = s.branch("dev").unwrap();
        assert_eq!(s.current(), VersionRef::Branch(dev));
        s.insert(rec(2, 2)).unwrap();
        s.commit().unwrap();
        // Master is untouched.
        s.checkout_branch("master").unwrap();
        assert_eq!(s.scan_collect().unwrap().len(), 1);
        // Historical checkout is read-only.
        s.checkout_commit(c1).unwrap();
        assert!(s.insert(rec(9, 9)).is_err());
    }

    #[test]
    fn conflicting_writers_block_or_timeout() {
        let (_d, database) = db(EngineKind::TupleFirstBranch);
        let mut a = database.session();
        a.insert(rec(1, 1)).unwrap(); // holds exclusive lock on master
        let mut b = database.session();
        let err = b.insert(rec(2, 2)).unwrap_err();
        assert!(matches!(err, DbError::LockContention { .. }));
        a.commit().unwrap();
        b.insert(rec(2, 2)).unwrap();
        b.commit().unwrap();
    }

    #[test]
    fn duplicate_validation_through_overlay() {
        let (_d, database) = db(EngineKind::Hybrid);
        let mut s = database.session();
        s.insert(rec(1, 1)).unwrap();
        assert!(matches!(
            s.insert(rec(1, 2)),
            Err(DbError::DuplicateKey { key: 1 })
        ));
        assert!(matches!(
            s.update(rec(5, 0)),
            Err(DbError::KeyNotFound { key: 5 })
        ));
        s.delete(1).unwrap();
        // Deleted in overlay → reinsert is legal.
        s.insert(rec(1, 3)).unwrap();
        s.commit().unwrap();
        assert_eq!(s.get(1).unwrap().unwrap().field(0), 3);
    }

    #[test]
    fn failed_or_noop_writes_do_not_hold_the_branch_lock() {
        let (_d, database) = db(EngineKind::Hybrid);
        let mut setup = database.session();
        setup.insert(rec(1, 1)).unwrap();
        setup.commit().unwrap();
        drop(setup);

        let mut a = database.session();
        // Each of these auto-begins a transaction, fails validation (or
        // no-ops), buffers nothing — and must release the exclusive lock.
        assert!(matches!(
            a.insert(rec(1, 2)),
            Err(DbError::DuplicateKey { key: 1 })
        ));
        assert!(matches!(
            a.update(rec(9, 0)),
            Err(DbError::KeyNotFound { key: 9 })
        ));
        assert!(!a.delete(9).unwrap());
        // Another session can write immediately: no lock is stuck behind
        // session `a`'s rejected writes.
        let mut b = database.session();
        b.insert(rec(2, 2)).unwrap();
        b.commit().unwrap();

        // Inside an open transaction, a rejected or no-op write keeps the
        // lock (2PL: the validating reads joined the transaction's scope).
        a.insert(rec(3, 3)).unwrap();
        assert!(!a.delete(9).unwrap());
        assert!(matches!(
            b.insert(rec(4, 4)).unwrap_err(),
            DbError::LockContention { .. }
        ));
        a.commit().unwrap();
        b.insert(rec(4, 4)).unwrap();
        b.commit().unwrap();
    }

    #[test]
    fn wal_records_committed_txns() {
        let (_d, database) = db(EngineKind::Hybrid);
        let mut s = database.session();
        s.insert(rec(1, 1)).unwrap();
        s.commit().unwrap();
        drop(s);
        let txns = decibel_pagestore::Wal::recover(database.dir().join("wal.log"))
            .unwrap()
            .txns;
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].entries.len(), 2);
        assert_eq!(txns[0].entries[0][0], 0u8); // branch header
        assert_eq!(txns[0].entries[1][0], 1u8); // insert opcode
    }

    #[test]
    fn in_txn_reads_keep_branch_locked() {
        let (_d, database) = db(EngineKind::Hybrid);
        let mut a = database.session();
        a.insert(rec(1, 1)).unwrap();
        let _ = a.get(1).unwrap(); // read inside the open transaction
                                   // A second session cannot even read the branch while the writer's
                                   // transaction is open (writer holds the exclusive branch lock).
        let mut b = database.session();
        assert!(matches!(
            b.scan_collect().unwrap_err(),
            DbError::LockContention { .. }
        ));
        a.commit().unwrap();
        assert_eq!(b.scan_collect().unwrap().len(), 1);
    }

    #[test]
    fn commit_checkout_reads_are_lock_free() {
        let (_d, database) = db(EngineKind::Hybrid);
        let mut setup = database.session();
        setup.insert(rec(1, 1)).unwrap();
        let c1 = setup.commit().unwrap();
        // A writer holds the exclusive branch lock...
        let mut writer = database.session();
        writer.insert(rec(2, 2)).unwrap();
        // ...but reading the immutable commit needs no branch lock.
        let mut reader = database.session();
        reader.checkout_commit(c1).unwrap();
        assert_eq!(reader.scan_collect().unwrap().len(), 1);
        writer.commit().unwrap();
    }
}
