//! Logical redo journaling over the page store's [`Wal`].
//!
//! The paper notes that "fault tolerance and recovery can be done by
//! employing standard write-ahead logging techniques on writes" (§2.1).
//! This module defines the *logical* log record format layered on the
//! physical WAL ([`decibel_pagestore::Wal`]): every state-changing
//! operation that flows through the public [`Database`](crate::db::Database)
//! / [`Session`](crate::session::Session) surface — record modifications,
//! commits, branch creations, and merges — is encoded here, and
//! [`Database::open`](crate::db::Database::open) replays the journal to
//! reconstruct the store.
//!
//! Replay is deterministic: branch ids and commit ids are dense and
//! allocated in creation order by every engine, so re-applying the journal
//! in commit order reproduces the exact id sequence of the original
//! execution, which keeps journaled references (e.g. "branch 3 was forked
//! from commit 7") meaningful across restarts. Group commit does not
//! weaken this: concurrent committers append and seal inside the global
//! sequencing section (see
//! [`Database::commit_txn`](crate::db::Database::commit_txn)), so the
//! journal's transaction order always matches commit-id order even when
//! several transactions shared one fsync — and a crash mid-group loses
//! only an un-synced *suffix* of that order, never a transaction in the
//! middle of it.
//!
//! Journaled transactions come in three shapes:
//!
//! * a **session commit**: an [`OP_BEGIN`] header naming the branch,
//!   followed by any number of insert/update/delete entries, replayed as
//!   the same ops plus a `commit` on that branch (an empty transaction is
//!   just the header — a snapshot-point commit);
//! * a **branch creation**: a single [`OP_BRANCH`] entry;
//! * a **merge**: a single [`OP_MERGE`] entry.

use decibel_common::error::{DbError, Result};
use decibel_common::ids::{BranchId, CommitId};
use decibel_common::record::Record;
use decibel_common::schema::Schema;
use decibel_common::varint;
use decibel_pagestore::RecoveredTxn;

use crate::store::VersionedStore;
use crate::types::{MergePolicy, VersionRef};

/// Transaction header: `[OP_BEGIN][varint branch]`. The ops that follow
/// apply to this branch; replay seals them with a `commit`.
pub(crate) const OP_BEGIN: u8 = 0;
/// `[OP_INSERT][record image]` (fixed width per the schema).
pub(crate) const OP_INSERT: u8 = 1;
/// `[OP_UPDATE][record image]`.
pub(crate) const OP_UPDATE: u8 = 2;
/// `[OP_DELETE][varint key]`.
pub(crate) const OP_DELETE: u8 = 3;
/// `[OP_BRANCH][tag: 0=branch/1=commit][varint from-id][name utf-8]`.
pub(crate) const OP_BRANCH: u8 = 4;
/// `[OP_MERGE][varint into][varint from][policy: 0=two/1=three-way][prefer_left]`.
pub(crate) const OP_MERGE: u8 = 5;

/// Encodes a transaction header binding the ops that follow to `branch`.
pub(crate) fn encode_begin(branch: BranchId) -> Vec<u8> {
    let mut out = vec![OP_BEGIN];
    varint::write_u64(&mut out, branch.raw() as u64);
    out
}

fn encode_record(op: u8, record: &Record, schema: &Schema) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(1 + schema.record_size());
    out.push(op);
    out.extend_from_slice(&record.to_bytes(schema)?);
    Ok(out)
}

/// Encodes a buffered insert.
pub(crate) fn encode_insert(record: &Record, schema: &Schema) -> Result<Vec<u8>> {
    encode_record(OP_INSERT, record, schema)
}

/// Encodes a buffered update.
pub(crate) fn encode_update(record: &Record, schema: &Schema) -> Result<Vec<u8>> {
    encode_record(OP_UPDATE, record, schema)
}

/// Encodes a buffered delete.
pub(crate) fn encode_delete(key: u64) -> Vec<u8> {
    let mut out = vec![OP_DELETE];
    varint::write_u64(&mut out, key);
    out
}

/// Encodes a branch creation (`name` forked from `from`).
pub(crate) fn encode_branch(name: &str, from: VersionRef) -> Vec<u8> {
    let mut out = vec![OP_BRANCH];
    match from {
        VersionRef::Branch(b) => {
            out.push(0);
            varint::write_u64(&mut out, b.raw() as u64);
        }
        VersionRef::Commit(c) => {
            out.push(1);
            varint::write_u64(&mut out, c.raw());
        }
    }
    out.extend_from_slice(name.as_bytes());
    out
}

/// Encodes a merge of `from` into `into` under `policy`.
pub(crate) fn encode_merge(into: BranchId, from: BranchId, policy: MergePolicy) -> Vec<u8> {
    let mut out = vec![OP_MERGE];
    varint::write_u64(&mut out, into.raw() as u64);
    varint::write_u64(&mut out, from.raw() as u64);
    match policy {
        MergePolicy::TwoWay { prefer_left } => {
            out.push(0);
            out.push(prefer_left as u8);
        }
        MergePolicy::ThreeWay { prefer_left } => {
            out.push(1);
            out.push(prefer_left as u8);
        }
    }
    out
}

fn corrupt(what: &str) -> DbError {
    DbError::corrupt(format!("journal: {what}"))
}

fn read_branch_id(entry: &[u8], pos: &mut usize) -> Result<BranchId> {
    Ok(BranchId(varint::read_u64(entry, pos)? as u32))
}

/// Replays recovered transactions (in commit order) into a store,
/// returning the number of transactions applied.
///
/// `txns` must be exactly the transactions **not** contained in the
/// store's current state: the full history for a freshly initialized
/// store (the cold-open path), or the post-watermark suffix for a store
/// reopened from a checkpoint — anything already applied would
/// double-apply, anything skipped is lost.
pub(crate) fn replay(store: &mut dyn VersionedStore, txns: &[RecoveredTxn]) -> Result<u64> {
    let schema = store.schema().clone();
    let mut applied = 0u64;
    for txn in txns {
        let Some((first, rest)) = txn.entries.split_first() else {
            continue; // commit marker with no entries: nothing to redo
        };
        match first.first().copied() {
            Some(OP_BEGIN) => {
                let mut pos = 1usize;
                let branch = read_branch_id(first, &mut pos)?;
                for entry in rest {
                    match entry.first().copied() {
                        Some(OP_INSERT) => {
                            store.insert(branch, Record::read_from(&schema, &entry[1..])?)?;
                        }
                        Some(OP_UPDATE) => {
                            store.update(branch, Record::read_from(&schema, &entry[1..])?)?;
                        }
                        Some(OP_DELETE) => {
                            let mut pos = 1usize;
                            let key = varint::read_u64(entry, &mut pos)?;
                            store.delete(branch, key)?;
                        }
                        _ => return Err(corrupt("unexpected op inside a session transaction")),
                    }
                }
                store.commit(branch)?;
            }
            Some(OP_BRANCH) => {
                let tag = *first.get(1).ok_or_else(|| corrupt("truncated branch op"))?;
                let mut pos = 2usize;
                let id = varint::read_u64(first, &mut pos)?;
                let from = match tag {
                    0 => VersionRef::Branch(BranchId(id as u32)),
                    1 => VersionRef::Commit(CommitId(id)),
                    _ => return Err(corrupt("bad branch-source tag")),
                };
                let name = std::str::from_utf8(&first[pos..])
                    .map_err(|_| corrupt("branch name is not utf-8"))?;
                store.create_branch(name, from)?;
            }
            Some(OP_MERGE) => {
                let mut pos = 1usize;
                let into = read_branch_id(first, &mut pos)?;
                let from = read_branch_id(first, &mut pos)?;
                let tag = *first
                    .get(pos)
                    .ok_or_else(|| corrupt("truncated merge op"))?;
                let prefer_left = *first
                    .get(pos + 1)
                    .ok_or_else(|| corrupt("truncated merge op"))?
                    != 0;
                let policy = match tag {
                    0 => MergePolicy::TwoWay { prefer_left },
                    1 => MergePolicy::ThreeWay { prefer_left },
                    _ => return Err(corrupt("bad merge-policy tag")),
                };
                store.merge(into, from, policy)?;
            }
            _ => return Err(corrupt("unknown transaction header")),
        }
        applied += 1;
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decibel_common::schema::ColumnType;

    #[test]
    fn begin_and_delete_round_trip() {
        let begin = encode_begin(BranchId(7));
        assert_eq!(begin[0], OP_BEGIN);
        let mut pos = 1;
        assert_eq!(varint::read_u64(&begin, &mut pos).unwrap(), 7);

        let del = encode_delete(u64::MAX);
        assert_eq!(del[0], OP_DELETE);
        let mut pos = 1;
        assert_eq!(varint::read_u64(&del, &mut pos).unwrap(), u64::MAX);
    }

    #[test]
    fn record_ops_round_trip() {
        let schema = Schema::new(3, ColumnType::U32);
        let rec = Record::new(42, vec![1, 2, 3]);
        for (encode, op) in [
            (
                encode_insert as fn(&Record, &Schema) -> Result<Vec<u8>>,
                OP_INSERT,
            ),
            (encode_update, OP_UPDATE),
        ] {
            let bytes = encode(&rec, &schema).unwrap();
            assert_eq!(bytes[0], op);
            assert_eq!(Record::read_from(&schema, &bytes[1..]).unwrap(), rec);
        }
    }

    #[test]
    fn branch_and_merge_encodings_are_tagged() {
        let b = encode_branch("dev", VersionRef::Commit(CommitId(9)));
        assert_eq!((b[0], b[1]), (OP_BRANCH, 1));
        assert!(b.ends_with(b"dev"));

        let m = encode_merge(
            BranchId(1),
            BranchId(2),
            MergePolicy::ThreeWay { prefer_left: true },
        );
        assert_eq!(m[0], OP_MERGE);
        assert_eq!(&m[m.len() - 2..], &[1, 1]);
    }
}
