//! The `Database`: a shared, concurrency-first handle over a versioned
//! store.
//!
//! "Users interact with Decibel by opening a connection to the Decibel
//! server, which creates a session. A session captures the user's state,
//! i.e., the commit (or the branch) that the operations the user issues
//! will read or modify. Concurrent transactions by multiple users on the
//! same version (but different sessions) are isolated from each other
//! through two-phase locking" (§2.2.3).
//!
//! # Concurrency model: the sharded commit path
//!
//! Commits no longer serialize on one store-wide write lock. The lock
//! hierarchy, outermost first:
//!
//! 1. **Branch 2PL** ([`LockManager`]) — the paper's isolation mechanism,
//!    taken by sessions before anything below, so the levels cannot
//!    deadlock against each other.
//! 2. **Store lock** — commits and reads hold it *shared*; only
//!    engine-structural admin work (branch creation, merge, checkpoint,
//!    the `with_store_mut` escape hatch) holds it *exclusive*. Because
//!    every lower-level lock is only ever taken under the shared store
//!    lock, acquiring it exclusively quiesces the whole commit path.
//! 3. **Shard lock** ([`ShardSet`]) — each committing session holds the
//!    write lock of its branch's shard across apply + prepare + sequence,
//!    so commits to *disjoint* branches (different shards) run their
//!    engine work concurrently while same-branch commits serialize.
//!    Non-session reads of branch heads take shard *read* locks, keeping
//!    every builder terminal a read-committed snapshot.
//! 4. **Sequencing mutex** — a short global critical section in which the
//!    transaction id is allocated, journal entries are appended, the
//!    commit is stamped into the version graph, and the WAL transaction
//!    is sealed. Ids therefore seal in strictly increasing order — the
//!    invariant the checkpoint watermark rests on — while all per-branch
//!    heavy lifting stays outside it.
//! 5. **Engine-interior locks** — fine-grained structure locks inside each
//!    engine (see the engine module docs); leaves of the hierarchy.
//!
//! Group commit: sealed transactions accumulate in a shared WAL buffer,
//! and the *fsync happens outside every lock above*. The first committer
//! to reach [`Wal::sync`] becomes the group leader and flushes every
//! sealed transaction in one write + fsync; the others observe their
//! seal already durable and return without touching the disk. Under k
//! concurrent committers one fsync amortizes over up to k transactions
//! (see [`Database::journal_stats`]).
//!
//! Use a [`Session`] (whose reads take the shared branch lock) when a
//! sequence of reads must be stable against concurrent committers.
//!
//! [`Database::create`] and [`Database::open`] return `Arc<Database>`;
//! sessions own a clone of that `Arc` and are `Send + 'static`, which makes
//! the one-session-per-thread server shape expressible directly.
//!
//! # Durability
//!
//! Every state-changing operation on the public surface — session commits,
//! [`Database::create_branch`], [`Database::merge`] — is journaled to the
//! WAL as a logical redo record (see [`crate::journal`]) and sealed in the
//! same sequencing critical section that stamps it into the version graph,
//! so the journal's commit order always matches the store's commit order.
//! [`Database::flush`] is a full checkpoint: it persists every engine
//! structure, records the covered journal watermark in the `CHECKPOINT`
//! file, and truncates the WAL — bounding both the log and the cost of
//! reopening. [`Database::open`] loads the checkpointed state and replays
//! only the journal suffix past the watermark (the full history when no
//! checkpoint exists), which recovers transactions that committed but
//! were never flushed. [`Database::with_store_mut`] is the one escape
//! hatch that bypasses the journal; state written through it survives a
//! reopen only if a later `flush` checkpointed it.
//!
//! If a commit marker itself fails to persist (e.g. the disk fills while
//! sealing), or a transaction fails partway through mutating the store,
//! the store state can no longer be represented in the journal; the
//! database then refuses further journaled writes — reads keep working —
//! until the directory is reopened, which restores the journaled prefix
//! of history (see [`Database::journaled`]).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use decibel_common::env::DiskEnv;
use decibel_common::error::{DbError, Result};
use decibel_common::fsio::sync_parent_dir_in;
use decibel_common::ids::{BranchId, CommitId};
use decibel_common::schema::{ColumnType, Schema};
use decibel_common::Projection;
use decibel_obs::{family, Counter, Gauge, Histogram, Registry};
use decibel_pagestore::{LockManager, LockMode, StoreConfig, Wal};
use parking_lot::{Mutex, RwLock};

use crate::checkpoint;
use crate::cursor::{MultiScanCursor, ScanCursor};
use crate::engine::{
    HybridEngine, TupleFirstBranchEngine, TupleFirstTupleEngine, VersionFirstEngine,
};
use crate::journal;
use crate::query::build::{BranchSel, MultiReadBuilder, ReadBuilder};
use crate::query::plan::ScanPlan;
use crate::query::{execute_metered, Predicate, Query, QueryOutput, ScanMetrics};
use crate::session::Session;
use crate::shard::{SessionOp, ShardSet};
use crate::store::VersionedStore;
use crate::types::{DiffResult, EngineKind, MergePolicy, MergeResult, VersionRef};

/// Manifest file recording the engine kind and schema of a database
/// directory, so [`Database::open`] needs no out-of-band knowledge.
const MANIFEST: &str = "MANIFEST";
/// WAL file name inside a database directory.
const WAL_FILE: &str = "wal.log";
/// Engine data subdirectory inside a database directory.
const DATA_DIR: &str = "data";

/// A Decibel database instance: one versioned relation stored under a
/// directory by the chosen engine, shared by any number of sessions.
///
/// Constructors return `Arc<Database>`; clone the `Arc` (or call
/// [`Database::session`], which clones it for you) to hand the database to
/// other threads.
pub struct Database {
    pub(crate) store: RwLock<Box<dyn VersionedStore>>,
    pub(crate) locks: Arc<LockManager>,
    pub(crate) wal: Wal,
    pub(crate) next_txn: AtomicU64,
    /// Per-branch commit shards: disjoint branches commit concurrently,
    /// same-branch (and same-shard) commits serialize. Level 3 of the lock
    /// hierarchy (see the module docs). `pub(crate)` for the chunked scan
    /// cursor ([`crate::cursor`]), which re-acquires store + shard read
    /// locks per chunk.
    pub(crate) shards: ShardSet,
    /// The global sequencing mutex (level 4): id allocation + journal
    /// append + graph stamp + WAL seal, and nothing slower.
    seq: Mutex<()>,
    /// The metrics registry the whole stack registers its instruments
    /// with — adopted from [`StoreConfig::metrics`], so the buffer pool,
    /// heap files, and WAL of this database's engine share it. Exposed
    /// through [`Database::metrics`].
    metrics: Registry,
    /// Commit- and checkpoint-family instruments (see [`CoreMetrics`]).
    obs: CoreMetrics,
    /// Scan-family instruments, shared with the chunked cursors.
    pub(crate) scan_metrics: ScanMetrics,
    /// `DECIBEL_SLOW_MS` threshold parsed once at create/open: operations
    /// slower than this log a one-line summary to stderr.
    slow: Option<Duration>,
    /// False once the store diverged from the journal — a commit marker
    /// failed to persist, or an apply failed after mutating the store —
    /// so further journaled writes are refused (see
    /// [`Database::journaled`]).
    journal_intact: AtomicBool,
    /// Whether checkpoint installation fsyncs (from [`StoreConfig::fsync`]).
    fsync: bool,
    /// Disk environment every database-level file (manifest, WAL,
    /// checkpoint) goes through (from [`StoreConfig::env`]); engines hold
    /// their own clone via their buffer pools.
    env: Arc<dyn DiskEnv>,
    /// Journal transactions replayed by the `open` that built this handle
    /// (zero for [`Database::create`]); see [`Database::replayed_on_open`].
    replayed: u64,
    dir: PathBuf,
}

impl Database {
    /// Creates a fresh database in `dir` using the given storage scheme.
    ///
    /// Writes a manifest so the directory can later be reopened with
    /// [`Database::open`]. Any stale journal in `dir` is discarded — a
    /// created database starts from empty history.
    pub fn create(
        dir: impl AsRef<Path>,
        kind: EngineKind,
        schema: Schema,
        config: &StoreConfig,
    ) -> Result<Arc<Database>> {
        let dir = dir.as_ref().to_path_buf();
        let env = Arc::clone(&config.env);
        env.create_dir_all(&dir)
            .map_err(|e| DbError::io("creating database dir", e))?;
        // Discard prior state *before* the manifest goes down: a crash
        // after writing the manifest must not leave it pointing at a stale
        // journal, checkpoint, or engine data from the previous database,
        // which a later `open` would replay — possibly under a different
        // schema. The checkpoint goes first: a stale `CHECKPOINT` paired
        // with a fresh (empty) WAL would reopen as the *old* database.
        let stale_checkpoint = dir.join(checkpoint::FILE);
        if env.exists(&stale_checkpoint) {
            env.remove_file(&stale_checkpoint)
                .map_err(|e| DbError::io("clearing stale checkpoint", e))?;
            if config.fsync {
                sync_parent_dir_in(env.as_ref(), &stale_checkpoint)?;
            }
        }
        let data = clear_engine_data(env.as_ref(), &dir)?;
        let wal_path = dir.join(WAL_FILE);
        if env.exists(&wal_path) {
            env.remove_file(&wal_path)
                .map_err(|e| DbError::io("clearing stale WAL", e))?;
            if config.fsync {
                sync_parent_dir_in(env.as_ref(), &wal_path)?;
            }
        }
        write_manifest(env.as_ref(), &dir, kind, &schema)?;
        let store = Self::build_store(kind, data, schema, config)?;
        let metrics = config.metrics.clone();
        let wal = Wal::open_in_metered(env.as_ref(), wal_path, config.fsync, &metrics)?;
        Ok(Arc::new(Database {
            store: RwLock::new(store),
            locks: Arc::new(LockManager::new(Duration::from_secs(2))),
            wal,
            next_txn: AtomicU64::new(1),
            shards: ShardSet::new(),
            seq: Mutex::new(()),
            obs: CoreMetrics::register(&metrics),
            scan_metrics: ScanMetrics::register(&metrics),
            metrics,
            slow: slow_threshold(),
            journal_intact: AtomicBool::new(true),
            fsync: config.fsync,
            env,
            replayed: 0,
            dir,
        }))
    }

    /// Reopens a database directory created by [`Database::create`],
    /// restoring every transaction that committed through the public API —
    /// including commits that were never [`flush`](Database::flush)ed.
    ///
    /// # Checkpointed recovery
    ///
    /// When the directory holds a `CHECKPOINT` (written by
    /// [`Database::flush`]), the engine is reopened directly from its
    /// flushed on-disk state — heap files opened at the checkpoint's
    /// recorded coverage (any later bytes trimmed), bitmap columns and
    /// commit offsets decoded from the checkpoint snapshot — and only
    /// journal entries **above the checkpoint's watermark** transaction id
    /// are replayed. Reopen cost is therefore O(state + delta since last
    /// flush), not O(total history), and the WAL on disk is bounded by
    /// the post-checkpoint suffix. With no checkpoint (a never-flushed
    /// database), the store is rebuilt by replaying the logical journal
    /// from the beginning of history; either way, engines allocate branch
    /// and commit ids deterministically, so the recovered store is
    /// identical to the one that crashed.
    ///
    /// The crash ordering of [`Database::flush`] (state → watermark → log
    /// truncate) makes every interleaving recoverable: a crash before the
    /// watermark lands reopens from the previous checkpoint (the newer
    /// flushed bytes are cut back to its coverage and regenerated from the
    /// log); a crash after the watermark but before the truncate skips the
    /// covered prefix by id; a crash after the truncate finds only the
    /// suffix. A `CHECKPOINT` that is present but unreadable is a hard
    /// error — the log was truncated against it, so falling back to full
    /// replay would silently lose the covered history.
    ///
    /// Writes that bypassed the journal via [`Database::with_store_mut`]
    /// are recovered only if a later `flush` checkpointed them. On success
    /// an unclean or partially-covered journal is compacted down to
    /// exactly the uncovered committed suffix, so orphaned entries from a
    /// torn commit cannot be resurrected by a later transaction.
    ///
    /// ```
    /// use decibel_core::{Database, EngineKind};
    /// use decibel_common::record::Record;
    /// use decibel_common::schema::{ColumnType, Schema};
    /// use decibel_pagestore::StoreConfig;
    ///
    /// let dir = tempfile::tempdir().unwrap();
    /// let config = StoreConfig::default();
    /// let schema = Schema::new(2, ColumnType::U32);
    /// {
    ///     let db = Database::create(dir.path(), EngineKind::Hybrid, schema, &config).unwrap();
    ///     let mut session = db.session();
    ///     session.insert(Record::new(1, vec![10, 20])).unwrap();
    ///     session.commit().unwrap();
    ///     // dropped without flush: the commit lives only in the journal
    /// }
    /// let db = Database::open(dir.path(), &config).unwrap();
    /// let rows = db.read(decibel_core::VersionRef::Branch(
    ///     decibel_common::ids::BranchId::MASTER,
    /// ))
    /// .collect()
    /// .unwrap();
    /// assert_eq!(rows.len(), 1);
    /// assert_eq!(rows[0].field(1), 20);
    /// ```
    pub fn open(dir: impl AsRef<Path>, config: &StoreConfig) -> Result<Arc<Database>> {
        let dir = dir.as_ref().to_path_buf();
        let env = Arc::clone(&config.env);
        let (kind, schema) = read_manifest(env.as_ref(), &dir)?;
        // Recover the journal first — it is read-only, so an unreadable or
        // corrupt WAL fails the open before anything is destroyed.
        let wal_path = dir.join(WAL_FILE);
        let recovery = Wal::recover_in(env.as_ref(), &wal_path)?;
        let cp = checkpoint::load(env.as_ref(), &dir)?;
        let (mut store, watermark, replay_from) = match cp {
            Some(cp) => {
                if cp.kind != kind {
                    return Err(DbError::corrupt(format!(
                        "checkpoint engine {} disagrees with manifest engine {}",
                        cp.kind.name(),
                        kind.name()
                    )));
                }
                // Reopen from the flushed state the checkpoint describes;
                // replay resumes past the watermark. Ids seal in increasing
                // order (see `journaled`), so the uncovered transactions
                // are a suffix of the commit-ordered recovery.
                let store =
                    Self::open_store(kind, dir.join(DATA_DIR), schema, config, &cp.payload)?;
                let from = recovery
                    .txns
                    .iter()
                    .position(|t| t.txn > cp.watermark)
                    .unwrap_or(recovery.txns.len());
                debug_assert!(
                    recovery.txns[from..].iter().all(|t| t.txn > cp.watermark),
                    "sealed transaction ids must be monotone"
                );
                (store, cp.watermark, from)
            }
            None => {
                // No checkpoint: the data directory is derived state (the
                // journal is the whole truth); rebuild it from scratch.
                let data = clear_engine_data(env.as_ref(), &dir)?;
                (Self::build_store(kind, data, schema, config)?, 0, 0)
            }
        };
        let suffix = &recovery.txns[replay_from..];
        let replay_started = Instant::now();
        let replayed = journal::replay(store.as_mut(), suffix)?;
        store.flush()?;
        // Compact the log down to exactly the uncovered committed suffix.
        // A torn commit leaves orphaned data entries recovery ignores, but
        // a later commit marker reusing their transaction id would seal
        // them as phantom ops; and entries at or below the watermark are
        // already in the checkpointed state, so neither may survive the
        // reopen. A clean, fully-uncovered log — the common case — is
        // appended to as-is.
        if !recovery.clean || replay_from > 0 {
            Wal::rewrite_in(env.as_ref(), &wal_path, suffix, config.fsync)?;
        }
        // Belt and braces: allocate past every id the log ever saw
        // (committed or orphaned) and past the checkpoint watermark.
        let next_txn = recovery.max_txn.max(watermark) + 1;
        let metrics = config.metrics.clone();
        let wal = Wal::open_in_metered(env.as_ref(), &wal_path, config.fsync, &metrics)?;
        let obs = CoreMetrics::register(&metrics);
        obs.recovery_us.record_duration(replay_started.elapsed());
        obs.replayed_txns.add(replayed);
        Ok(Arc::new(Database {
            store: RwLock::new(store),
            locks: Arc::new(LockManager::new(Duration::from_secs(2))),
            wal,
            next_txn: AtomicU64::new(next_txn),
            shards: ShardSet::new(),
            seq: Mutex::new(()),
            obs,
            scan_metrics: ScanMetrics::register(&metrics),
            metrics,
            slow: slow_threshold(),
            journal_intact: AtomicBool::new(true),
            fsync: config.fsync,
            env,
            replayed,
            dir,
        }))
    }

    /// Initializes a bare engine of the given kind under `dir` — the single
    /// factory behind [`Database::create`], also used by the benchmark
    /// harness, which measures storage engines below the connection layer.
    pub fn build_store(
        kind: EngineKind,
        dir: impl AsRef<Path>,
        schema: Schema,
        config: &StoreConfig,
    ) -> Result<Box<dyn VersionedStore>> {
        let dir = dir.as_ref();
        Ok(match kind {
            EngineKind::TupleFirstBranch => {
                Box::new(TupleFirstBranchEngine::init(dir, schema, config)?)
            }
            EngineKind::TupleFirstTuple => {
                Box::new(TupleFirstTupleEngine::init(dir, schema, config)?)
            }
            EngineKind::VersionFirst => Box::new(VersionFirstEngine::init(dir, schema, config)?),
            EngineKind::Hybrid => Box::new(HybridEngine::init(dir, schema, config)?),
        })
    }

    /// Reopens an engine of the given kind from checkpoint-flushed state
    /// under `dir` — the open-path counterpart of [`Database::build_store`].
    /// `snapshot` is the engine payload a [`VersionedStore::checkpoint`]
    /// call produced (carried by the `CHECKPOINT` file).
    fn open_store(
        kind: EngineKind,
        dir: impl AsRef<Path>,
        schema: Schema,
        config: &StoreConfig,
        snapshot: &[u8],
    ) -> Result<Box<dyn VersionedStore>> {
        let dir = dir.as_ref();
        Ok(match kind {
            EngineKind::TupleFirstBranch => Box::new(TupleFirstBranchEngine::open_from(
                dir, schema, config, snapshot,
            )?),
            EngineKind::TupleFirstTuple => Box::new(TupleFirstTupleEngine::open_from(
                dir, schema, config, snapshot,
            )?),
            EngineKind::VersionFirst => Box::new(VersionFirstEngine::open_from(
                dir, schema, config, snapshot,
            )?),
            EngineKind::Hybrid => Box::new(HybridEngine::open_from(dir, schema, config, snapshot)?),
        })
    }

    /// Opens a session, initially checked out at the head of `master`.
    ///
    /// The session owns an `Arc` to this database, so it can be moved to
    /// another thread; open one session per connection/thread.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(Arc::clone(self))
    }

    /// Starts a fluent single-version read:
    /// `db.read(v).filter(p).collect()`.
    pub fn read(&self, version: impl Into<VersionRef>) -> ReadBuilder<'_> {
        ReadBuilder::new(self, version.into())
    }

    /// Starts a fluent multi-branch read over an explicit branch list:
    /// `db.read_branches(&ids).parallel(n).annotated()`.
    pub fn read_branches(&self, branches: &[BranchId]) -> MultiReadBuilder<'_> {
        MultiReadBuilder::new(self, BranchSel::Explicit(branches.to_vec()))
    }

    /// Starts a fluent multi-branch read over every branch head (the
    /// paper's Q4 shape); `active_only` restricts to non-retired branches.
    pub fn read_heads(&self, active_only: bool) -> MultiReadBuilder<'_> {
        MultiReadBuilder::new(self, BranchSel::Heads { active_only })
    }

    /// Opens a resumable chunked scan of `version`: each
    /// [`ScanCursor::next_chunk`](crate::cursor::ScanCursor::next_chunk)
    /// re-acquires the store + shard read locks, emits up to the requested
    /// rows, and releases them — O(chunk) memory and zero lock time
    /// between chunks, at read-committed-per-chunk consistency (see
    /// [`crate::cursor`]). Scans run through the engine's projected
    /// pipeline: rows resume O(1) from engine tokens, the predicate is
    /// pushed to page level where it lowers, and only the projected
    /// columns are decoded.
    pub fn chunked_scan(
        self: &Arc<Self>,
        version: impl Into<VersionRef>,
        predicate: Predicate,
    ) -> ScanCursor {
        self.chunked_scan_projected(version, predicate, Projection::All)
    }

    /// [`Database::chunked_scan`] with an explicit column projection
    /// (non-projected fields of the streamed records read `0`).
    pub fn chunked_scan_projected(
        self: &Arc<Self>,
        version: impl Into<VersionRef>,
        predicate: Predicate,
        projection: Projection,
    ) -> ScanCursor {
        ScanCursor::new(
            Arc::clone(self),
            version.into(),
            ScanPlan::new(predicate, projection),
        )
    }

    /// Opens a resumable chunked multi-branch annotated scan — the
    /// streaming counterpart of
    /// [`Database::read_branches`]`.filter(p).annotated()`.
    pub fn chunked_multi_scan(
        self: &Arc<Self>,
        branches: Vec<BranchId>,
        predicate: Predicate,
    ) -> MultiScanCursor {
        self.chunked_multi_scan_projected(branches, predicate, Projection::All)
    }

    /// [`Database::chunked_multi_scan`] with an explicit column projection.
    pub fn chunked_multi_scan_projected(
        self: &Arc<Self>,
        branches: Vec<BranchId>,
        predicate: Predicate,
        projection: Projection,
    ) -> MultiScanCursor {
        MultiScanCursor::new(
            Arc::clone(self),
            branches,
            ScanPlan::new(predicate, projection),
        )
    }

    /// Runs a declarative query plan under the shared store lock, plus
    /// shard *read* locks for every branch head the plan touches — so the
    /// result is a read-committed snapshot even while commits to other
    /// branches proceed concurrently. Historical commits are immutable and
    /// need no shard lock.
    ///
    /// The fluent builders ([`Database::read`] / [`Database::read_branches`]
    /// / [`Database::read_heads`]) produce these plans; use `query` directly
    /// when you already hold a [`Query`] value.
    pub fn query(&self, query: &Query) -> Result<QueryOutput> {
        let started = Instant::now();
        let store = self.store.read();
        let branches = Self::query_branches(store.as_ref(), query);
        let _shards = self.shards.read_many(&branches);
        let out = execute_metered(store.as_ref(), query, &self.scan_metrics)?;
        self.note_slow("query", started.elapsed(), || format!("rows={}", out.len()));
        Ok(out)
    }

    /// The branch heads a query plan reads — the shards [`Database::query`]
    /// locks shared. Commit refs are immutable and contribute nothing.
    fn query_branches(store: &dyn VersionedStore, query: &Query) -> Vec<BranchId> {
        fn push(out: &mut Vec<BranchId>, v: VersionRef) {
            if let VersionRef::Branch(b) = v {
                out.push(b);
            }
        }
        let mut out = Vec::new();
        match query {
            Query::ScanVersion { version, .. } | Query::Aggregate { version, .. } => {
                push(&mut out, *version)
            }
            Query::PositiveDiff { left, right } | Query::VersionJoin { left, right, .. } => {
                push(&mut out, *left);
                push(&mut out, *right);
            }
            Query::HeadScan { .. } => {
                let n = store.graph().num_branches();
                out.extend((0..n).map(|b| BranchId(b as u32)));
            }
            Query::MultiBranchScan { branches, .. } => out.extend_from_slice(branches),
        }
        out
    }

    /// Materializes the symmetric difference of two versions (§2.2.3
    /// Difference) under the shared store lock and the shard read locks of
    /// any branch-head side.
    pub fn diff(
        &self,
        left: impl Into<VersionRef>,
        right: impl Into<VersionRef>,
    ) -> Result<DiffResult> {
        let (left, right) = (left.into(), right.into());
        let store = self.store.read();
        let mut branches = Vec::new();
        for v in [left, right] {
            if let VersionRef::Branch(b) = v {
                branches.push(b);
            }
        }
        let _shards = self.shards.read_many(&branches);
        store.diff(left, right)
    }

    /// Looks up a branch id by name.
    pub fn branch_id(&self, name: &str) -> Result<BranchId> {
        self.with_store(|s| s.graph().branch_by_name(name).map(|b| b.id))
    }

    /// The relation's schema (immutable for the life of the database, so
    /// callers — the wire server hands it to every connection — may clone
    /// it once and keep it).
    pub fn schema(&self) -> Schema {
        self.with_store(|s| s.schema().clone())
    }

    /// The storage scheme backing this database.
    pub fn engine_kind(&self) -> EngineKind {
        self.with_store(|s| s.kind())
    }

    /// Creates a branch named `name` rooted at `from` (journaled).
    pub fn create_branch(&self, name: &str, from: impl Into<VersionRef>) -> Result<BranchId> {
        let from = from.into();
        self.journaled(&[journal::encode_branch(name, from)], |store, dirty| {
            // Validate before the first mutation, so a duplicate name or
            // unknown source fails clean — without marking the journal
            // diverged.
            let graph = store.graph();
            graph.check_name_free(name)?;
            match from {
                VersionRef::Branch(b) => {
                    graph.branch(b)?;
                }
                VersionRef::Commit(c) => {
                    graph.commit(c)?;
                }
            }
            *dirty = true;
            store.create_branch(name, from)
        })
    }

    /// Merges branch `from` into branch `into` under `policy` (journaled).
    ///
    /// Takes the paper's branch-level locks — exclusive on the destination,
    /// shared on the source — for the duration of the merge.
    pub fn merge(
        &self,
        into: BranchId,
        from: BranchId,
        policy: MergePolicy,
    ) -> Result<MergeResult> {
        let mut locks = self.locks.begin();
        locks.lock(into, LockMode::Exclusive)?;
        locks.lock(from, LockMode::Shared)?;
        self.journaled(
            &[journal::encode_merge(into, from, policy)],
            |store, dirty| {
                store.graph().branch(into)?;
                store.graph().branch(from)?;
                *dirty = true;
                store.merge(into, from, policy)
            },
        )
    }

    /// Commits one session transaction through the sharded group-commit
    /// path — the hot path behind
    /// [`Session::commit`](crate::session::Session::commit).
    ///
    /// Under the **shared** store lock and the **exclusive** shard lock of
    /// `branch` (so disjoint branches run this concurrently, same-branch
    /// commits serialize), it:
    ///
    /// 1. applies the session's buffered `ops` to the branch's working
    ///    state ([`VersionedStore::apply_ops`]);
    /// 2. snapshots the branch state into its commit store
    ///    ([`VersionedStore::prepare_commit`]) — the per-branch heavy
    ///    lifting, still outside any global lock;
    /// 3. enters the sequencing mutex and, inside it, allocates the WAL
    ///    transaction id, appends `entries` under it, stamps the prepared
    ///    snapshot into the shared version graph
    ///    ([`VersionedStore::finalize_commit`]), and seals the WAL
    ///    transaction — so journal order, transaction-id order, and
    ///    commit-id order all agree, which is what replay determinism and
    ///    the checkpoint watermark rest on;
    /// 4. drops every lock and joins the WAL sync group: one fsync makes
    ///    the whole group of concurrently sealed transactions durable.
    ///
    /// The id is allocated only *after* apply + prepare succeeded, so a
    /// cleanly rejected transaction consumes no id and the watermark
    /// (`next_txn - 1`) stays exact. Any failure after the first mutation
    /// marks the journal diverged, exactly like [`Database::journaled`].
    pub(crate) fn commit_txn(
        &self,
        branch: BranchId,
        entries: &[Vec<u8>],
        ops: &[SessionOp],
    ) -> Result<CommitId> {
        let span = self.obs.commit_us.start();
        let store = self.store.read();
        self.journal_writable()?;
        // Probe the shard without blocking first, purely so contended
        // acquisitions are countable; the blocking fallback is the same
        // lock, and `lock_wait_us` covers both outcomes.
        let wait = Instant::now();
        let shard = match self.shards.try_write(branch) {
            Some(guard) => guard,
            None => {
                self.obs.shard_contention.inc();
                self.shards.write(branch)
            }
        };
        self.obs.lock_wait_us.record_duration(wait.elapsed());
        let gauge = self.obs.in_flight.enter();
        // 1. Apply the buffered writes to the branch's working state. The
        // ops were pre-validated under the exclusive branch lock, so a
        // failure here after the first mutation is divergence, not a clean
        // rejection.
        let mut dirty = false;
        if let Err(e) = store.apply_ops(branch, ops, &mut dirty) {
            if dirty {
                self.journal_intact.store(false, Ordering::Release);
            }
            return Err(e);
        }
        // 2. Per-branch commit snapshot, concurrent across shards.
        let prep = match store.prepare_commit(branch) {
            Ok(p) => p,
            Err(e) => {
                // The applied ops are no longer representable in the
                // journal (nothing was appended for them).
                self.journal_intact.store(false, Ordering::Release);
                return Err(e);
            }
        };
        // 3. Global sequencing: short critical section.
        let (ticket, cid) = {
            let _seq = self.seq.lock();
            // Re-check under the mutex: a concurrent committer may have
            // diverged the journal since the entry check.
            self.journal_writable()?;
            let txn = self.next_txn.fetch_add(1, Ordering::Relaxed);
            let sequenced = (|| {
                for entry in entries {
                    self.wal.append(txn, entry)?;
                }
                let cid = store.finalize_commit(branch, prep)?;
                let ticket = self.wal.seal(txn)?;
                Ok((ticket, cid))
            })();
            match sequenced {
                Ok(v) => v,
                Err(e) => {
                    // Applied-but-unjournaled store state: roll the
                    // unsealed entries out of the buffer and poison.
                    self.wal.rollback();
                    self.journal_intact.store(false, Ordering::Release);
                    return Err(e);
                }
            }
        };
        // 4. Group fsync outside every lock: drop the critical-section
        // guards first so other commits (and the group leader's flush)
        // proceed while we wait for durability.
        drop(gauge);
        drop(shard);
        drop(store);
        self.obs.grouped_txns.inc();
        self.wal.sync(ticket).inspect_err(|_| {
            self.journal_intact.store(false, Ordering::Release);
        })?;
        let elapsed = span.finish();
        self.note_slow("commit", elapsed, || {
            format!("branch={} entries={}", branch.raw(), entries.len())
        });
        Ok(cid)
    }

    /// Commit-path observability: fsync grouping and concurrency counters
    /// (see [`JournalStats`]). The benchmark's commit workload reads these
    /// to show k disjoint writers sharing fsyncs; tests read them to prove
    /// disjoint-branch commits really overlap.
    ///
    /// A thin compatibility view over [`Database::metrics`]: the same
    /// values live in the registry as `wal/flushes`, `commit/grouped_txns`,
    /// and the max of the `commit/in_flight` gauge.
    pub fn journal_stats(&self) -> JournalStats {
        JournalStats {
            wal_flushes: self.wal.flush_count(),
            grouped_txns: self.obs.grouped_txns.value(),
            max_concurrent_commits: self.obs.in_flight.max(),
        }
    }

    /// The metrics registry every layer of this database registers its
    /// instruments with: buffer pool and heap files (`pool`, part of
    /// `scan`), WAL (`wal`), the commit and checkpoint paths (`commit`,
    /// `checkpoint`), and the query layer (`scan`). Call
    /// [`Registry::snapshot`](decibel_obs::Registry::snapshot) for a
    /// consistent point-in-time reading, and
    /// [`Snapshot::diff`](decibel_obs::Snapshot::diff) to measure an
    /// interval.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Logs a one-line summary to stderr when `elapsed` crosses the
    /// `DECIBEL_SLOW_MS` threshold (no-op unless the variable was set at
    /// create/open time). `detail` is only rendered on the slow path.
    fn note_slow(&self, op: &str, elapsed: Duration, detail: impl FnOnce() -> String) {
        if let Some(threshold) = self.slow {
            if elapsed >= threshold {
                let detail = detail();
                if detail.is_empty() {
                    eprintln!("[decibel slow] {op} took {}ms", elapsed.as_millis());
                } else {
                    eprintln!(
                        "[decibel slow] {op} took {}ms ({detail})",
                        elapsed.as_millis()
                    );
                }
            }
        }
    }

    /// Runs one journaled **admin** transaction — the exclusive-store
    /// critical section behind [`Database::create_branch`] and
    /// [`Database::merge`] (session commits use the sharded
    /// [`Database::commit_txn`] path instead).
    ///
    /// Inside one store write-lock scope it (1) verifies the journal is
    /// intact, (2) allocates the transaction id and appends `entries`
    /// under it, (3) applies `apply` to the store, and (4) seals the
    /// transaction — so journal commit order always matches store mutation
    /// order, and the intact check cannot go stale between check and seal
    /// (a concurrent seal failure flips the flag while *it* holds the same
    /// lock). Allocating the id *inside* the critical section makes ids
    /// seal in strictly increasing order, which is what lets a checkpoint
    /// record a single id watermark (see [`Database::flush`]): every
    /// transaction at or below it is in the flushed state, every one above
    /// it is not.
    ///
    /// `apply` receives a dirty flag it must set **before its first
    /// mutating store call** (validation that only reads the store goes
    /// before the flag). On apply failure the appended entries are
    /// discarded (nothing else appends without this lock) and the store
    /// error is returned; if the flag was already set, the store may hold
    /// partial mutations the rolled-back journal never saw, so the journal
    /// is additionally marked diverged — exactly as on a seal failure —
    /// and every later journaled write is refused (reads keep working)
    /// until the directory is reopened, which restores the journaled
    /// prefix.
    pub(crate) fn journaled<T>(
        &self,
        entries: &[Vec<u8>],
        apply: impl FnOnce(&mut dyn VersionedStore, &mut bool) -> Result<T>,
    ) -> Result<T> {
        let mut store = self.store.write();
        self.journal_writable()?;
        let txn = self.alloc_txn();
        for entry in entries {
            self.wal.append(txn, entry)?;
        }
        let mut dirty = false;
        match apply(store.as_mut(), &mut dirty) {
            Ok(value) => {
                self.wal.commit(txn).inspect_err(|_| {
                    self.journal_intact.store(false, Ordering::Release);
                })?;
                Ok(value)
            }
            Err(e) => {
                self.wal.rollback();
                if dirty {
                    self.journal_intact.store(false, Ordering::Release);
                }
                Err(e)
            }
        }
    }

    /// Fails if the store previously diverged from the journal — a commit
    /// marker that failed to persist, or an apply that failed after it
    /// began mutating the store (see [`Database::journaled`]). Checked
    /// inside every journaled critical section; sessions also check it
    /// when opening a transaction so doomed work fails early.
    pub(crate) fn journal_writable(&self) -> Result<()> {
        if self.journal_intact.load(Ordering::Acquire) {
            Ok(())
        } else {
            Err(DbError::JournalDiverged)
        }
    }

    /// Runs `f` with shared access to the store (reads, stats, scans that
    /// are consumed inside the closure). Concurrent callers proceed in
    /// parallel; only writers are excluded.
    pub fn with_store<T>(&self, f: impl FnOnce(&dyn VersionedStore) -> T) -> T {
        let store = self.store.read();
        f(store.as_ref())
    }

    /// Runs `f` with exclusive access to the store.
    ///
    /// This is an administrative escape hatch (bulk loads, experiment
    /// harnesses): mutations made here bypass the journal, so they survive
    /// [`Database::open`] only if a later [`Database::flush`] checkpointed
    /// them — on a crash before the next checkpoint they are gone (and,
    /// because they are invisible to replay, they can also skew the
    /// deterministic id sequence journaled transactions rely on if they
    /// create branches or commits). Prefer sessions,
    /// [`Database::create_branch`], and [`Database::merge`] for durable
    /// writes.
    pub fn with_store_mut<T>(&self, f: impl FnOnce(&mut dyn VersionedStore) -> T) -> T {
        let mut store = self.store.write();
        f(store.as_mut())
    }

    /// Allocates a WAL transaction id for the **admin** path. Only called
    /// with the store write lock held (inside [`Database::journaled`]);
    /// session commits allocate inline under the sequencing mutex in
    /// [`Database::commit_txn`]. Both paths allocate inside their critical
    /// section, so ids seal in strictly increasing order — the property
    /// the checkpoint watermark rests on.
    pub(crate) fn alloc_txn(&self) -> u64 {
        self.next_txn.fetch_add(1, Ordering::Relaxed)
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Journal transactions the `open` that built this handle replayed
    /// (zero for a freshly created database, and zero after a clean
    /// `flush → close → open` cycle, since the checkpoint covered
    /// everything). Exposed so recovery tests and operators can verify
    /// that reopen cost scales with the post-checkpoint delta, not with
    /// total history.
    pub fn replayed_on_open(&self) -> u64 {
        self.replayed
    }

    /// Checkpoints the database: flushes every engine structure to disk,
    /// records the journal watermark, and truncates the WAL.
    ///
    /// Under the store write lock (no transaction can be mid-seal) it:
    ///
    /// 1. **state** — flushes heap tails, the version graph, and
    ///    commit-store deltas (each fsynced when the store was configured
    ///    with [`StoreConfig::fsync`]) and takes the engine's snapshot;
    /// 2. **watermark** — atomically installs the `CHECKPOINT` file
    ///    pairing that snapshot with the highest sealed transaction id;
    /// 3. **truncate** — empties the WAL, whose every transaction the
    ///    watermark now covers.
    ///
    /// A crash between any two steps is recoverable (see
    /// [`Database::open`]); the steps must not be reordered. After a
    /// successful flush the on-disk log is empty and grows only with
    /// post-checkpoint transactions, and `open` replays exactly that
    /// suffix.
    ///
    /// Refused when the store has diverged from the journal (see
    /// [`Database::journaled`]): checkpointing would promote the diverged
    /// state to durable truth; reopen the directory instead.
    pub fn flush(&self) -> Result<()> {
        let span = self.obs.checkpoint_us.start();
        let mut store = self.store.write();
        // Quiesce the commit shards in fixed index order. Committers hold
        // the store lock in shared mode across their whole critical
        // section, so store-exclusive already implies no commit is mid-
        // flight; taking every shard write lock on top makes the ordering
        // contract explicit and keeps this path correct if the store lock
        // is ever weakened.
        let _quiesced = self.shards.quiesce();
        self.journal_writable()?;
        let payload = store.checkpoint()?;
        // Sealed ids are exactly 1..next_txn (allocation happens under the
        // write lock we hold), so the watermark is the last allocated id.
        let watermark = self.next_txn.load(Ordering::Relaxed) - 1;
        checkpoint::save(
            self.env.as_ref(),
            &self.dir,
            &checkpoint::Checkpoint {
                watermark,
                kind: store.kind(),
                payload,
            },
            self.fsync,
        )?;
        self.wal.truncate()?;
        self.obs.checkpoints.inc();
        let elapsed = span.finish();
        self.note_slow("checkpoint", elapsed, String::new);
        Ok(())
    }
}

/// The commit- and checkpoint-family instruments a [`Database`] owns,
/// bound once at create/open so the hot paths touch plain atomics.
///
/// * `commit/grouped_txns`, `commit/shard_contention` — counters;
/// * `commit/in_flight` — gauge whose max is the concurrency high-water
///   mark ([`JournalStats::max_concurrent_commits`]);
/// * `commit/lock_wait_us`, `commit/commit_us` — latency histograms;
/// * `checkpoint/checkpoints`, `checkpoint/replayed_txns` — counters;
/// * `checkpoint/checkpoint_us`, `checkpoint/recovery_us` — durations.
struct CoreMetrics {
    grouped_txns: Counter,
    shard_contention: Counter,
    in_flight: Gauge,
    lock_wait_us: Histogram,
    commit_us: Histogram,
    checkpoints: Counter,
    replayed_txns: Counter,
    checkpoint_us: Histogram,
    recovery_us: Histogram,
}

impl CoreMetrics {
    fn register(metrics: &Registry) -> CoreMetrics {
        CoreMetrics {
            grouped_txns: metrics.counter(family::COMMIT, "grouped_txns"),
            shard_contention: metrics.counter(family::COMMIT, "shard_contention"),
            in_flight: metrics.gauge(family::COMMIT, "in_flight"),
            lock_wait_us: metrics.histogram(family::COMMIT, "lock_wait_us"),
            commit_us: metrics.histogram(family::COMMIT, "commit_us"),
            checkpoints: metrics.counter(family::CHECKPOINT, "checkpoints"),
            replayed_txns: metrics.counter(family::CHECKPOINT, "replayed_txns"),
            checkpoint_us: metrics.histogram(family::CHECKPOINT, "checkpoint_us"),
            recovery_us: metrics.histogram(family::CHECKPOINT, "recovery_us"),
        }
    }
}

/// Parses `DECIBEL_SLOW_MS` once (at create/open). Unset, empty, or
/// unparsable values disable slow-operation logging.
fn slow_threshold() -> Option<Duration> {
    std::env::var("DECIBEL_SLOW_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
}

/// Commit-path concurrency and fsync-grouping counters, from
/// [`Database::journal_stats`].
///
/// `grouped_txns / wal_flushes` is the average number of committed
/// transactions each WAL flush made durable — the group-commit
/// amortization factor (1.0 means every commit paid its own flush).
/// `max_concurrent_commits` is the high-water mark of commits observed
/// inside their shard critical sections simultaneously; it exceeds 1 only
/// when disjoint-branch commits truly overlapped.
///
/// All three values are views over the database's metrics registry
/// ([`Database::metrics`]); this struct predates it and is kept as the
/// stable, typed summary the benchmark harness prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    /// WAL buffer flushes (each one group-write + at most one fsync).
    pub wal_flushes: u64,
    /// Session transactions committed through the group-commit path.
    pub grouped_txns: u64,
    /// High-water mark of commits concurrently inside the sharded
    /// critical section (apply + prepare + sequence).
    pub max_concurrent_commits: u64,
}

/// Removes any stale engine data under `dir` (the data directory is
/// derived state — the journal is the truth) and returns its path for the
/// engine to rebuild into. Shared by [`Database::create`] and
/// [`Database::open`].
fn clear_engine_data(env: &dyn DiskEnv, dir: &Path) -> Result<PathBuf> {
    let data = dir.join(DATA_DIR);
    if env.exists(&data) {
        env.remove_dir_all(&data)
            .map_err(|e| DbError::io("clearing stale engine data", e))?;
    }
    Ok(data)
}

fn write_manifest(env: &dyn DiskEnv, dir: &Path, kind: EngineKind, schema: &Schema) -> Result<()> {
    let ctype = match schema.column_type() {
        ColumnType::U32 => "u32",
        ColumnType::U64 => "u64",
    };
    let body = format!(
        "decibel v1\nengine={}\ncolumns={}\ncolumn_type={}\n",
        kind.name(),
        schema.num_columns(),
        ctype
    );
    env.write(&dir.join(MANIFEST), body.as_bytes())
        .map_err(|e| DbError::io("writing manifest", e))
}

fn read_manifest(env: &dyn DiskEnv, dir: &Path) -> Result<(EngineKind, Schema)> {
    let path = dir.join(MANIFEST);
    let bytes = env
        .read(&path)
        .map_err(|e| DbError::io("reading manifest (is this a database directory?)", e))?;
    let body = String::from_utf8(bytes).map_err(|_| DbError::corrupt("manifest: not UTF-8"))?;
    let corrupt = |what: &str| DbError::corrupt(format!("manifest: {what}"));
    let mut lines = body.lines();
    if lines.next() != Some("decibel v1") {
        return Err(corrupt("unknown header"));
    }
    let mut kind = None;
    let mut columns = None;
    let mut ctype = None;
    for line in lines {
        match line.split_once('=') {
            Some(("engine", v)) => kind = EngineKind::from_name(v),
            Some(("columns", v)) => columns = v.parse::<usize>().ok(),
            Some(("column_type", "u32")) => ctype = Some(ColumnType::U32),
            Some(("column_type", "u64")) => ctype = Some(ColumnType::U64),
            _ => {} // unknown keys are ignored for forward compatibility
        }
    }
    let kind = kind.ok_or_else(|| corrupt("missing or unknown engine"))?;
    let columns = columns.ok_or_else(|| corrupt("missing columns"))?;
    let ctype = ctype.ok_or_else(|| corrupt("missing column_type"))?;
    Ok((kind, Schema::new(columns, ctype)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::types::VersionRef;
    use decibel_common::ids::{BranchId, CommitId};
    use decibel_common::record::Record;
    use decibel_common::schema::ColumnType;

    fn db(kind: EngineKind) -> (tempfile::TempDir, Arc<Database>) {
        let dir = tempfile::tempdir().unwrap();
        let db = Database::create(
            dir.path().join("db"),
            kind,
            Schema::new(2, ColumnType::U32),
            &StoreConfig::test_default(),
        )
        .unwrap();
        (dir, db)
    }

    #[test]
    fn create_all_engine_kinds() {
        for kind in EngineKind::all() {
            let (_d, database) = db(kind);
            assert_eq!(database.with_store(|s| s.kind()), kind);
        }
    }

    #[test]
    fn query_through_database() {
        let (_d, database) = db(EngineKind::Hybrid);
        database.with_store_mut(|s| {
            for k in 0..5u64 {
                s.insert(BranchId::MASTER, Record::new(k, vec![k, k]))
                    .unwrap();
            }
        });
        let out = database
            .query(&Query::ScanVersion {
                version: VersionRef::Branch(BranchId::MASTER),
                predicate: Predicate::ColGe(0, 3),
                projection: decibel_common::Projection::all(),
            })
            .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn flush_succeeds() {
        let (_d, database) = db(EngineKind::VersionFirst);
        database.with_store_mut(|s| {
            s.insert(BranchId::MASTER, Record::new(1, vec![0, 0]))
                .unwrap()
        });
        database.flush().unwrap();
        assert!(database.dir().join("data").join("graph.dvg").exists());
    }

    #[test]
    fn manifest_round_trips() {
        for kind in EngineKind::all() {
            let (_d, database) = db(kind);
            let (k, schema) = read_manifest(&decibel_common::env::StdEnv, database.dir()).unwrap();
            assert_eq!(k, kind);
            assert_eq!(schema, Schema::new(2, ColumnType::U32));
        }
    }

    #[test]
    fn open_rejects_non_database_dirs() {
        let dir = tempfile::tempdir().unwrap();
        assert!(Database::open(dir.path(), &StoreConfig::test_default()).is_err());
    }

    #[test]
    fn open_replays_sessions_branches_and_merges() {
        let dir = tempfile::tempdir().unwrap();
        let config = StoreConfig::test_default();
        let (master_count, dev, merged_head) = {
            let db = Database::create(
                dir.path().join("db"),
                EngineKind::Hybrid,
                Schema::new(2, ColumnType::U32),
                &config,
            )
            .unwrap();
            let mut s = db.session();
            for k in 0..10u64 {
                s.insert(Record::new(k, vec![k, k])).unwrap();
            }
            s.commit().unwrap();
            let dev = s.branch("dev").unwrap();
            s.update(Record::new(3, vec![333, 3])).unwrap();
            s.delete(4).unwrap();
            s.commit().unwrap();
            db.merge(
                BranchId::MASTER,
                dev,
                MergePolicy::ThreeWay { prefer_left: false },
            )
            .unwrap();
            let count = db
                .with_store(|st| st.live_count(VersionRef::Branch(BranchId::MASTER)))
                .unwrap();
            let head = db
                .with_store(|st| st.graph().head(BranchId::MASTER))
                .unwrap();
            // Dropped without flush: everything lives only in the journal.
            (count, dev, head)
        };
        let db = Database::open(dir.path().join("db"), &config).unwrap();
        assert_eq!(
            db.with_store(|st| st.live_count(VersionRef::Branch(BranchId::MASTER)))
                .unwrap(),
            master_count
        );
        assert_eq!(db.branch_id("dev").unwrap(), dev);
        assert_eq!(
            db.with_store(|st| st.graph().head(BranchId::MASTER))
                .unwrap(),
            merged_head
        );
        let merged = db
            .with_store(|st| st.get(VersionRef::Branch(BranchId::MASTER), 3))
            .unwrap()
            .unwrap();
        assert_eq!(merged.field(0), 333);
        // A reopened database accepts new transactions.
        let mut s = db.session();
        s.insert(Record::new(100, vec![1, 2])).unwrap();
        s.commit().unwrap();
    }

    #[test]
    fn create_resets_stale_engine_data() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db");
        let config = StoreConfig::test_default();
        let schema = Schema::new(2, ColumnType::U32);
        {
            let db = Database::create(&path, EngineKind::Hybrid, schema.clone(), &config).unwrap();
            let mut s = db.session();
            s.insert(Record::new(1, vec![1, 1])).unwrap();
            s.commit().unwrap();
            drop(s);
            db.flush().unwrap();
            assert!(path.join(DATA_DIR).join("graph.dvg").exists());
        }
        // Re-creating over the same directory starts from a clean slate:
        // no stale engine files, no rows.
        let db = Database::create(&path, EngineKind::Hybrid, schema, &config).unwrap();
        assert!(!path.join(DATA_DIR).join("graph.dvg").exists());
        assert_eq!(
            db.with_store(|s| s.live_count(VersionRef::Branch(BranchId::MASTER)).unwrap()),
            0
        );
    }

    #[test]
    fn create_removes_stale_checkpoint() {
        // The crash-pairing hazard: `create` over a directory holding an
        // old CHECKPOINT must remove it before the manifest goes down —
        // otherwise a crash right after the manifest write leaves a fresh
        // database whose next `open` reopens the *previous* database's
        // checkpointed state.
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db");
        let config = StoreConfig::test_default();
        let schema = Schema::new(2, ColumnType::U32);
        {
            let db = Database::create(&path, EngineKind::Hybrid, schema.clone(), &config).unwrap();
            let mut s = db.session();
            s.insert(Record::new(1, vec![1, 1])).unwrap();
            s.commit().unwrap();
            drop(s);
            db.flush().unwrap();
            assert!(path.join("CHECKPOINT").exists());
        }
        let db = Database::create(&path, EngineKind::Hybrid, schema, &config).unwrap();
        assert!(
            !path.join("CHECKPOINT").exists(),
            "stale checkpoint must not pair with the fresh manifest"
        );
        drop(db);
        // And the reopened fresh database really is empty.
        let db = Database::open(&path, &config).unwrap();
        assert_eq!(
            db.with_store(|s| s.live_count(VersionRef::Branch(BranchId::MASTER)).unwrap()),
            0
        );
    }

    #[test]
    fn flush_checkpoint_then_open_skips_replay() {
        let (_d, database) = db(EngineKind::TupleFirstTuple);
        let mut s = database.session();
        s.insert(Record::new(7, vec![70, 7])).unwrap();
        s.commit().unwrap();
        drop(s);
        database.flush().unwrap();
        let dir = database.dir().to_path_buf();
        drop(database);
        let config = StoreConfig::test_default();
        let db = Database::open(&dir, &config).unwrap();
        assert_eq!(db.replayed_on_open(), 0);
        assert_eq!(
            db.with_store(|s| s.get(VersionRef::Branch(BranchId::MASTER), 7))
                .unwrap()
                .unwrap()
                .field(0),
            70
        );
    }

    #[test]
    fn open_does_not_resurrect_orphaned_wal_entries() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db");
        let config = StoreConfig::test_default();
        let schema = Schema::new(2, ColumnType::U32);
        {
            let db = Database::create(&path, EngineKind::Hybrid, schema.clone(), &config).unwrap();
            let mut s = db.session();
            s.insert(Record::new(1, vec![1, 1])).unwrap();
            s.commit().unwrap(); // txn 1
        }
        // Simulate a torn commit of txn 2: its data entries reached the
        // log, its commit marker did not (the disk-full shape that
        // journal_intact + reopen is documented to recover from). Sealing
        // the already-committed txn 1 again flushes the shared buffer
        // without committing txn 2.
        {
            let wal = Wal::open(path.join("wal.log"), false).unwrap();
            wal.append(2, &journal::encode_begin(BranchId::MASTER))
                .unwrap();
            wal.append(
                2,
                &journal::encode_insert(&Record::new(99, vec![9, 9]), &schema).unwrap(),
            )
            .unwrap();
            wal.commit(1).unwrap();
        }
        let master = VersionRef::Branch(BranchId::MASTER);
        let db = Database::open(&path, &config).unwrap();
        // The orphan is invisible after recovery...
        assert!(db.with_store(|s| s.get(master, 99)).unwrap().is_none());
        // ...and a fresh transaction must not adopt its id: commit one,
        // reopen, and check the orphan ops were not sealed under the new
        // commit marker as phantom ops.
        let mut s = db.session();
        s.insert(Record::new(100, vec![2, 2])).unwrap();
        s.commit().unwrap();
        drop(s);
        drop(db);
        let db = Database::open(&path, &config).unwrap();
        assert!(db.with_store(|s| s.get(master, 99)).unwrap().is_none());
        assert_eq!(
            db.with_store(|s| s.get(master, 100)).unwrap().unwrap(),
            Record::new(100, vec![2, 2])
        );
        assert_eq!(
            db.with_store(|s| s.get(master, 1)).unwrap().unwrap().key(),
            1
        );
    }

    #[test]
    fn failed_apply_poisons_journal_until_reopen() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db");
        let config = StoreConfig::test_default();
        let schema = Schema::new(2, ColumnType::U32);
        let master = VersionRef::Branch(BranchId::MASTER);
        {
            let db = Database::create(&path, EngineKind::Hybrid, schema, &config).unwrap();
            let mut setup = db.session();
            setup.insert(Record::new(1, vec![1, 1])).unwrap();
            setup.commit().unwrap();
            drop(setup);

            let mut s = db.session();
            s.insert(Record::new(2, vec![2, 2])).unwrap();
            s.insert(Record::new(3, vec![3, 3])).unwrap();
            // Sabotage through the unjournaled escape hatch: key 3 now
            // exists in the store, so the commit's second op fails *after*
            // the first has already mutated the store.
            db.with_store_mut(|st| {
                st.insert(BranchId::MASTER, Record::new(3, vec![0, 0]))
                    .unwrap()
            });
            assert!(matches!(
                s.commit().unwrap_err(),
                DbError::DuplicateKey { key: 3 }
            ));
            drop(s);

            // The store diverged from the journal: writes are refused with
            // a pointer at reopening, reads keep working.
            let mut s2 = db.session();
            let err = s2.insert(Record::new(50, vec![5, 5])).unwrap_err();
            assert!(err.to_string().contains("reopen"));
            assert!(db.with_store(|st| st.get(master, 1)).unwrap().is_some());
        }
        // Reopen restores the journaled prefix: the half-applied
        // transaction (key 2) and the unjournaled backdoor write (key 3)
        // are both gone, and writes are accepted again.
        let db = Database::open(&path, &config).unwrap();
        assert!(db.with_store(|st| st.get(master, 1)).unwrap().is_some());
        assert!(db.with_store(|st| st.get(master, 2)).unwrap().is_none());
        assert!(db.with_store(|st| st.get(master, 3)).unwrap().is_none());
        let mut s = db.session();
        s.insert(Record::new(4, vec![4, 4])).unwrap();
        s.commit().unwrap();
    }

    #[test]
    fn engine_duplicate_branch_name_leaves_no_dangling_commit() {
        // Direct store-level check, one per engine: a duplicate-name
        // create_branch must fail before the implicit parent commit, so
        // the commit-id sequence stays in lockstep with the journal.
        for kind in EngineKind::all() {
            let dir = tempfile::tempdir().unwrap();
            let mut store = Database::build_store(
                kind,
                dir.path(),
                Schema::new(2, ColumnType::U32),
                &StoreConfig::test_default(),
            )
            .unwrap();
            store
                .insert(BranchId::MASTER, Record::new(1, vec![1, 1]))
                .unwrap();
            store.commit(BranchId::MASTER).unwrap();
            store
                .create_branch("dev", VersionRef::Branch(BranchId::MASTER))
                .unwrap();
            let head = store.graph().head(BranchId::MASTER).unwrap();
            assert!(store
                .create_branch("dev", VersionRef::Branch(BranchId::MASTER))
                .is_err());
            assert_eq!(
                store.graph().head(BranchId::MASTER).unwrap(),
                head,
                "{} left a dangling commit behind the duplicate-name error",
                kind.name()
            );
        }
    }

    #[test]
    fn duplicate_branch_name_fails_cleanly() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db");
        let config = StoreConfig::test_default();
        let schema = Schema::new(2, ColumnType::U32);
        let head_after = {
            let db = Database::create(&path, EngineKind::Hybrid, schema, &config).unwrap();
            let mut s = db.session();
            s.insert(Record::new(1, vec![1, 1])).unwrap();
            s.commit().unwrap();
            db.create_branch("dev", VersionRef::Branch(BranchId::MASTER))
                .unwrap();
            // A duplicate name is a clean validation error: no store
            // mutation (in particular no dangling parent commit), journal
            // still writable.
            assert!(db
                .create_branch("dev", VersionRef::Branch(BranchId::MASTER))
                .is_err());
            assert!(db
                .create_branch("other", VersionRef::Commit(CommitId(u64::MAX)))
                .is_err());
            s.insert(Record::new(2, vec![2, 2])).unwrap();
            s.commit().unwrap();
            db.with_store(|st| st.graph().head(BranchId::MASTER))
                .unwrap()
        };
        // Replay reproduces the same commit-id sequence — a dangling
        // commit from the failed create_branch would have shifted it.
        let db = Database::open(&path, &config).unwrap();
        assert_eq!(
            db.with_store(|st| st.graph().head(BranchId::MASTER))
                .unwrap(),
            head_after
        );
        assert!(db.branch_id("dev").is_ok());
    }
}
