//! The `Database`: a versioned store plus sessions, locking, and logging.
//!
//! "Users interact with Decibel by opening a connection to the Decibel
//! server, which creates a session. A session captures the user's state,
//! i.e., the commit (or the branch) that the operations the user issues
//! will read or modify. Concurrent transactions by multiple users on the
//! same version (but different sessions) are isolated from each other
//! through two-phase locking" (§2.2.3).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use decibel_common::error::{DbError, Result};
use decibel_common::schema::Schema;
use decibel_pagestore::{LockManager, StoreConfig, Wal};
use parking_lot::Mutex;

use crate::engine::{
    HybridEngine, TupleFirstBranchEngine, TupleFirstTupleEngine, VersionFirstEngine,
};
use crate::query::{execute, Query, QueryOutput};
use crate::session::Session;
use crate::store::VersionedStore;
use crate::types::EngineKind;

/// A Decibel database instance: one versioned relation stored under a
/// directory by the chosen engine, shared by any number of sessions.
pub struct Database {
    pub(crate) store: Mutex<Box<dyn VersionedStore>>,
    pub(crate) locks: LockManager,
    pub(crate) wal: Wal,
    pub(crate) next_txn: AtomicU64,
    dir: PathBuf,
}

impl Database {
    /// Creates a fresh database in `dir` using the given storage scheme.
    pub fn create(
        dir: impl AsRef<Path>,
        kind: EngineKind,
        schema: Schema,
        config: &StoreConfig,
    ) -> Result<Database> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| DbError::io("creating database dir", e))?;
        let store: Box<dyn VersionedStore> = match kind {
            EngineKind::TupleFirstBranch => Box::new(TupleFirstBranchEngine::init(
                dir.join("data"),
                schema,
                config,
            )?),
            EngineKind::TupleFirstTuple => Box::new(TupleFirstTupleEngine::init(
                dir.join("data"),
                schema,
                config,
            )?),
            EngineKind::VersionFirst => {
                Box::new(VersionFirstEngine::init(dir.join("data"), schema, config)?)
            }
            EngineKind::Hybrid => Box::new(HybridEngine::init(dir.join("data"), schema, config)?),
        };
        let wal = Wal::open(dir.join("wal.log"), config.fsync)?;
        Ok(Database {
            store: Mutex::new(store),
            locks: LockManager::new(Duration::from_secs(2)),
            wal,
            next_txn: AtomicU64::new(1),
            dir,
        })
    }

    /// Opens a session, initially checked out at the head of `master`.
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }

    /// Runs a declarative query (holds the store lock for the duration).
    pub fn query(&self, query: &Query) -> Result<QueryOutput> {
        let store = self.store.lock();
        execute(store.as_ref(), query)
    }

    /// Runs `f` with shared access to the store (reads, stats, scans that
    /// are consumed inside the closure).
    pub fn with_store<T>(&self, f: impl FnOnce(&dyn VersionedStore) -> T) -> T {
        let store = self.store.lock();
        f(store.as_ref())
    }

    /// Runs `f` with exclusive access to the store (administrative
    /// operations outside session transactions, e.g. merges in examples).
    pub fn with_store_mut<T>(&self, f: impl FnOnce(&mut dyn VersionedStore) -> T) -> T {
        let mut store = self.store.lock();
        f(store.as_mut())
    }

    /// Allocates a WAL transaction id.
    pub(crate) fn alloc_txn(&self) -> u64 {
        self.next_txn.fetch_add(1, Ordering::Relaxed)
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Flushes heap tails and persists the version graph.
    pub fn flush(&self) -> Result<()> {
        self.store.lock().flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::types::VersionRef;
    use decibel_common::ids::BranchId;
    use decibel_common::record::Record;
    use decibel_common::schema::ColumnType;

    fn db(kind: EngineKind) -> (tempfile::TempDir, Database) {
        let dir = tempfile::tempdir().unwrap();
        let db = Database::create(
            dir.path().join("db"),
            kind,
            Schema::new(2, ColumnType::U32),
            &StoreConfig::test_default(),
        )
        .unwrap();
        (dir, db)
    }

    #[test]
    fn create_all_engine_kinds() {
        for kind in EngineKind::all() {
            let (_d, database) = db(kind);
            assert_eq!(database.with_store(|s| s.kind()), kind);
        }
    }

    #[test]
    fn query_through_database() {
        let (_d, database) = db(EngineKind::Hybrid);
        database.with_store_mut(|s| {
            for k in 0..5u64 {
                s.insert(BranchId::MASTER, Record::new(k, vec![k, k]))
                    .unwrap();
            }
        });
        let out = database
            .query(&Query::ScanVersion {
                version: VersionRef::Branch(BranchId::MASTER),
                predicate: Predicate::ColGe(0, 3),
            })
            .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn flush_succeeds() {
        let (_d, database) = db(EngineKind::VersionFirst);
        database.with_store_mut(|s| {
            s.insert(BranchId::MASTER, Record::new(1, vec![0, 0]))
                .unwrap()
        });
        database.flush().unwrap();
        assert!(database.dir().join("data").join("graph.dvg").exists());
    }
}
