//! The `VersionedStore` trait — the contract all three storage engines
//! implement.

use std::sync::Arc;

use decibel_common::ids::{BranchId, CommitId};
use decibel_common::record::Record;
use decibel_common::schema::Schema;
use decibel_common::Result;
use decibel_vgraph::VersionGraph;

use crate::query::plan::ScanPlan;
use crate::shard::{PreparedCommit, SessionOp};
use crate::types::{
    AnnotatedIter, DiffResult, EngineKind, MergePolicy, MergeResult, PosAnnotatedIter,
    PosRecordIter, RecordIter, StoreStats, VersionRef,
};

/// A versioned relational storage engine: the operations of §2.2.3
/// (branch / commit / checkout / diff / merge) plus record modification and
/// the scan shapes the benchmark queries need (§4.3).
///
/// Implementations: [`TupleFirstEngine`](crate::engine::TupleFirstEngine),
/// [`VersionFirstEngine`](crate::engine::VersionFirstEngine), and
/// [`HybridEngine`](crate::engine::HybridEngine).
///
/// # Semantics shared by every engine
///
/// * Records are identified by primary key; updates append a complete new
///   copy (no-overwrite storage) and deletes never reclaim space, so
///   historical commits stay readable (§3.2 Data Modification).
/// * `commit` snapshots a branch's state into an immutable version; only
///   branch heads accept modifications (§2.2.3).
/// * `diff`/`merge` compare record *copies*: a record counts as "modified
///   in a branch" if the branch's live copy differs from the comparison
///   version's live copy.
///
/// # Engine-specific caveats
///
/// The version-first engine has no bitmap or key index; per §3.3 its
/// updates and deletes are *blind appends* (an update of an absent key
/// behaves as an insert; a delete of an absent key appends an inert
/// tombstone), whereas tuple-first and hybrid validate keys against their
/// per-branch primary-key indexes and return
/// [`DbError`](decibel_common::DbError)`::KeyNotFound` / `::DuplicateKey`.
///
/// # Thread safety and the sharded commit path
///
/// Implementations must be `Send + Sync`, and every `&self` method must be
/// safe to call from many threads at once. That now includes the *write*
/// path: [`insert`](VersionedStore::insert) /
/// [`update`](VersionedStore::update) / [`delete`](VersionedStore::delete)
/// / [`prepare_commit`](VersionedStore::prepare_commit) /
/// [`finalize_commit`](VersionedStore::finalize_commit) take `&self` and
/// guard the engine structures they mutate with fine-grained interior
/// locks, so the database can run commits to disjoint branches
/// concurrently under per-branch shard locks
/// ([`ShardSet`](crate::shard::ShardSet)) instead of one store-wide write
/// lock. Callers must still serialize *same-branch* writers (the database
/// does, via branch 2PL plus the shard lock); engines only promise that
/// writers on different branches and readers anywhere never race.
///
/// `&mut self` methods (branch creation, merge, flush, checkpoint) mutate
/// engine-structural state — segment lists, per-branch vectors — without
/// locking; the database grants them exclusivity by holding its store
/// lock in write mode, which also quiesces every shard.
pub trait VersionedStore: Send + Sync {
    /// Which storage scheme this engine implements.
    fn kind(&self) -> EngineKind;

    /// The relation's schema.
    fn schema(&self) -> &Schema;

    /// The version graph (shared DAG of commits and branches, §2.2.2).
    ///
    /// Returns an owned snapshot handle: the graph is copy-on-write
    /// ([`Arc`]) so readers traverse a consistent DAG without holding any
    /// engine lock while concurrent commits stamp new versions.
    fn graph(&self) -> Arc<VersionGraph>;

    /// Creates a branch named `name` rooted at `from` and returns its id.
    fn create_branch(&mut self, name: &str, from: VersionRef) -> Result<BranchId>;

    /// Commits the current state of `branch`, returning the new version id
    /// — [`prepare_commit`](VersionedStore::prepare_commit) +
    /// [`finalize_commit`](VersionedStore::finalize_commit) in one step,
    /// for callers outside the sharded commit path (replay, merges, admin).
    fn commit(&self, branch: BranchId) -> Result<CommitId> {
        let prep = self.prepare_commit(branch)?;
        self.finalize_commit(branch, prep)
    }

    /// First half of a commit: snapshots `branch`'s working state into its
    /// commit store and returns an opaque token locating the snapshot.
    /// Runs under the branch's shard lock, concurrently with other
    /// branches' prepares — this is the per-branch heavy lifting (bitmap
    /// clone, delta append) hoisted out of the global sequencing section.
    fn prepare_commit(&self, branch: BranchId) -> Result<PreparedCommit>;

    /// Second half of a commit: stamps the prepared snapshot into the
    /// shared version graph and commit map, returning the new commit id.
    /// The database calls this inside its sequencing critical section so
    /// commit ids are allocated in transaction-id order.
    fn finalize_commit(&self, branch: BranchId, prep: PreparedCommit) -> Result<CommitId>;

    /// Applies a sealed session's buffered writes to `branch`'s working
    /// state. Sets `*dirty` before the first mutation so the caller knows
    /// whether a failure left the engine diverged from the journal.
    fn apply_ops(&self, branch: BranchId, ops: &[SessionOp], dirty: &mut bool) -> Result<()> {
        self.graph().branch(branch)?;
        for op in ops {
            *dirty = true;
            match op {
                SessionOp::Insert(rec) => self.insert(branch, rec.clone())?,
                SessionOp::Update(rec) => self.update(branch, rec.clone())?,
                SessionOp::Delete(key) => {
                    self.delete(branch, *key)?;
                }
            }
        }
        Ok(())
    }

    /// Reconstructs the state of a committed version (Table 2's "checkout"
    /// operation), returning its live record count as a cheap integrity
    /// signal.
    fn checkout_version(&self, commit: CommitId) -> Result<u64>;

    /// Inserts a new record into a branch's working state.
    fn insert(&self, branch: BranchId, record: Record) -> Result<()>;

    /// Replaces the record with `record.key()` in a branch's working state
    /// by appending a new copy.
    fn update(&self, branch: BranchId, record: Record) -> Result<()>;

    /// Removes a key from a branch's working state. Returns whether the
    /// engine can attest the key existed (version-first cannot; it appends
    /// a tombstone and reports `true` unconditionally).
    fn delete(&self, branch: BranchId, key: u64) -> Result<bool>;

    /// Point lookup of `key` in a version.
    fn get(&self, version: VersionRef, key: u64) -> Result<Option<Record>>;

    /// Streams the live records of one version (benchmark Query 1).
    fn scan(&self, version: VersionRef) -> Result<RecordIter<'_>>;

    /// Streams the union of several branches' live records, each annotated
    /// with the branches containing it (benchmark Query 4).
    fn multi_scan(&self, branches: &[BranchId]) -> Result<AnnotatedIter<'_>>;

    /// Streams one version's live records through the planned scan
    /// pipeline: rows failing `plan.predicate` are filtered out (at page
    /// level when the predicate lowers, see
    /// [`ScanPlan::page_predicate`](crate::query::plan::ScanPlan::page_predicate)),
    /// surviving rows are materialized under `plan.projection`
    /// (non-projected fields read `0`), and each row carries a resume
    /// token: pass a yielded token back as `from` to continue immediately
    /// after that row. `from = 0` starts from the beginning.
    ///
    /// The default implementation is the full-decode reference — drain
    /// [`VersionedStore::scan`], skip, filter, project, with the raw item
    /// count as the token; engines override it to decode only the
    /// projected columns and to make resumption O(1).
    fn scan_pipeline(
        &self,
        version: VersionRef,
        plan: &ScanPlan,
        from: u64,
    ) -> Result<PosRecordIter<'_>> {
        let plan = plan.clone();
        let iter = self
            .scan(version)?
            .enumerate()
            .skip(from as usize)
            .filter_map(move |(i, r)| match r {
                Ok(rec) => plan.apply(rec).map(|rec| Ok((i as u64 + 1, rec))),
                Err(e) => Some(Err(e)),
            });
        Ok(Box::new(iter))
    }

    /// Multi-branch variant of [`VersionedStore::scan_pipeline`]: the
    /// filtered, projected, resumable form of
    /// [`VersionedStore::multi_scan`]. Branch annotations are computed
    /// before filtering and are unaffected by the projection.
    fn multi_scan_pipeline(
        &self,
        branches: &[BranchId],
        plan: &ScanPlan,
        from: u64,
    ) -> Result<PosAnnotatedIter<'_>> {
        let plan = plan.clone();
        let iter = self
            .multi_scan(branches)?
            .enumerate()
            .skip(from as usize)
            .filter_map(move |(i, r)| match r {
                Ok((rec, live)) => plan.apply(rec).map(|rec| Ok((i as u64 + 1, rec, live))),
                Err(e) => Some(Err(e)),
            });
        Ok(Box::new(iter))
    }

    /// Materialized multi-branch scan that is free to use intra-query
    /// parallelism. `threads` is a hint: values ≤ 1 request a sequential
    /// scan; larger values permit the engine to fan segment scans out over
    /// that many workers. The result is identical (same records, same
    /// order, same annotations) to draining [`VersionedStore::multi_scan`].
    ///
    /// The default implementation just materializes the sequential scan;
    /// the hybrid engine overrides it with a work-stealing per-segment
    /// parallel scan (the parallelism §3.4's branch-segment bitmap "allows
    /// for").
    fn par_multi_scan(
        &self,
        branches: &[BranchId],
        threads: usize,
    ) -> Result<Vec<(Record, Vec<BranchId>)>> {
        let _ = threads;
        self.multi_scan(branches)?.collect()
    }

    /// Materializes the symmetric difference of two versions (benchmark
    /// Query 2 uses one side of it).
    fn diff(&self, left: VersionRef, right: VersionRef) -> Result<DiffResult>;

    /// Merges `from` into `into`, creating a merge commit on `into`
    /// (§2.2.3 Merge). Conflicts are resolved by the policy's precedence
    /// and reported in the result.
    fn merge(&mut self, into: BranchId, from: BranchId, policy: MergePolicy)
        -> Result<MergeResult>;

    /// Number of live records in a version.
    fn live_count(&self, version: VersionRef) -> Result<u64> {
        let mut n = 0u64;
        for r in self.scan(version)? {
            r?;
            n += 1;
        }
        Ok(n)
    }

    /// Storage accounting for the experiment harness.
    fn stats(&self) -> StoreStats;

    /// Flushes buffered heap tails and persists the version graph.
    fn flush(&mut self) -> Result<()>;

    /// Checkpoint-flushes the engine: every durable structure — heap
    /// tails, version graph, commit-store delta files — is written out
    /// (and fsynced when the store was configured with `fsync`), then the
    /// engine's snapshot is returned: the metadata needed to reopen it
    /// from those files without journal replay (embedded graph, per-file
    /// coverage lengths, head bitmap columns, commit-store offsets).
    ///
    /// [`Database::flush`](crate::db::Database::flush) pairs the returned
    /// snapshot with the journal watermark and persists both atomically;
    /// the engines' `open_from` constructors consume it.
    fn checkpoint(&mut self) -> Result<Vec<u8>>;

    /// Drops all cached pages (emulates the paper's cold-cache measurement
    /// discipline, §5).
    fn drop_caches(&self);
}

/// Convenience: resolve a [`VersionRef`] naming a branch head to its
/// branch, or `None` for historical commits.
pub fn as_branch(graph: &VersionGraph, version: VersionRef) -> Option<BranchId> {
    match version {
        VersionRef::Branch(b) => Some(b),
        VersionRef::Commit(c) => {
            let meta = graph.commit(c).ok()?;
            if graph.is_head(c) {
                Some(meta.branch)
            } else {
                None
            }
        }
    }
}
