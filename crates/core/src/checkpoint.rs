//! The checkpoint file: the durable watermark that lets [`Database::open`]
//! reopen from flushed engine state instead of replaying the journal from
//! the beginning of history.
//!
//! A checkpoint records three things, written atomically (temp file +
//! rename, CRC-protected):
//!
//! * the **watermark** — the highest journal transaction id whose effects
//!   are contained in the flushed engine state. Transaction ids are sealed
//!   in increasing order (allocation happens inside the journal's critical
//!   section, see [`Database::journaled`]), so "id ≤ watermark" is exactly
//!   "covered by the checkpoint";
//! * the **engine kind**, cross-checked against the directory manifest;
//! * the engine's **snapshot payload** — the metadata each engine needs to
//!   reopen from its flushed files (embedded version graph, per-file
//!   coverage lengths, bitmap columns, commit-store offsets; see each
//!   engine's `open_from`).
//!
//! Crash ordering is state → watermark → WAL truncate: the `CHECKPOINT`
//! file is renamed into place only after the engine state it describes is
//! durable, and the log is truncated only after the watermark is. A crash
//! between any two steps leaves a directory that recovers to the same
//! database: the old watermark with extra (coverage-trimmed) state, or the
//! new watermark with a longer log whose covered prefix replay skips.
//!
//! [`Database::open`]: crate::db::Database::open
//! [`Database::journaled`]: crate::db::Database::journaled

use std::path::Path;

use decibel_bitmap::{rle, Bitmap};
use decibel_common::env::DiskEnv;
use decibel_common::error::{DbError, Result};
use decibel_common::fsio::write_file_durably_in;
use decibel_common::varint;
use decibel_pagestore::crc32;

use crate::types::EngineKind;

/// File name of the checkpoint inside a database directory.
pub(crate) const FILE: &str = "CHECKPOINT";

const MAGIC: &[u8; 5] = b"DCKP1";

/// A decoded checkpoint: watermark + engine snapshot.
pub(crate) struct Checkpoint {
    /// Highest journal transaction id covered by the flushed state.
    pub watermark: u64,
    /// Engine that wrote the snapshot (must match the manifest).
    pub kind: EngineKind,
    /// Engine-specific snapshot bytes.
    pub payload: Vec<u8>,
}

/// Atomically installs a checkpoint in `dir` (temp file + rename; file and
/// directory fsynced when `fsync` is set, so the rename is durable before
/// the caller truncates the WAL).
pub(crate) fn save(env: &dyn DiskEnv, dir: &Path, cp: &Checkpoint, fsync: bool) -> Result<()> {
    let mut body = Vec::with_capacity(cp.payload.len() + 64);
    body.extend_from_slice(MAGIC);
    varint::write_u64(&mut body, cp.watermark);
    let name = cp.kind.name().as_bytes();
    varint::write_u64(&mut body, name.len() as u64);
    body.extend_from_slice(name);
    varint::write_u64(&mut body, cp.payload.len() as u64);
    body.extend_from_slice(&cp.payload);
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    write_file_durably_in(env, &dir.join(FILE), &body, fsync)
}

/// Loads the checkpoint from `dir`. `Ok(None)` when no checkpoint exists
/// (a never-flushed database — recovery falls back to full replay); a
/// present-but-unreadable checkpoint is a hard error, because the WAL was
/// truncated against it and full replay would lose the covered history.
pub(crate) fn load(env: &dyn DiskEnv, dir: &Path) -> Result<Option<Checkpoint>> {
    let bytes = match env.read(&dir.join(FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(DbError::io("reading checkpoint", e)),
    };
    let corrupt = |what: &str| DbError::corrupt(format!("checkpoint: {what}"));
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte crc trailer"));
    if crc32(body) != stored {
        return Err(corrupt("CRC mismatch"));
    }
    let mut pos = MAGIC.len();
    let watermark = varint::read_u64(body, &mut pos)?;
    let name_len = varint::read_u64(body, &mut pos)? as usize;
    // Bounds checks go through `get`, never `pos + len` arithmetic: a
    // CRC-valid file with an absurd length varint must fail as corrupt,
    // not overflow or panic the open.
    let name = body
        .get(pos..pos.saturating_add(name_len))
        .ok_or_else(|| corrupt("truncated engine name"))?;
    let name = std::str::from_utf8(name).map_err(|_| corrupt("engine name is not UTF-8"))?;
    let kind = EngineKind::from_name(name).ok_or_else(|| corrupt("unknown engine kind"))?;
    pos += name_len;
    let payload_len = varint::read_u64(body, &mut pos)? as usize;
    let payload = body
        .get(pos..)
        .filter(|rest| rest.len() == payload_len)
        .ok_or_else(|| corrupt("payload length mismatch"))?;
    Ok(Some(Checkpoint {
        watermark,
        kind,
        payload: payload.to_vec(),
    }))
}

// ---------------------------------------------------------------------
// Snapshot encoding helpers shared by the engines' `checkpoint` /
// `open_from` pairs.
// ---------------------------------------------------------------------

/// Appends a length-prefixed RLE-compressed bitmap.
pub(crate) fn write_bitmap(out: &mut Vec<u8>, bm: &Bitmap) {
    let enc = rle::encode(bm);
    varint::write_u64(out, enc.len() as u64);
    out.extend_from_slice(&enc);
}

/// Reads a bitmap written by [`write_bitmap`].
pub(crate) fn read_bitmap(bytes: &[u8], pos: &mut usize) -> Result<Bitmap> {
    let slice = read_slice(bytes, pos)?;
    rle::decode(slice)
}

/// Appends a count-prefixed list of varint `u64` triples — the shape of
/// every engine's commit map (commit id, owning branch/segment id,
/// ordinal/offset). One codec for all three engines keeps the snapshot
/// format from drifting per engine.
pub(crate) fn write_triples(
    out: &mut Vec<u8>,
    triples: impl ExactSizeIterator<Item = (u64, u64, u64)>,
) {
    varint::write_u64(out, triples.len() as u64);
    for (a, b, c) in triples {
        varint::write_u64(out, a);
        varint::write_u64(out, b);
        varint::write_u64(out, c);
    }
}

/// Reads a list written by [`write_triples`].
pub(crate) fn read_triples(bytes: &[u8], pos: &mut usize) -> Result<Vec<(u64, u64, u64)>> {
    let n = varint::read_u64(bytes, pos)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let a = varint::read_u64(bytes, pos)?;
        let b = varint::read_u64(bytes, pos)?;
        let c = varint::read_u64(bytes, pos)?;
        out.push((a, b, c));
    }
    Ok(out)
}

/// Appends a length-prefixed byte slice.
pub(crate) fn write_slice(out: &mut Vec<u8>, bytes: &[u8]) {
    varint::write_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Reads a slice written by [`write_slice`].
pub(crate) fn read_slice<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8]> {
    let len = varint::read_u64(bytes, pos)? as usize;
    // `get`, not `pos + len` indexing: an absurd length varint (corrupt
    // or crafted snapshot) must fail cleanly, not overflow or panic.
    let out = bytes
        .get(*pos..pos.saturating_add(len))
        .ok_or_else(|| DbError::corrupt("checkpoint snapshot truncated"))?;
    *pos += len;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decibel_common::env::StdEnv;

    #[test]
    fn save_load_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let cp = Checkpoint {
            watermark: 42,
            kind: EngineKind::Hybrid,
            payload: vec![1, 2, 3, 200],
        };
        save(&StdEnv, dir.path(), &cp, false).unwrap();
        let back = load(&StdEnv, dir.path()).unwrap().unwrap();
        assert_eq!(back.watermark, 42);
        assert_eq!(back.kind, EngineKind::Hybrid);
        assert_eq!(back.payload, vec![1, 2, 3, 200]);
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let dir = tempfile::tempdir().unwrap();
        assert!(load(&StdEnv, dir.path()).unwrap().is_none());
    }

    #[test]
    fn corrupt_checkpoint_is_a_hard_error() {
        let dir = tempfile::tempdir().unwrap();
        let cp = Checkpoint {
            watermark: 7,
            kind: EngineKind::VersionFirst,
            payload: vec![9; 32],
        };
        save(&StdEnv, dir.path(), &cp, false).unwrap();
        let path = dir.path().join(FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load(&StdEnv, dir.path()).is_err());
        // Truncation is detected too, not parsed as a shorter snapshot.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(load(&StdEnv, dir.path()).is_err());
    }

    #[test]
    fn absurd_length_varints_fail_cleanly() {
        // A CRC-valid checkpoint whose engine-name length varint is
        // u64::MAX must come back as a corrupt error, not a panic.
        let dir = tempfile::tempdir().unwrap();
        let mut body = Vec::new();
        body.extend_from_slice(MAGIC);
        varint::write_u64(&mut body, 1); // watermark
        varint::write_u64(&mut body, u64::MAX); // engine-name length
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        std::fs::write(dir.path().join(FILE), &body).unwrap();
        assert!(load(&StdEnv, dir.path()).is_err());
        // Same for the shared slice reader the engine payloads use.
        let mut out = Vec::new();
        varint::write_u64(&mut out, u64::MAX);
        let mut pos = 0;
        assert!(read_slice(&out, &mut pos).is_err());
    }

    #[test]
    fn bitmap_and_slice_helpers_round_trip() {
        let mut bm = Bitmap::new();
        for i in [0u64, 5, 6, 7, 100, 4096] {
            bm.set(i, true);
        }
        let mut out = Vec::new();
        write_bitmap(&mut out, &bm);
        write_slice(&mut out, b"graph-bytes");
        let mut pos = 0;
        let back = read_bitmap(&out, &mut pos).unwrap();
        assert_eq!(
            back.iter_ones().collect::<Vec<_>>(),
            bm.iter_ones().collect::<Vec<_>>()
        );
        assert_eq!(read_slice(&out, &mut pos).unwrap(), b"graph-bytes");
        assert_eq!(pos, out.len());
    }
}
