//! The hybrid storage engine (§3.4).
//!
//! "Hybrid combines the two storage models ... It operates by managing a
//! collection of segments, each consisting of a single heap file (as in
//! version-first) accompanied by a bitmap-based segment index (as in
//! tuple-first). ... Additionally, a single branch-segment bitmap, external
//! to all segments, relates a branch to the segments that contain at least
//! one record alive in the branch."
//!
//! Segments come in two classes: *head* segments receiving a branch's fresh
//! modifications, and *internal* segments frozen by branch operations,
//! "after which only the segment's bitmap may change". The branch-segment
//! bitmap lets scans skip segments with no live records and "allows for
//! parallelization of segment scanning" — see this engine's override of
//! [`VersionedStore::par_multi_scan`].
//!
//! # Concurrency
//!
//! The write path (`insert`/`update`/`delete`/`prepare_commit`/
//! `finalize_commit`) takes `&self` so the sharded commit path can run
//! disjoint-branch commits concurrently. The structures those operations
//! mutate sit behind fine-grained interior locks: each segment's bitmap
//! index and commit-store map have their own `RwLock`, every per-branch
//! primary-key index has its own lock, the branch-segment bitmap has one,
//! branch-commit ordinals are atomics, and the version graph is
//! copy-on-write behind a lock. Segment *membership* (`segments`, `head`,
//! `frozen`) only changes under `&mut self` (branch/merge/checkpoint), for
//! which the database holds its store lock exclusively. Lock order within
//! the engine is pk → segment index → segment stores → graph → commit map;
//! the heap tail latch is a leaf.

use std::collections::hash_map::Entry;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use decibel_bitmap::{Bitmap, BranchBitmapIndex, CommitStore, VersionIndex};
use decibel_common::error::{DbError, Result};
use decibel_common::hash::FxHashMap;
use decibel_common::ids::{BranchId, CommitId, RecordIdx, SegmentId};
use decibel_common::record::Record;
use decibel_common::schema::Schema;
use decibel_common::varint;
use decibel_pagestore::{BufferPool, HeapFile, StoreConfig};
use decibel_vgraph::VersionGraph;
use parking_lot::RwLock;

use crate::checkpoint;
use crate::engine::scan::{
    scan_annotated_slice, seg_resume, seg_token, AnnotatedScan, BitmapScan, PipelineAnnotatedScan,
    PipelineScan,
};
use crate::merge::{plan_merge, ChangeSet, MergeAction};
use crate::pool::ScanPool;
use crate::query::plan::{LoweredPlan, ScanPlan};
use crate::shard::PreparedCommit;
use crate::store::VersionedStore;
use crate::types::{
    AnnotatedIter, DiffResult, EngineKind, MergePolicy, MergeResult, PosAnnotatedIter,
    PosRecordIter, RecordIter, StoreStats, VersionRef,
};

/// One hybrid segment: heap file + local bitmap index + per-branch commit
/// history stores.
struct HySegment {
    heap: HeapFile,
    /// Local bitmap index: only "the set of branches which inherit records
    /// contained in that segment" have columns here (§3.4). Writers on
    /// different branches touch different columns but share the lock.
    index: RwLock<BranchBitmapIndex>,
    /// Head segments accept appends; internal segments are frozen.
    /// Mutated only under `&mut self` (branch operations).
    frozen: bool,
    /// Per-branch commit stores ("in hybrid, each (branch, segment) has its
    /// own file", §5.3) plus the branch-commit ordinal at store creation.
    stores: RwLock<FxHashMap<BranchId, (CommitStore, u64)>>,
}

/// The hybrid engine.
pub struct HybridEngine {
    dir: PathBuf,
    schema: Schema,
    pool: Arc<BufferPool>,
    segments: Vec<HySegment>,
    /// The global branch-segment bitmap: row = branch, bit = segment id.
    branch_seg: RwLock<BranchBitmapIndex>,
    /// Per-branch head segment. Mutated only under `&mut self`.
    head: Vec<SegmentId>,
    /// Per-branch primary-key index: key → (segment, slot) of the live
    /// copy. One lock per branch so disjoint-branch writers never contend.
    pk: Vec<RwLock<FxHashMap<u64, (SegmentId, RecordIdx)>>>,
    /// Copy-on-write version graph: readers clone the `Arc` and traverse
    /// without holding the lock; committers `Arc::make_mut` under it.
    graph: RwLock<Arc<VersionGraph>>,
    /// Commits made per branch (ordinal source for commit stores).
    /// Same-branch commits are serialized by the caller; the atomic makes
    /// cross-branch reads (checkpoint) torn-free.
    branch_commits: Vec<AtomicU64>,
    /// Global commit id → (branch, branch-commit ordinal).
    commit_map: RwLock<FxHashMap<CommitId, (BranchId, u64)>>,
    /// Persistent work-stealing pool for parallel segment scans, sized to
    /// the machine once per engine on first parallel scan (no threads are
    /// spawned per call).
    scan_pool: OnceLock<ScanPool>,
    /// Whether checkpoint flushes fsync (from [`StoreConfig::fsync`]).
    fsync: bool,
}

/// Commit-store file for one (segment, branch) pair.
fn store_path(dir: &Path, seg: SegmentId, b: BranchId) -> PathBuf {
    dir.join(format!("commits_s{}_b{}.dcl", seg.raw(), b.raw()))
}

impl HybridEngine {
    /// Initializes a fresh store in `dir` with an empty `master` branch.
    pub fn init(dir: impl AsRef<Path>, schema: Schema, config: &StoreConfig) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        config
            .env
            .create_dir_all(&dir)
            .map_err(|e| DbError::io("creating engine directory", e))?;
        let pool = Arc::new(BufferPool::for_store(config));
        let mut engine = HybridEngine {
            dir,
            schema,
            pool,
            segments: Vec::new(),
            branch_seg: RwLock::new(BranchBitmapIndex::new()),
            head: Vec::new(),
            pk: vec![RwLock::new(FxHashMap::default())],
            graph: RwLock::new(Arc::new(VersionGraph::init())),
            branch_commits: vec![AtomicU64::new(0)],
            commit_map: RwLock::new(FxHashMap::default()),
            scan_pool: OnceLock::new(),
            fsync: config.fsync,
        };
        engine
            .branch_seg
            .get_mut()
            .add_branch(BranchId::MASTER, None);
        let seg = engine.new_segment()?;
        engine.head.push(seg);
        engine.mark_branch_segment(BranchId::MASTER, seg);
        engine.segments[seg.index()]
            .index
            .get_mut()
            .add_branch(BranchId::MASTER, None);
        let init = engine.snapshot_commit(BranchId::MASTER)?;
        engine
            .commit_map
            .get_mut()
            .insert(CommitId::INIT, (BranchId::MASTER, init));
        Ok(engine)
    }

    /// Reopens an engine from checkpoint-flushed state: segment heap
    /// files, per-(branch, segment) commit-store files, and the snapshot
    /// `payload` a previous [`VersionedStore::checkpoint`] call produced
    /// (embedded graph, per-segment bitmap columns, branch-segment bitmap,
    /// head assignments, commit ordinals). The per-branch primary-key
    /// indexes are derived state and are rebuilt from the bitmap columns;
    /// the journal is not consulted.
    pub fn open_from(
        dir: impl AsRef<Path>,
        schema: Schema,
        config: &StoreConfig,
        payload: &[u8],
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let pool = Arc::new(BufferPool::for_store(config));
        let corrupt = |what: &str| DbError::corrupt(format!("hybrid checkpoint: {what}"));
        let mut pos = 0usize;
        let graph = VersionGraph::from_bytes(checkpoint::read_slice(payload, &mut pos)?)?;
        let n_branches = graph.num_branches();
        let n_segments = varint::read_u64(payload, &mut pos)? as usize;
        // Pass 1: segments (heaps at coverage, local bitmap columns, the
        // commit-store coordinates to open below).
        let mut segments = Vec::with_capacity(n_segments);
        let mut store_specs: Vec<Vec<(BranchId, u64, u64, u32)>> = Vec::with_capacity(n_segments);
        for s in 0..n_segments {
            let heap_len = varint::read_u64(payload, &mut pos)?;
            let heap = HeapFile::open_at(
                Arc::clone(&pool),
                dir.join(format!("seg_{s}.dat")),
                schema.clone(),
                heap_len,
            )?;
            let frozen = *payload.get(pos).ok_or_else(|| corrupt("truncated flags"))? != 0;
            pos += 1;
            let mut index = BranchBitmapIndex::new();
            let n_cols = varint::read_u64(payload, &mut pos)? as usize;
            for _ in 0..n_cols {
                let b = BranchId(varint::read_u64(payload, &mut pos)? as u32);
                let bm = checkpoint::read_bitmap(payload, &mut pos)?;
                index.restore_branch(b, &bm);
            }
            index.ensure_rows(heap_len);
            let n_stores = varint::read_u64(payload, &mut pos)? as usize;
            let mut specs = Vec::with_capacity(n_stores);
            for _ in 0..n_stores {
                let b = BranchId(varint::read_u64(payload, &mut pos)? as u32);
                let first = varint::read_u64(payload, &mut pos)?;
                let covered = varint::read_u64(payload, &mut pos)?;
                let pending = varint::read_u64(payload, &mut pos)? as u32;
                specs.push((b, first, covered, pending));
            }
            store_specs.push(specs);
            segments.push(HySegment {
                heap,
                index: RwLock::new(index),
                frozen,
                stores: RwLock::new(FxHashMap::default()),
            });
        }
        // Pass 2: global structures.
        let n_seg_cols = varint::read_u64(payload, &mut pos)? as usize;
        if n_seg_cols != n_branches {
            return Err(corrupt("branch-segment column count mismatch"));
        }
        let mut branch_seg = BranchBitmapIndex::new();
        branch_seg.ensure_rows(n_segments as u64);
        for b in 0..n_branches {
            let bm = checkpoint::read_bitmap(payload, &mut pos)?;
            branch_seg.restore_branch(BranchId(b as u32), &bm);
        }
        let n_heads = varint::read_u64(payload, &mut pos)? as usize;
        if n_heads != n_branches {
            return Err(corrupt("head count mismatch"));
        }
        let mut head = Vec::with_capacity(n_heads);
        for _ in 0..n_heads {
            let seg = SegmentId(varint::read_u64(payload, &mut pos)? as u32);
            if seg.index() >= n_segments {
                return Err(corrupt("head names unknown segment"));
            }
            head.push(seg);
        }
        let n_counts = varint::read_u64(payload, &mut pos)? as usize;
        if n_counts != n_branches {
            return Err(corrupt("branch commit-count mismatch"));
        }
        let mut branch_commits = Vec::with_capacity(n_counts);
        for _ in 0..n_counts {
            branch_commits.push(varint::read_u64(payload, &mut pos)?);
        }
        let commit_map: FxHashMap<CommitId, (BranchId, u64)> =
            checkpoint::read_triples(payload, &mut pos)?
                .into_iter()
                .map(|(c, b, ord)| (CommitId(c), (BranchId(b as u32), ord)))
                .collect();
        // Pass 3: reopen the commit stores and validate each delta chain
        // against the branch's recorded commit count — a store that lost a
        // synced delta (or kept one from a discarded future) fails here
        // rather than serving a wrong historical checkout later.
        for (s, specs) in store_specs.into_iter().enumerate() {
            for (b, first, covered, pending) in specs {
                let store = CommitStore::open_at_in(
                    Arc::clone(pool.env()),
                    store_path(&dir, SegmentId(s as u32), b),
                    CommitStore::DEFAULT_LAYER_INTERVAL,
                    covered,
                    pending,
                )?;
                let expect = branch_commits
                    .get(b.index())
                    .ok_or_else(|| corrupt("store names unknown branch"))?
                    .checked_sub(first)
                    .ok_or_else(|| corrupt("store ordinal beyond branch history"))?;
                if store.commit_count() != expect {
                    return Err(corrupt(&format!(
                        "store (segment {s}, branch {}) holds {} snapshots, expected {expect}",
                        b.raw(),
                        store.commit_count()
                    )));
                }
                segments[s].stores.get_mut().insert(b, (store, first));
            }
        }
        // Pass 4: rebuild the per-branch primary-key indexes from the
        // bitmap columns (one live copy per key per branch by invariant).
        let mut pk = Vec::with_capacity(n_branches);
        for b in 0..n_branches {
            let bid = BranchId(b as u32);
            let mut keys = FxHashMap::default();
            let seg_bits = branch_seg.branch_bitmap(bid);
            let mut spos = 0u64;
            while let Some(s) = seg_bits.next_one(spos) {
                spos = s + 1;
                let seg = segments
                    .get_mut(s as usize)
                    .ok_or_else(|| corrupt("branch-segment bit names unknown segment"))?;
                let index = seg.index.get_mut();
                if !index.has_branch(bid) {
                    continue;
                }
                let col = index.branch_bitmap(bid);
                let mut cursor = seg.heap.pinned_cursor();
                let mut row = 0u64;
                while let Some(r) = col.next_one(row) {
                    row = r + 1;
                    let (key, _) = cursor.peek_key(r)?;
                    keys.insert(key, (SegmentId(s as u32), RecordIdx(r)));
                }
            }
            pk.push(keys);
        }
        Ok(HybridEngine {
            dir,
            schema,
            pool,
            segments,
            branch_seg: RwLock::new(branch_seg),
            head,
            pk: pk.into_iter().map(RwLock::new).collect(),
            graph: RwLock::new(Arc::new(graph)),
            branch_commits: branch_commits.into_iter().map(AtomicU64::new).collect(),
            commit_map: RwLock::new(commit_map),
            scan_pool: OnceLock::new(),
            fsync: config.fsync,
        })
    }

    fn new_segment(&mut self) -> Result<SegmentId> {
        let id = SegmentId(self.segments.len() as u32);
        let heap = HeapFile::create(
            Arc::clone(&self.pool),
            self.dir.join(format!("seg_{}.dat", id.raw())),
            self.schema.clone(),
        )?;
        self.segments.push(HySegment {
            heap,
            index: RwLock::new(BranchBitmapIndex::new()),
            frozen: false,
            stores: RwLock::new(FxHashMap::default()),
        });
        self.branch_seg
            .get_mut()
            .ensure_rows(self.segments.len() as u64);
        Ok(id)
    }

    fn mark_branch_segment(&self, branch: BranchId, seg: SegmentId) {
        let mut bs = self.branch_seg.write();
        bs.ensure_rows(self.segments.len() as u64);
        bs.set(branch, seg.raw() as u64, true);
    }

    /// Segment ids containing records of `branch`, from the global bitmap.
    fn segments_of(&self, branch: BranchId) -> Vec<SegmentId> {
        self.branch_seg
            .read()
            .branch_bitmap(branch)
            .iter_ones()
            .map(|s| SegmentId(s as u32))
            .collect()
    }

    /// Appends a commit snapshot of every (branch, segment) bitmap and
    /// returns the branch-commit ordinal. Safe to run concurrently with
    /// other *branches'* snapshots (they touch other columns and other
    /// commit stores); same-branch callers are serialized by the database.
    fn snapshot_commit(&self, branch: BranchId) -> Result<u64> {
        let ord = self.branch_commits[branch.index()].load(Ordering::Acquire);
        for seg_id in self.segments_of(branch) {
            let seg = &self.segments[seg_id.index()];
            let col = seg.index.read().branch_bitmap(branch);
            let mut stores = seg.stores.write();
            let (store, _) = match stores.entry(branch) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => {
                    let store = CommitStore::create_in(
                        Arc::clone(self.pool.env()),
                        store_path(&self.dir, seg_id, branch),
                        CommitStore::DEFAULT_LAYER_INTERVAL,
                    )?;
                    e.insert((store, ord))
                }
            };
            store.append_commit(&col)?;
        }
        self.branch_commits[branch.index()].store(ord + 1, Ordering::Release);
        Ok(ord)
    }

    fn do_commit(&self, branch: BranchId, extra_parents: &[CommitId]) -> Result<CommitId> {
        let ord = self.snapshot_commit(branch)?;
        let mut graph = self.graph.write();
        let cid = Arc::make_mut(&mut graph).add_commit(branch, extra_parents)?;
        self.commit_map.write().insert(cid, (branch, ord));
        Ok(cid)
    }

    /// Reconstructs the per-segment liveness bitmaps of a version.
    fn version_bitmaps(&self, version: VersionRef) -> Result<Vec<(SegmentId, Bitmap)>> {
        match version {
            VersionRef::Branch(b) => {
                self.graph.read().branch(b)?;
                Ok(self
                    .segments_of(b)
                    .into_iter()
                    .map(|s| (s, self.segments[s.index()].index.read().branch_bitmap(b)))
                    .collect())
            }
            VersionRef::Commit(c) => {
                let (b, ord) = *self
                    .commit_map
                    .read()
                    .get(&c)
                    .ok_or(DbError::UnknownCommit(c.raw()))?;
                let mut out = Vec::new();
                for (idx, seg) in self.segments.iter().enumerate() {
                    let stores = seg.stores.read();
                    if let Some((store, first)) = stores.get(&b) {
                        if ord >= *first && ord - first < store.commit_count() {
                            out.push((SegmentId(idx as u32), store.checkout(ord - first)?));
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    /// Ensures `branch` has a bitmap column in `seg`.
    fn ensure_column(&self, seg: SegmentId, branch: BranchId) {
        let s = &self.segments[seg.index()];
        let mut index = s.index.write();
        if !index.has_branch(branch) {
            index.add_branch(branch, None);
        }
        index.ensure_rows(s.heap.len());
    }

    /// Clears the live bit of a branch's current copy of a key, if any.
    fn clear_old(&self, branch: BranchId, key: u64) -> Option<(SegmentId, RecordIdx)> {
        let old = self.pk[branch.index()].write().remove(&key)?;
        // Internal segments stay frozen for data, "only the segment's
        // bitmap may change" (§3.4) — exactly this operation.
        let seg = &self.segments[old.0.index()];
        let mut index = seg.index.write();
        index.ensure_rows(seg.heap.len());
        index.set(branch, old.1.raw(), false);
        Some(old)
    }

    /// Appends a record to the branch's head segment and marks it live.
    fn append_live(&self, branch: BranchId, record: &Record) -> Result<(SegmentId, RecordIdx)> {
        let seg_id = self.head[branch.index()];
        let seg = &self.segments[seg_id.index()];
        debug_assert!(!seg.frozen, "head segment must be unfrozen");
        let idx = seg.heap.append(record)?;
        {
            let mut index = seg.index.write();
            if !index.has_branch(branch) {
                index.add_branch(branch, None);
            }
            index.ensure_rows(seg.heap.len());
            index.set(branch, idx.raw(), true);
        }
        self.mark_branch_segment(branch, seg_id);
        self.pk[branch.index()]
            .write()
            .insert(record.key(), (seg_id, idx));
        Ok((seg_id, idx))
    }

    /// Builds a change set of `side` relative to `base` per-segment bitmaps.
    ///
    /// The per-segment record scans run as one task per segment on the
    /// engine's persistent [`ScanPool`] — the same work-stealing fan-out
    /// `par_multi_scan` uses, so a merge whose diff touches many segments
    /// no longer pays for them sequentially. Combining the task outputs is
    /// order-independent within each phase (a version holds exactly one
    /// live copy per key, so no two added-row tasks — and no two
    /// removed-row tasks — can produce the same key); the *phases* keep
    /// their order: every added row lands in the map before any removed
    /// row's `or_insert(None)`, exactly as the sequential loops did.
    fn change_set(
        &self,
        side: &[(SegmentId, Bitmap)],
        base: &[(SegmentId, Bitmap)],
    ) -> Result<(ChangeSet, u64)> {
        let base_map: FxHashMap<SegmentId, &Bitmap> = base.iter().map(|(s, b)| (*s, b)).collect();
        let side_map: FxHashMap<SegmentId, &Bitmap> = side.iter().map(|(s, b)| (*s, b)).collect();
        // Plan: (segment, rows to decode, is the removed-rows phase).
        let mut plan: Vec<(SegmentId, Bitmap, bool)> = Vec::new();
        // Rows live on the side but not in the base: inserts/updated copies.
        for (seg, bm) in side {
            let added = match base_map.get(seg) {
                Some(base_bm) => bm.and_not(base_bm),
                None => bm.clone(),
            };
            if added.count_ones() > 0 {
                plan.push((*seg, added, false));
            }
        }
        // Base rows gone from the side: deletions (unless replaced above).
        for (seg, bm) in base {
            let removed = match side_map.get(seg) {
                Some(side_bm) => bm.and_not(side_bm),
                None => bm.clone(),
            };
            if removed.count_ones() > 0 {
                plan.push((*seg, removed, true));
            }
        }
        let segments = &self.segments;
        let tasks: Vec<_> = plan
            .iter()
            .map(|(seg, bm, _)| {
                let heap = &segments[seg.index()].heap;
                move || {
                    BitmapScan::new(heap, bm.clone())
                        .map(|item| item.map(|(_, rec)| rec))
                        .collect::<Result<Vec<Record>>>()
                }
            })
            .collect();
        let outcomes = if tasks.len() > 1 {
            self.scan_pool().run(tasks)
        } else {
            tasks.into_iter().map(|t| t()).collect()
        };
        let mut changes = ChangeSet::default();
        let mut bytes = 0u64;
        for ((_, _, removed), rows) in plan.iter().zip(outcomes) {
            for rec in rows? {
                bytes += self.schema.record_size() as u64;
                if *removed {
                    changes.entry(rec.key()).or_insert(None);
                } else {
                    changes.insert(rec.key(), Some(rec));
                }
            }
        }
        Ok((changes, bytes))
    }

    /// The engine's persistent scan pool (spawned on first use, reused for
    /// every parallel scan thereafter).
    fn scan_pool(&self) -> &ScanPool {
        self.scan_pool
            .get_or_init(|| ScanPool::new(ScanPool::default_threads()))
    }

    /// Shared planning for multi-branch scans: per relevant segment, the
    /// union bitmap and the per-branch columns.
    #[allow(clippy::type_complexity)]
    fn multi_scan_plan(
        &self,
        branches: &[BranchId],
    ) -> Result<Vec<(SegmentId, Bitmap, Vec<(BranchId, Bitmap)>)>> {
        // "to find the set of records represented in either of two
        // branches, one need only consult the segments identified by the
        // logical OR of the rows for those branches" (§3.4).
        {
            let graph = self.graph.read();
            for &b in branches {
                graph.branch(b)?;
            }
        }
        let mut seg_union = Bitmap::zeros(self.segments.len() as u64);
        {
            let bs = self.branch_seg.read();
            for &b in branches {
                seg_union.or_assign(&bs.branch_bitmap(b));
            }
        }
        let mut plan = Vec::new();
        for s in seg_union.iter_ones() {
            let seg_id = SegmentId(s as u32);
            let seg = &self.segments[s as usize];
            let index = seg.index.read();
            let mut union = Bitmap::zeros(seg.heap.len());
            let mut cols = Vec::new();
            for &b in branches {
                if index.has_branch(b) {
                    let col = index.branch_bitmap(b);
                    union.or_assign(&col);
                    cols.push((b, col));
                }
            }
            plan.push((seg_id, union, cols));
        }
        Ok(plan)
    }
}

impl VersionedStore for HybridEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Hybrid
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn graph(&self) -> Arc<VersionGraph> {
        Arc::clone(&self.graph.read())
    }

    fn create_branch(&mut self, name: &str, from: VersionRef) -> Result<BranchId> {
        // Name check first: the implicit parent commit below must not be
        // created (and dangle) behind a duplicate-name error.
        self.graph.read().check_name_free(name)?;
        let (from_commit, parent_branch) = match from {
            VersionRef::Branch(b) => {
                let cid = self.do_commit(b, &[])?;
                (cid, Some(b))
            }
            VersionRef::Commit(c) => (c, None),
        };
        let new_b = Arc::make_mut(self.graph.get_mut()).create_branch(name, from_commit)?;
        debug_assert_eq!(new_b.index(), self.pk.len());
        self.branch_commits.push(AtomicU64::new(0));
        match parent_branch {
            Some(p) => {
                // "The branch operation creates two new head segments ...
                // The old head of the parent becomes an internal segment
                // that contains records in both branches (note that its
                // bitmap is expanded)" (§3.4).
                let old_head = self.head[p.index()];
                self.segments[old_head.index()].frozen = true;
                // Child inherits the parent's liveness in every ancestral
                // segment — "a bitmap scan ... only for those records in
                // the direct ancestry instead of on the entire bitmap".
                self.branch_seg.get_mut().add_branch(new_b, Some(p));
                for seg_id in self.segments_of(p) {
                    let index = self.segments[seg_id.index()].index.get_mut();
                    if index.has_branch(p) {
                        index.add_branch(new_b, Some(p));
                    }
                }
                let inherited = self.pk[p.index()].get_mut().clone();
                self.pk.push(RwLock::new(inherited));
                // Two fresh head segments.
                let p_head = self.new_segment()?;
                self.head[p.index()] = p_head;
                self.mark_branch_segment(p, p_head);
                self.segments[p_head.index()]
                    .index
                    .get_mut()
                    .add_branch(p, None);
                let c_head = self.new_segment()?;
                self.head.push(c_head);
                self.mark_branch_segment(new_b, c_head);
                self.segments[c_head.index()]
                    .index
                    .get_mut()
                    .add_branch(new_b, None);
            }
            None => {
                // Fork from a historical commit: restore its per-segment
                // bitmaps as the child's columns.
                let bitmaps = self.version_bitmaps(VersionRef::Commit(from_commit))?;
                self.branch_seg.get_mut().add_branch(new_b, None);
                let mut keys = FxHashMap::default();
                for (seg_id, bm) in bitmaps {
                    if bm.count_ones() == 0 {
                        continue;
                    }
                    {
                        let seg = &mut self.segments[seg_id.index()];
                        let heap_len = seg.heap.len();
                        let index = seg.index.get_mut();
                        index.add_branch(new_b, None);
                        index.ensure_rows(heap_len);
                        index.restore_branch(new_b, &bm);
                    }
                    self.mark_branch_segment(new_b, seg_id);
                    let mut pos = 0u64;
                    while let Some(row) = bm.next_one(pos) {
                        pos = row + 1;
                        let (key, _) = self.segments[seg_id.index()]
                            .heap
                            .peek_key(RecordIdx(row))?;
                        keys.insert(key, (seg_id, RecordIdx(row)));
                    }
                }
                self.pk.push(RwLock::new(keys));
                let c_head = self.new_segment()?;
                self.head.push(c_head);
                self.mark_branch_segment(new_b, c_head);
                self.segments[c_head.index()]
                    .index
                    .get_mut()
                    .add_branch(new_b, None);
            }
        }
        Ok(new_b)
    }

    fn prepare_commit(&self, branch: BranchId) -> Result<PreparedCommit> {
        self.graph.read().branch(branch)?;
        let ord = self.snapshot_commit(branch)?;
        Ok(PreparedCommit(vec![(0, ord)]))
    }

    fn finalize_commit(&self, branch: BranchId, prep: PreparedCommit) -> Result<CommitId> {
        let &(_, ord) = prep
            .0
            .first()
            .ok_or_else(|| DbError::Invalid("empty prepared commit".into()))?;
        let mut graph = self.graph.write();
        let cid = Arc::make_mut(&mut graph).add_commit(branch, &[])?;
        self.commit_map.write().insert(cid, (branch, ord));
        Ok(cid)
    }

    fn checkout_version(&self, commit: CommitId) -> Result<u64> {
        Ok(self
            .version_bitmaps(VersionRef::Commit(commit))?
            .iter()
            .map(|(_, bm)| bm.count_ones())
            .sum())
    }

    fn insert(&self, branch: BranchId, record: Record) -> Result<()> {
        self.schema.check_arity(record.fields().len())?;
        self.graph.read().branch(branch)?;
        if self.pk[branch.index()].read().contains_key(&record.key()) {
            return Err(DbError::DuplicateKey { key: record.key() });
        }
        self.append_live(branch, &record)?;
        Ok(())
    }

    fn update(&self, branch: BranchId, record: Record) -> Result<()> {
        self.schema.check_arity(record.fields().len())?;
        self.graph.read().branch(branch)?;
        if !self.pk[branch.index()].read().contains_key(&record.key()) {
            return Err(DbError::KeyNotFound { key: record.key() });
        }
        self.clear_old(branch, record.key());
        self.append_live(branch, &record)?;
        Ok(())
    }

    fn delete(&self, branch: BranchId, key: u64) -> Result<bool> {
        self.graph.read().branch(branch)?;
        Ok(self.clear_old(branch, key).is_some())
    }

    fn get(&self, version: VersionRef, key: u64) -> Result<Option<Record>> {
        if let VersionRef::Branch(b) = version {
            self.graph.read().branch(b)?;
            let loc = self.pk[b.index()].read().get(&key).copied();
            return match loc {
                Some((seg, idx)) => Ok(Some(self.segments[seg.index()].heap.get(idx)?)),
                None => Ok(None),
            };
        }
        for (seg, bm) in self.version_bitmaps(version)? {
            let heap = &self.segments[seg.index()].heap;
            let mut pos = 0u64;
            while let Some(row) = bm.next_one(pos) {
                pos = row + 1;
                let (k, _) = heap.peek_key(RecordIdx(row))?;
                if k == key {
                    return Ok(Some(heap.get(RecordIdx(row))?));
                }
            }
        }
        Ok(None)
    }

    fn scan(&self, version: VersionRef) -> Result<RecordIter<'_>> {
        let bitmaps = self.version_bitmaps(version)?;
        Ok(Box::new(
            HyScan {
                engine: self,
                segs: bitmaps,
                pos: 0,
                inner: None,
            }
            .map(|item| item.map(|(_, _, rec)| rec)),
        ))
    }

    fn multi_scan(&self, branches: &[BranchId]) -> Result<AnnotatedIter<'_>> {
        let plan = self.multi_scan_plan(branches)?;
        Ok(Box::new(HyAnnotatedScan {
            engine: self,
            plan: plan.into_iter(),
            inner: None,
        }))
    }

    /// Parallel multi-branch scan: one work-stealing task per segment on
    /// the engine's persistent [`ScanPool`] — the parallelism the
    /// branch-segment bitmap "allows for" (§3.4). Per-segment granularity
    /// means skewed segment sizes no longer serialize on the largest fixed
    /// chunk: idle workers steal the remaining segments. Results are
    /// materialized per segment and returned in (segment, slot) order,
    /// byte-identical to [`VersionedStore::multi_scan`] for any `threads`.
    ///
    /// `threads` is a hint kept for API compatibility: values ≤ 1 run the
    /// plan inline on the calling thread; anything larger routes through
    /// the pool (whose size is fixed per engine, not per call).
    fn par_multi_scan(
        &self,
        branches: &[BranchId],
        threads: usize,
    ) -> Result<Vec<(Record, Vec<BranchId>)>> {
        let plan = self.multi_scan_plan(branches)?;
        // Every task's output size is known exactly (the union popcount),
        // so tasks write straight into disjoint spare-capacity slices of
        // the result vector: rows are materialized once, in place — no
        // per-task intermediate vector, no flatten copy, no sort (plan
        // entries are in ascending segment order and the pool returns
        // outcomes in task order).
        let counts: Vec<usize> = plan
            .iter()
            .map(|(_, union, _)| union.count_ones() as usize)
            .collect();
        let total: usize = counts.iter().sum();
        let mut flat: Vec<(Record, Vec<BranchId>)> = Vec::with_capacity(total);
        let segments = &self.segments;
        let outcomes = {
            let mut spare = &mut flat.spare_capacity_mut()[..total];
            let mut tasks = Vec::with_capacity(plan.len());
            for ((seg, union, cols), &count) in plan.iter().zip(&counts) {
                let (slot, rest) = spare.split_at_mut(count);
                spare = rest;
                let heap = &segments[seg.index()].heap;
                tasks.push(move || scan_annotated_slice(heap, union, cols, slot));
            }
            if threads <= 1 || tasks.len() <= 1 {
                tasks.into_iter().map(|mut t| t()).collect::<Vec<_>>()
            } else {
                self.scan_pool().run(tasks)
            }
        };
        if outcomes.iter().any(|o| o.is_err()) {
            // Failed scan: drop whatever rows were initialized (full slices
            // for Ok tasks, the reported prefix for failed ones) and
            // surface the first error.
            let spare = flat.spare_capacity_mut();
            let mut off = 0usize;
            let mut first_err = None;
            for (i, outcome) in outcomes.into_iter().enumerate() {
                let initialized = match outcome {
                    Ok(()) => counts[i],
                    Err((filled, e)) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                        filled
                    }
                };
                for cell in &mut spare[off..off + initialized] {
                    // SAFETY: exactly `initialized` leading cells of this
                    // task's slice were written.
                    unsafe { cell.assume_init_drop() };
                }
                off += counts[i];
            }
            return Err(first_err.expect("an error outcome was observed"));
        }
        // SAFETY: every task returned Ok, which certifies it initialized
        // its entire `count`-cell slice; the slices tile `[0, total)`.
        unsafe { flat.set_len(total) };
        Ok(flat)
    }

    fn scan_pipeline(
        &self,
        version: VersionRef,
        plan: &ScanPlan,
        from: u64,
    ) -> Result<PosRecordIter<'_>> {
        // Resume tokens pack (segment id, slot + 1); restarting is O(1):
        // whole segments before the token are skipped by id and the token
        // segment's pipeline scan starts at the token slot's liveness word.
        let bitmaps = self.version_bitmaps(version)?;
        Ok(Box::new(HyPipelineScan::new(
            self,
            bitmaps,
            plan.lower(),
            from,
        )))
    }

    fn multi_scan_pipeline(
        &self,
        branches: &[BranchId],
        plan: &ScanPlan,
        from: u64,
    ) -> Result<PosAnnotatedIter<'_>> {
        let splan = self.multi_scan_plan(branches)?;
        Ok(Box::new(HyPipelineAnnotatedScan::new(
            self,
            splan,
            plan.lower(),
            from,
        )))
    }

    fn diff(&self, left: VersionRef, right: VersionRef) -> Result<DiffResult> {
        let lmaps: FxHashMap<SegmentId, Bitmap> = self.version_bitmaps(left)?.into_iter().collect();
        let rmaps: FxHashMap<SegmentId, Bitmap> =
            self.version_bitmaps(right)?.into_iter().collect();
        let mut out = DiffResult::default();
        let mut segs: Vec<SegmentId> = lmaps.keys().chain(rmaps.keys()).copied().collect();
        segs.sort_unstable();
        segs.dedup();
        let empty = Bitmap::new();
        for seg in segs {
            let l = lmaps.get(&seg).unwrap_or(&empty);
            let r = rmaps.get(&seg).unwrap_or(&empty);
            let heap = &self.segments[seg.index()].heap;
            for item in BitmapScan::new(heap, l.and_not(r)) {
                out.left_only.push(item?.1);
            }
            for item in BitmapScan::new(heap, r.and_not(l)) {
                out.right_only.push(item?.1);
            }
        }
        Ok(out)
    }

    fn merge(
        &mut self,
        into: BranchId,
        from: BranchId,
        policy: MergePolicy,
    ) -> Result<MergeResult> {
        {
            let graph = self.graph.read();
            graph.branch(into)?;
            graph.branch(from)?;
        }
        self.do_commit(into, &[])?;
        let from_head = self.do_commit(from, &[])?;

        // "the segment bitmaps can be leveraged (also requiring the lowest
        // common ancestor commit) to determine where the conflicts are
        // within the segment" (§3.4).
        let lca = {
            let graph = self.graph.read();
            graph.lca(graph.head(into)?, from_head)?
        };
        let lca_bms = self.version_bitmaps(VersionRef::Commit(lca))?;
        let into_bms = self.version_bitmaps(VersionRef::Branch(into))?;
        let from_bms = self.version_bitmaps(VersionRef::Branch(from))?;

        let (left_changes, lbytes) = self.change_set(&into_bms, &lca_bms)?;
        let (right_changes, rbytes) = self.change_set(&from_bms, &lca_bms)?;

        // Base copies for both-changed keys: LCA rows replaced in `into`.
        let into_map: FxHashMap<SegmentId, &Bitmap> =
            into_bms.iter().map(|(s, b)| (*s, b)).collect();
        let mut base_rows: FxHashMap<u64, (SegmentId, RecordIdx)> = FxHashMap::default();
        for (seg, bm) in &lca_bms {
            let gone = match into_map.get(seg) {
                Some(ib) => bm.and_not(ib),
                None => bm.clone(),
            };
            let heap = &self.segments[seg.index()].heap;
            let mut pos = 0u64;
            while let Some(row) = gone.next_one(pos) {
                pos = row + 1;
                let (key, _) = heap.peek_key(RecordIdx(row))?;
                base_rows.insert(key, (*seg, RecordIdx(row)));
            }
        }

        let segments = &self.segments;
        let plan = plan_merge(
            policy,
            &left_changes,
            &right_changes,
            self.schema.record_size(),
            |key| match base_rows.get(&key) {
                Some(&(seg, idx)) => Ok(Some(segments[seg.index()].heap.get(idx)?)),
                None => Ok(None),
            },
        )?;

        let mut changed = 0u64;
        for (key, action) in &plan.actions {
            match action {
                MergeAction::KeepLeft => {}
                MergeAction::TakeRight(_) => {
                    // Adopt the source's copy in place: mark it live for
                    // `into` in its containing segment ("identifying the
                    // new segments from the second parent that must track
                    // records for the branch it is being merged into").
                    let (seg, idx) = self.pk[from.index()].read()[key];
                    self.clear_old(into, *key);
                    self.ensure_column(seg, into);
                    self.segments[seg.index()]
                        .index
                        .write()
                        .set(into, idx.raw(), true);
                    self.mark_branch_segment(into, seg);
                    self.pk[into.index()].write().insert(*key, (seg, idx));
                    changed += 1;
                }
                MergeAction::Materialize(rec) => {
                    self.clear_old(into, *key);
                    self.append_live(into, rec)?;
                    changed += 1;
                }
                MergeAction::Delete => {
                    if self.clear_old(into, *key).is_some() {
                        changed += 1;
                    }
                }
            }
        }

        let commit = self.do_commit(into, &[from_head])?;
        Ok(MergeResult {
            commit,
            conflicts: plan.conflicts,
            records_changed: changed,
            bytes_compared: plan.bytes_compared + lbytes + rbytes,
        })
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            data_bytes: self.segments.iter().map(|s| s.heap.byte_size()).sum(),
            index_bytes: (self
                .segments
                .iter()
                .map(|s| s.index.read().byte_size())
                .sum::<usize>()
                + self.branch_seg.read().byte_size()) as u64,
            commit_store_bytes: self
                .segments
                .iter()
                .map(|s| {
                    s.stores
                        .read()
                        .values()
                        .map(|(store, _)| store.file_size())
                        .sum::<u64>()
                })
                .sum(),
            num_segments: self.segments.len() as u32,
            num_commits: self.graph.read().num_commits(),
        }
    }

    fn flush(&mut self) -> Result<()> {
        for seg in &self.segments {
            seg.heap.flush()?;
        }
        self.graph.get_mut().save(self.dir.join("graph.dvg"))
    }

    fn checkpoint(&mut self) -> Result<Vec<u8>> {
        for seg in &self.segments {
            seg.heap.flush()?;
            if self.fsync {
                seg.heap.sync()?;
                for (store, _) in seg.stores.read().values() {
                    store.sync()?;
                }
            }
        }
        self.graph.get_mut().save_in(
            self.pool.env().as_ref(),
            self.dir.join("graph.dvg"),
            self.fsync,
        )?;
        let mut out = Vec::new();
        checkpoint::write_slice(&mut out, &self.graph.get_mut().to_bytes());
        varint::write_u64(&mut out, self.segments.len() as u64);
        for seg in &self.segments {
            varint::write_u64(&mut out, seg.heap.len());
            out.push(seg.frozen as u8);
            // Local bitmap columns, branch-sorted for a deterministic
            // snapshot (the column maps iterate in arbitrary order).
            let index = seg.index.read();
            let mut cols: Vec<BranchId> = index.branches().collect();
            cols.sort_unstable();
            varint::write_u64(&mut out, cols.len() as u64);
            for b in cols {
                varint::write_u64(&mut out, b.raw() as u64);
                checkpoint::write_bitmap(&mut out, &index.branch_bitmap(b));
            }
            let stores = seg.stores.read();
            let mut sorted: Vec<(BranchId, &(CommitStore, u64))> =
                stores.iter().map(|(b, s)| (*b, s)).collect();
            sorted.sort_unstable_by_key(|(b, _)| *b);
            varint::write_u64(&mut out, sorted.len() as u64);
            for (b, (store, first)) in sorted {
                varint::write_u64(&mut out, b.raw() as u64);
                varint::write_u64(&mut out, *first);
                varint::write_u64(&mut out, store.on_disk_len());
                varint::write_u64(&mut out, store.pending_empty_count() as u64);
            }
        }
        let n_branches = self.graph.get_mut().num_branches();
        varint::write_u64(&mut out, n_branches as u64);
        {
            let bs = self.branch_seg.get_mut();
            for b in 0..n_branches {
                checkpoint::write_bitmap(&mut out, &bs.branch_bitmap(BranchId(b as u32)));
            }
        }
        varint::write_u64(&mut out, self.head.len() as u64);
        for &seg in &self.head {
            varint::write_u64(&mut out, seg.raw() as u64);
        }
        varint::write_u64(&mut out, self.branch_commits.len() as u64);
        for n in &self.branch_commits {
            varint::write_u64(&mut out, n.load(Ordering::Acquire));
        }
        checkpoint::write_triples(
            &mut out,
            self.commit_map
                .get_mut()
                .iter()
                .map(|(c, (b, ord))| (c.raw(), b.raw() as u64, *ord)),
        );
        Ok(out)
    }

    fn drop_caches(&self) {
        self.pool.clear();
    }
}

/// Streaming word-batched multi-branch scan: one [`AnnotatedScan`] per
/// planned segment, visited in segment order.
struct HyAnnotatedScan<'a> {
    engine: &'a HybridEngine,
    #[allow(clippy::type_complexity)]
    plan: std::vec::IntoIter<(SegmentId, Bitmap, Vec<(BranchId, Bitmap)>)>,
    inner: Option<AnnotatedScan<'a>>,
}

impl Iterator for HyAnnotatedScan<'_> {
    type Item = Result<(Record, Vec<BranchId>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(scan) = &mut self.inner {
                if let Some(item) = scan.next() {
                    return Some(item.map(|(_, rec, live)| (rec, live)));
                }
                self.inner = None;
            }
            let (seg, union, cols) = self.plan.next()?;
            self.inner = Some(AnnotatedScan::new(
                &self.engine.segments[seg.index()].heap,
                union,
                cols,
            ));
        }
    }
}

/// Streaming scan over a version's per-segment bitmaps.
struct HyScan<'a> {
    engine: &'a HybridEngine,
    segs: Vec<(SegmentId, Bitmap)>,
    pos: usize,
    inner: Option<BitmapScan<'a>>,
}

impl Iterator for HyScan<'_> {
    type Item = Result<(SegmentId, RecordIdx, Record)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(scan) = &mut self.inner {
                if let Some(item) = scan.next() {
                    let seg = self.segs[self.pos - 1].0;
                    return Some(item.map(|(idx, rec)| (seg, idx, rec)));
                }
                self.inner = None;
            }
            let (seg, bm) = self.segs.get(self.pos)?;
            self.pos += 1;
            self.inner = Some(BitmapScan::new(
                &self.engine.segments[seg.index()].heap,
                bm.clone(),
            ));
        }
    }
}

/// Streaming pipeline scan over a version's per-segment bitmaps: one
/// [`PipelineScan`] per segment, visited in segment-id order, with the
/// plan's pushdown/projection applied inside each segment scan and
/// `(segment, slot)` resume tokens (see
/// [`HybridEngine::scan_pipeline`](VersionedStore::scan_pipeline)).
struct HyPipelineScan<'a> {
    engine: &'a HybridEngine,
    segs: Vec<(SegmentId, Bitmap)>,
    pos: usize,
    low: LoweredPlan,
    /// Slot to start at within the segment named by the resume token.
    resume: (u32, u64),
    inner: Option<PipelineScan<'a>>,
}

impl<'a> HyPipelineScan<'a> {
    fn new(
        engine: &'a HybridEngine,
        mut segs: Vec<(SegmentId, Bitmap)>,
        low: LoweredPlan,
        from: u64,
    ) -> Self {
        let resume = seg_resume(from);
        segs.retain(|(s, _)| s.raw() >= resume.0);
        HyPipelineScan {
            engine,
            segs,
            pos: 0,
            low,
            resume,
            inner: None,
        }
    }

    /// Opens the next segment's pipeline scan, honoring the resume slot
    /// for the token's own segment.
    fn open_next(&mut self) -> Option<()> {
        let (seg, bm) = self.segs.get(self.pos)?;
        self.pos += 1;
        let start = if seg.raw() == self.resume.0 {
            self.resume.1
        } else {
            0
        };
        self.inner = Some(PipelineScan::new(
            &self.engine.segments[seg.index()].heap,
            bm.clone(),
            self.low.pred.clone(),
            self.low.projection.clone(),
            start,
        ));
        Some(())
    }
}

impl Iterator for HyPipelineScan<'_> {
    type Item = Result<(u64, Record)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(scan) = &mut self.inner {
                for item in scan.by_ref() {
                    let seg = self.segs[self.pos - 1].0;
                    match item {
                        Ok((idx, rec)) => {
                            let rec = match &self.low.residual {
                                Some(res) => match res.apply(rec) {
                                    Some(rec) => rec,
                                    None => continue,
                                },
                                None => rec,
                            };
                            return Some(Ok((seg_token(seg, idx), rec)));
                        }
                        Err(e) => return Some(Err(e)),
                    }
                }
                self.inner = None;
            }
            self.open_next()?;
        }
    }
}

/// One planned segment of an annotated pipeline scan: the segment, its
/// union liveness, and each requested branch's membership bitmap.
type AnnotatedSegPlan = Vec<(SegmentId, Bitmap, Vec<(BranchId, Bitmap)>)>;

/// Multi-branch variant of [`HyPipelineScan`]: one [`PipelineAnnotatedScan`]
/// per planned segment.
struct HyPipelineAnnotatedScan<'a> {
    engine: &'a HybridEngine,
    plan: AnnotatedSegPlan,
    pos: usize,
    low: LoweredPlan,
    resume: (u32, u64),
    inner: Option<PipelineAnnotatedScan<'a>>,
}

impl<'a> HyPipelineAnnotatedScan<'a> {
    fn new(
        engine: &'a HybridEngine,
        mut plan: AnnotatedSegPlan,
        low: LoweredPlan,
        from: u64,
    ) -> Self {
        let resume = seg_resume(from);
        plan.retain(|(s, _, _)| s.raw() >= resume.0);
        HyPipelineAnnotatedScan {
            engine,
            plan,
            pos: 0,
            low,
            resume,
            inner: None,
        }
    }

    fn open_next(&mut self) -> Option<()> {
        let (seg, union, cols) = self.plan.get(self.pos)?;
        self.pos += 1;
        let start = if seg.raw() == self.resume.0 {
            self.resume.1
        } else {
            0
        };
        self.inner = Some(PipelineAnnotatedScan::new(
            &self.engine.segments[seg.index()].heap,
            union.clone(),
            cols.clone(),
            self.low.pred.clone(),
            self.low.projection.clone(),
            start,
        ));
        Some(())
    }
}

impl Iterator for HyPipelineAnnotatedScan<'_> {
    type Item = Result<(u64, Record, Vec<BranchId>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(scan) = &mut self.inner {
                for item in scan.by_ref() {
                    let seg = self.plan[self.pos - 1].0;
                    match item {
                        Ok((idx, rec, live)) => {
                            let rec = match &self.low.residual {
                                Some(res) => match res.apply(rec) {
                                    Some(rec) => rec,
                                    None => continue,
                                },
                                None => rec,
                            };
                            return Some(Ok((seg_token(seg, idx), rec, live)));
                        }
                        Err(e) => return Some(Err(e)),
                    }
                }
                self.inner = None;
            }
            self.open_next()?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> (tempfile::TempDir, HybridEngine) {
        let dir = tempfile::tempdir().unwrap();
        let schema = Schema::new(4, decibel_common::schema::ColumnType::U32);
        let eng = HybridEngine::init(dir.path().join("hy"), schema, &StoreConfig::test_default())
            .unwrap();
        (dir, eng)
    }

    fn rec(key: u64, tag: u64) -> Record {
        Record::new(key, vec![tag, tag + 1, tag + 2, tag + 3])
    }

    fn keys(iter: RecordIter<'_>) -> Vec<u64> {
        let mut v: Vec<u64> = iter.map(|r| r.unwrap().key()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn insert_scan_master() {
        let (_d, eng) = engine();
        for k in 0..10 {
            eng.insert(BranchId::MASTER, rec(k, k)).unwrap();
        }
        assert_eq!(
            keys(eng.scan(BranchId::MASTER.into()).unwrap()),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn branching_freezes_head_and_creates_two_heads() {
        let (_d, mut eng) = engine();
        for k in 0..5 {
            eng.insert(BranchId::MASTER, rec(k, k)).unwrap();
        }
        assert_eq!(eng.segments.len(), 1);
        let dev = eng.create_branch("dev", BranchId::MASTER.into()).unwrap();
        // Old head frozen; two new heads created.
        assert_eq!(eng.segments.len(), 3);
        assert!(eng.segments[0].frozen);
        assert!(!eng.segments[1].frozen);
        assert!(!eng.segments[2].frozen);
        assert_ne!(eng.head[BranchId::MASTER.index()], eng.head[dev.index()]);
        // Both branches see the inherited records.
        assert_eq!(
            keys(eng.scan(BranchId::MASTER.into()).unwrap()),
            (0..5).collect::<Vec<_>>()
        );
        assert_eq!(
            keys(eng.scan(dev.into()).unwrap()),
            (0..5).collect::<Vec<_>>()
        );
    }

    #[test]
    fn branch_isolation_and_update_across_segments() {
        let (_d, mut eng) = engine();
        for k in 0..5 {
            eng.insert(BranchId::MASTER, rec(k, k)).unwrap();
        }
        let dev = eng.create_branch("dev", BranchId::MASTER.into()).unwrap();
        // Update an inherited record in dev: clears the bit in the frozen
        // internal segment, appends to dev's head.
        eng.update(dev, rec(0, 77)).unwrap();
        eng.insert(dev, rec(100, 0)).unwrap();
        eng.insert(BranchId::MASTER, rec(200, 0)).unwrap();
        assert_eq!(
            keys(eng.scan(dev.into()).unwrap()),
            vec![0, 1, 2, 3, 4, 100]
        );
        assert_eq!(
            keys(eng.scan(BranchId::MASTER.into()).unwrap()),
            vec![0, 1, 2, 3, 4, 200]
        );
        assert_eq!(eng.get(dev.into(), 0).unwrap().unwrap().field(0), 77);
        assert_eq!(
            eng.get(BranchId::MASTER.into(), 0)
                .unwrap()
                .unwrap()
                .field(0),
            0
        );
    }

    #[test]
    fn duplicate_and_missing_keys_are_validated() {
        let (_d, eng) = engine();
        eng.insert(BranchId::MASTER, rec(1, 0)).unwrap();
        assert!(matches!(
            eng.insert(BranchId::MASTER, rec(1, 1)),
            Err(DbError::DuplicateKey { key: 1 })
        ));
        assert!(matches!(
            eng.update(BranchId::MASTER, rec(9, 0)),
            Err(DbError::KeyNotFound { key: 9 })
        ));
        assert!(eng.delete(BranchId::MASTER, 1).unwrap());
        assert!(!eng.delete(BranchId::MASTER, 1).unwrap());
    }

    #[test]
    fn commit_checkout_per_segment_history() {
        let (_d, mut eng) = engine();
        eng.insert(BranchId::MASTER, rec(1, 0)).unwrap();
        let c1 = eng.commit(BranchId::MASTER).unwrap();
        let dev = eng.create_branch("dev", BranchId::MASTER.into()).unwrap();
        eng.insert(dev, rec(2, 0)).unwrap();
        eng.update(dev, rec(1, 9)).unwrap();
        let c2 = eng.commit(dev).unwrap();
        eng.delete(dev, 2).unwrap();

        assert_eq!(eng.checkout_version(c1).unwrap(), 1);
        assert_eq!(eng.checkout_version(c2).unwrap(), 2);
        assert_eq!(keys(eng.scan(c1.into()).unwrap()), vec![1]);
        assert_eq!(keys(eng.scan(c2.into()).unwrap()), vec![1, 2]);
        assert_eq!(eng.get(c2.into(), 1).unwrap().unwrap().field(0), 9);
        assert_eq!(keys(eng.scan(dev.into()).unwrap()), vec![1]);
    }

    #[test]
    fn branch_from_historical_commit() {
        let (_d, mut eng) = engine();
        eng.insert(BranchId::MASTER, rec(1, 0)).unwrap();
        let c1 = eng.commit(BranchId::MASTER).unwrap();
        eng.insert(BranchId::MASTER, rec(2, 0)).unwrap();
        eng.commit(BranchId::MASTER).unwrap();
        let old = eng.create_branch("old", c1.into()).unwrap();
        assert_eq!(keys(eng.scan(old.into()).unwrap()), vec![1]);
        eng.update(old, rec(1, 5)).unwrap();
        eng.insert(old, rec(3, 0)).unwrap();
        assert_eq!(keys(eng.scan(old.into()).unwrap()), vec![1, 3]);
        assert_eq!(eng.get(old.into(), 1).unwrap().unwrap().field(0), 5);
    }

    #[test]
    fn diff_between_branches() {
        let (_d, mut eng) = engine();
        for k in 0..4 {
            eng.insert(BranchId::MASTER, rec(k, k)).unwrap();
        }
        let dev = eng.create_branch("dev", BranchId::MASTER.into()).unwrap();
        eng.insert(dev, rec(10, 0)).unwrap();
        eng.update(dev, rec(0, 99)).unwrap();
        eng.delete(dev, 3).unwrap();
        let d = eng.diff(dev.into(), BranchId::MASTER.into()).unwrap();
        let mut l: Vec<u64> = d.left_only.iter().map(|r| r.key()).collect();
        l.sort_unstable();
        assert_eq!(l, vec![0, 10]);
        let mut r: Vec<u64> = d.right_only.iter().map(|r| r.key()).collect();
        r.sort_unstable();
        assert_eq!(r, vec![0, 3]);
    }

    #[test]
    fn multi_scan_annotates_branches() {
        let (_d, mut eng) = engine();
        eng.insert(BranchId::MASTER, rec(1, 0)).unwrap();
        let dev = eng.create_branch("dev", BranchId::MASTER.into()).unwrap();
        eng.insert(dev, rec(2, 0)).unwrap();
        eng.insert(BranchId::MASTER, rec(3, 0)).unwrap();
        let mut rows: Vec<(u64, usize)> = eng
            .multi_scan(&[BranchId::MASTER, dev])
            .unwrap()
            .map(|r| {
                let (rec, branches) = r.unwrap();
                (rec.key(), branches.len())
            })
            .collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![(1, 2), (2, 1), (3, 1)]);
    }

    #[test]
    fn parallel_multi_scan_matches_sequential() {
        let (_d, mut eng) = engine();
        for k in 0..20 {
            eng.insert(BranchId::MASTER, rec(k, k)).unwrap();
        }
        let dev = eng.create_branch("dev", BranchId::MASTER.into()).unwrap();
        for k in 20..30 {
            eng.insert(dev, rec(k, k)).unwrap();
        }
        eng.update(dev, rec(5, 500)).unwrap();
        let mut seq: Vec<(u64, Vec<BranchId>)> = eng
            .multi_scan(&[BranchId::MASTER, dev])
            .unwrap()
            .map(|r| {
                let (rec, b) = r.unwrap();
                (rec.key(), b)
            })
            .collect();
        let mut par: Vec<(u64, Vec<BranchId>)> = eng
            .par_multi_scan(&[BranchId::MASTER, dev], 4)
            .unwrap()
            .into_iter()
            .map(|(rec, b)| (rec.key(), b))
            .collect();
        seq.sort();
        par.sort();
        assert_eq!(seq, par);
    }

    #[test]
    fn three_way_merge_field_level() {
        let (_d, mut eng) = engine();
        eng.insert(BranchId::MASTER, rec(1, 10)).unwrap();
        let dev = eng.create_branch("dev", BranchId::MASTER.into()).unwrap();
        let mut l = rec(1, 10);
        l.set_field(0, 111);
        eng.update(BranchId::MASTER, l).unwrap();
        let mut r = rec(1, 10);
        r.set_field(3, 333);
        eng.update(dev, r).unwrap();

        let res = eng
            .merge(
                BranchId::MASTER,
                dev,
                MergePolicy::ThreeWay { prefer_left: true },
            )
            .unwrap();
        assert!(res.conflicts.is_empty());
        let merged = eng.get(BranchId::MASTER.into(), 1).unwrap().unwrap();
        assert_eq!(merged.field(0), 111);
        assert_eq!(merged.field(3), 333);
    }

    #[test]
    fn merge_adopts_source_copies_in_place() {
        let (_d, mut eng) = engine();
        eng.insert(BranchId::MASTER, rec(1, 0)).unwrap();
        let dev = eng.create_branch("dev", BranchId::MASTER.into()).unwrap();
        eng.insert(dev, rec(5, 50)).unwrap();
        let data_before = eng.stats().data_bytes;
        eng.merge(
            BranchId::MASTER,
            dev,
            MergePolicy::TwoWay { prefer_left: true },
        )
        .unwrap();
        // The adopted record was not copied: only bitmaps changed.
        assert_eq!(eng.stats().data_bytes, data_before);
        assert_eq!(keys(eng.scan(BranchId::MASTER.into()).unwrap()), vec![1, 5]);
        assert_eq!(
            eng.get(BranchId::MASTER.into(), 5)
                .unwrap()
                .unwrap()
                .field(0),
            50
        );
    }

    #[test]
    fn merge_delete_conflict_respects_precedence() {
        let (_d, mut eng) = engine();
        eng.insert(BranchId::MASTER, rec(1, 0)).unwrap();
        let dev = eng.create_branch("dev", BranchId::MASTER.into()).unwrap();
        eng.delete(BranchId::MASTER, 1).unwrap();
        eng.update(dev, rec(1, 5)).unwrap();
        let res = eng
            .merge(
                BranchId::MASTER,
                dev,
                MergePolicy::ThreeWay { prefer_left: false },
            )
            .unwrap();
        assert_eq!(res.conflicts.len(), 1);
        assert_eq!(
            eng.get(BranchId::MASTER.into(), 1)
                .unwrap()
                .unwrap()
                .field(0),
            5
        );
    }

    #[test]
    fn stats_reflect_segmented_layout() {
        let (_d, mut eng) = engine();
        for k in 0..10 {
            eng.insert(BranchId::MASTER, rec(k, k)).unwrap();
        }
        let _dev = eng.create_branch("dev", BranchId::MASTER.into()).unwrap();
        eng.commit(BranchId::MASTER).unwrap();
        let s = eng.stats();
        assert_eq!(s.num_segments, 3);
        assert!(s.index_bytes > 0);
        assert!(s.commit_store_bytes > 0);
    }

    #[test]
    fn deep_branch_chain_scans_correctly() {
        let (_d, mut eng) = engine();
        let mut branch = BranchId::MASTER;
        let mut key = 0u64;
        for level in 0..5 {
            for _ in 0..3 {
                eng.insert(branch, rec(key, level)).unwrap();
                key += 1;
            }
            branch = eng
                .create_branch(&format!("b{level}"), branch.into())
                .unwrap();
        }
        assert_eq!(
            keys(eng.scan(branch.into()).unwrap()),
            (0..15).collect::<Vec<_>>()
        );
        assert_eq!(eng.live_count(BranchId::MASTER.into()).unwrap(), 3);
    }

    #[test]
    fn disjoint_branch_writers_do_not_corrupt_each_other() {
        use std::sync::Barrier;
        let (_d, mut eng) = engine();
        for k in 0..4 {
            eng.insert(BranchId::MASTER, rec(k, k)).unwrap();
        }
        let branches: Vec<BranchId> = (0..4)
            .map(|i| {
                eng.create_branch(&format!("w{i}"), BranchId::MASTER.into())
                    .unwrap()
            })
            .collect();
        let eng = Arc::new(eng);
        let barrier = Arc::new(Barrier::new(branches.len()));
        let mut handles = Vec::new();
        for (i, &b) in branches.iter().enumerate() {
            let eng = Arc::clone(&eng);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for k in 0..50u64 {
                    eng.insert(b, rec(1000 + i as u64 * 1000 + k, k)).unwrap();
                }
                // Update and delete inherited records: concurrent bitmap
                // clears in the shared frozen segment.
                eng.update(b, rec(0, 900 + i as u64)).unwrap();
                eng.delete(b, 3).unwrap();
                eng.commit(b).unwrap()
            }));
        }
        let commits: Vec<CommitId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, &b) in branches.iter().enumerate() {
            assert_eq!(eng.live_count(b.into()).unwrap(), 53);
            assert_eq!(
                eng.get(b.into(), 0).unwrap().unwrap().field(0),
                900 + i as u64
            );
            assert!(eng.get(b.into(), 3).unwrap().is_none());
        }
        let mut distinct: Vec<CommitId> = commits.clone();
        distinct.sort_unstable_by_key(|c| c.raw());
        distinct.dedup();
        assert_eq!(distinct.len(), branches.len());
        for &c in &commits {
            assert_eq!(eng.checkout_version(c).unwrap(), 53);
        }
        assert_eq!(eng.live_count(BranchId::MASTER.into()).unwrap(), 4);
    }
}
